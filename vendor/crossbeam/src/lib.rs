//! Offline stand-in for `crossbeam`: an unbounded MPMC channel with
//! timed receive, implemented over `Mutex<VecDeque>` + `Condvar`. Only
//! the surface this workspace uses is provided (see vendor/README.md).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// Sending half; cloneable, usable from `&self` across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half with blocking and timed receive.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut s = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if s.receivers == 0 {
                return Err(SendError(value));
            }
            s.queue.push_back(value);
            drop(s);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut s = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            s.senders += 1;
            drop(s);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            s.senders -= 1;
            let last = s.senders == 0;
            drop(s);
            if last {
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut s = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = s.queue.pop_front() {
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvError);
                }
                s = self.shared.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut s = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = s.queue.pop_front() {
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(s, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                s = guard;
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            let mut s = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            s.queue.pop_front()
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut s = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            s.receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(i));
            }
        }

        #[test]
        fn timeout_on_empty() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv_timeout(Duration::from_secs(5)).unwrap();
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
