//! Offline stand-in for `criterion`. Provides `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!`/`criterion_main!` macros.
//! Only the surface this workspace uses is provided (see
//! vendor/README.md). Instead of criterion's statistical analysis it
//! runs a short timed loop and prints mean/min wall-clock per iteration.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the measured closure.
pub struct Bencher {
    /// (total elapsed, iterations) recorded by `iter`.
    result: Option<(Duration, u64)>,
    measure_time: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // One warmup call also estimates per-iteration cost.
        let t0 = Instant::now();
        black_box(f());
        let est = t0.elapsed().max(Duration::from_nanos(10));
        let iters = (self.measure_time.as_nanos() / est.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(full_id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    // sample_size scales the measurement budget the way criterion's
    // sample count would; 10 (the workspace's "slow bench" setting)
    // maps to a short loop.
    let measure_time = Duration::from_millis((20 * sample_size.clamp(10, 100)) as u64 / 10);
    let mut b = Bencher {
        result: None,
        measure_time,
    };
    f(&mut b);
    let mut line = String::new();
    match b.result {
        Some((total, iters)) => {
            let per_iter = total / iters.max(1) as u32;
            let _ = write!(
                line,
                "bench: {full_id:<40} {:>12}/iter  ({iters} iters, {} total)",
                fmt_duration(per_iter),
                fmt_duration(total),
            );
        }
        None => {
            let _ = write!(line, "bench: {full_id:<40} (no measurement recorded)");
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        // The shim accepts and ignores harness CLI flags (--bench etc.).
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, 100, f);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("trivial", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2))
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| std::hint::black_box(3)));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("p2_len4").id, "p2_len4");
    }
}
