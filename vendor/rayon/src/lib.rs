//! Offline stand-in for `rayon`. Provides genuinely parallel
//! `par_iter`/`par_chunks`/`into_par_iter` with `map`/`for_each`/`sum`/
//! `reduce`, plus `ThreadPoolBuilder`/`ThreadPool::install`, implemented
//! over `std::thread::scope` with contiguous index partitioning. Only
//! the surface this workspace uses is provided (see vendor/README.md).
//!
//! Differences from real rayon: no work stealing (static partitioning),
//! threads are spawned per terminal call rather than pooled, and
//! `ThreadPool::install` affects only parallel calls made from the
//! calling thread (no nested-pool propagation).

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// 0 means "use the machine default".
    static POOL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn effective_threads() -> usize {
    let o = POOL_OVERRIDE.with(|c| c.get());
    if o != 0 {
        o
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Number of threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    effective_threads()
}

/// Run `work` over `0..len` split into one contiguous range per thread,
/// returning the per-thread results in range order.
fn split_run<A, F>(len: usize, work: &F) -> Vec<A>
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = effective_threads().min(len).max(1);
    if threads == 1 {
        return vec![work(0..len)];
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = (t * chunk).min(len);
                let hi = ((t + 1) * chunk).min(len);
                scope.spawn(move || work(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// A random-access source of items, the backbone of every parallel
/// iterator here.
#[allow(clippy::len_without_is_empty)] // shim surface: only `len` is used
pub trait IndexedSource: Sync {
    type Item;
    fn len(&self) -> usize;
    fn get(&self, i: usize) -> Self::Item;
}

pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for SliceSource<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

pub struct ChunkSource<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> IndexedSource for ChunkSource<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

pub struct RangeSource {
    start: usize,
    len: usize,
}

impl IndexedSource for RangeSource {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

pub struct MapSource<S, F, T> {
    src: S,
    f: F,
    _out: PhantomData<fn() -> T>,
}

impl<S, F, T> IndexedSource for MapSource<S, F, T>
where
    S: IndexedSource,
    F: Fn(S::Item) -> T + Sync,
{
    type Item = T;
    fn len(&self) -> usize {
        self.src.len()
    }
    fn get(&self, i: usize) -> T {
        (self.f)(self.src.get(i))
    }
}

/// A parallel iterator over an [`IndexedSource`].
pub struct Par<S>(S);

impl<S: IndexedSource> Par<S> {
    pub fn map<T, F>(self, f: F) -> Par<MapSource<S, F, T>>
    where
        F: Fn(S::Item) -> T + Sync,
    {
        Par(MapSource {
            src: self.0,
            f,
            _out: PhantomData,
        })
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let src = &self.0;
        split_run(src.len(), &|r: Range<usize>| {
            for i in r {
                f(src.get(i));
            }
        });
    }

    pub fn sum<T>(self) -> T
    where
        T: Send + std::iter::Sum<S::Item> + std::iter::Sum<T>,
    {
        let src = &self.0;
        let partials = split_run(src.len(), &|r: Range<usize>| {
            r.map(|i| src.get(i)).sum::<T>()
        });
        partials.into_iter().sum()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        S::Item: Send,
        ID: Fn() -> S::Item + Sync,
        OP: Fn(S::Item, S::Item) -> S::Item + Sync,
    {
        let src = &self.0;
        let partials = split_run(src.len(), &|r: Range<usize>| {
            let mut acc = identity();
            for i in r {
                acc = op(acc, src.get(i));
            }
            acc
        });
        partials.into_iter().fold(identity(), &op)
    }

    pub fn count(self) -> usize {
        self.0.len()
    }
}

/// `into_par_iter()` entry point (ranges).
pub trait IntoParallelIterator {
    type Source: IndexedSource;
    fn into_par_iter(self) -> Par<Self::Source>;
}

impl IntoParallelIterator for Range<usize> {
    type Source = RangeSource;
    fn into_par_iter(self) -> Par<RangeSource> {
        Par(RangeSource {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        })
    }
}

/// `par_iter()` / `par_chunks()` entry points on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> Par<SliceSource<'_, T>>;
    fn par_chunks(&self, size: usize) -> Par<ChunkSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<SliceSource<'_, T>> {
        Par(SliceSource { slice: self })
    }
    fn par_chunks(&self, size: usize) -> Par<ChunkSource<'_, T>> {
        assert!(size > 0, "par_chunks requires a non-zero chunk size");
        Par(ChunkSource { slice: self, size })
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

/// Error from [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 means "machine default", matching rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool" that scopes a thread-count override; workers are spawned
/// per call rather than kept alive.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        if self.num_threads != 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_sum_matches_serial() {
        let v: Vec<u64> = (0..10_000).collect();
        let par: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(par, v.iter().sum::<u64>());
    }

    #[test]
    fn range_into_par_iter_sum() {
        let s: usize = (0..1000usize).into_par_iter().map(|i| i * 2).sum();
        assert_eq!(s, 999 * 1000);
    }

    #[test]
    fn for_each_visits_everything_once() {
        let counters: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        (0..500usize).into_par_iter().for_each(|i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_reduce() {
        let v: Vec<usize> = (1..=100).collect();
        let total = v
            .par_chunks(7)
            .map(|c| c.iter().sum::<usize>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<usize> = Vec::new();
        assert_eq!(v.par_iter().map(|&x| x).sum::<usize>(), 0);
        assert_eq!(
            v.par_chunks(4).map(|c| c.len()).reduce(|| 0, |a, b| a + b),
            0
        );
    }
}
