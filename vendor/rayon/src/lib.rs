//! Offline stand-in for `rayon`. Provides genuinely parallel
//! `par_iter`/`par_chunks`/`into_par_iter` with `map`/`for_each`/`sum`/
//! `reduce`, plus `ThreadPoolBuilder`/`ThreadPool::install`, implemented
//! over `std::thread::scope` with contiguous index partitioning. Only
//! the surface this workspace uses is provided (see vendor/README.md).
//!
//! Differences from real rayon: no work stealing (static partitioning),
//! threads are spawned per terminal call rather than pooled, and
//! `ThreadPool::install` affects only parallel calls made from the
//! calling thread (no nested-pool propagation).

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// 0 means "use the machine default".
    static POOL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn effective_threads() -> usize {
    let o = POOL_OVERRIDE.with(|c| c.get());
    if o != 0 {
        o
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Number of threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    effective_threads()
}

/// Run `work` over `0..len` split into one contiguous range per thread,
/// returning the per-thread results in range order.
fn split_run<A, F>(len: usize, work: &F) -> Vec<A>
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = effective_threads().min(len).max(1);
    if threads == 1 {
        return vec![work(0..len)];
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = (t * chunk).min(len);
                let hi = ((t + 1) * chunk).min(len);
                scope.spawn(move || work(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// A random-access source of items, the backbone of every parallel
/// iterator here.
#[allow(clippy::len_without_is_empty)] // shim surface: only `len` is used
pub trait IndexedSource: Sync {
    type Item;
    fn len(&self) -> usize;
    fn get(&self, i: usize) -> Self::Item;
}

pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for SliceSource<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

pub struct ChunkSource<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> IndexedSource for ChunkSource<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

pub struct RangeSource {
    start: usize,
    len: usize,
}

impl IndexedSource for RangeSource {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

pub struct MapSource<S, F, T> {
    src: S,
    f: F,
    _out: PhantomData<fn() -> T>,
}

impl<S, F, T> IndexedSource for MapSource<S, F, T>
where
    S: IndexedSource,
    F: Fn(S::Item) -> T + Sync,
{
    type Item = T;
    fn len(&self) -> usize {
        self.src.len()
    }
    fn get(&self, i: usize) -> T {
        (self.f)(self.src.get(i))
    }
}

/// A parallel iterator over an [`IndexedSource`].
pub struct Par<S>(S);

impl<S: IndexedSource> Par<S> {
    pub fn map<T, F>(self, f: F) -> Par<MapSource<S, F, T>>
    where
        F: Fn(S::Item) -> T + Sync,
    {
        Par(MapSource {
            src: self.0,
            f,
            _out: PhantomData,
        })
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let src = &self.0;
        split_run(src.len(), &|r: Range<usize>| {
            for i in r {
                f(src.get(i));
            }
        });
    }

    pub fn sum<T>(self) -> T
    where
        T: Send + std::iter::Sum<S::Item> + std::iter::Sum<T>,
    {
        let src = &self.0;
        let partials = split_run(src.len(), &|r: Range<usize>| {
            r.map(|i| src.get(i)).sum::<T>()
        });
        partials.into_iter().sum()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        S::Item: Send,
        ID: Fn() -> S::Item + Sync,
        OP: Fn(S::Item, S::Item) -> S::Item + Sync,
    {
        let src = &self.0;
        let partials = split_run(src.len(), &|r: Range<usize>| {
            let mut acc = identity();
            for i in r {
                acc = op(acc, src.get(i));
            }
            acc
        });
        partials.into_iter().fold(identity(), &op)
    }

    pub fn count(self) -> usize {
        self.0.len()
    }
}

/// `into_par_iter()` entry point (ranges).
pub trait IntoParallelIterator {
    type Source: IndexedSource;
    fn into_par_iter(self) -> Par<Self::Source>;
}

impl IntoParallelIterator for Range<usize> {
    type Source = RangeSource;
    fn into_par_iter(self) -> Par<RangeSource> {
        Par(RangeSource {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        })
    }
}

/// `par_iter()` / `par_chunks()` entry points on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> Par<SliceSource<'_, T>>;
    fn par_chunks(&self, size: usize) -> Par<ChunkSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<SliceSource<'_, T>> {
        Par(SliceSource { slice: self })
    }
    fn par_chunks(&self, size: usize) -> Par<ChunkSource<'_, T>> {
        assert!(size > 0, "par_chunks requires a non-zero chunk size");
        Par(ChunkSource { slice: self, size })
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

/// Error from [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 means "machine default", matching rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool" that scopes a thread-count override; workers are spawned
/// per call rather than kept alive.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        if self.num_threads != 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// Type-erased job the pool workers execute: called once per worker with
/// the worker index. `'static` here is a lie upheld by [`WorkerPool::run`];
/// see the safety comment there.
type Job = &'static (dyn Fn(usize) + Sync);

struct PoolShared {
    /// Released by the publisher once `job` is set; every worker (and the
    /// publisher itself, acting as worker 0) passes through it per run.
    start: std::sync::Barrier,
    /// Passed by all participants after the job completes; the publisher
    /// does not return from `run` until it has crossed this barrier, which
    /// is what makes the `'static` transmute in `run` sound.
    end: std::sync::Barrier,
    job: std::sync::Mutex<Option<Job>>,
    shutdown: std::sync::atomic::AtomicBool,
}

/// A fixed-size pool of OS threads that stays alive across calls, unlike
/// the per-call `std::thread::scope` spawning of the iterator combinators
/// above. Intended for tight per-batch dispatch (many small parallel
/// regions per second), where per-call spawn cost would dominate.
///
/// `run(len, work)` has exactly [`split_run`]'s contract: `work` is
/// invoked with one contiguous sub-range of `0..len` per participating
/// thread and the results come back in range order, so output ordering is
/// deterministic and independent of scheduling.
pub struct WorkerPool {
    shared: std::sync::Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Build a pool with `threads` total participants. The calling thread
    /// is participant 0 during `run`, so only `threads - 1` OS threads
    /// are spawned; `threads <= 1` spawns nothing and `run` executes
    /// inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = std::sync::Arc::new(PoolShared {
            start: std::sync::Barrier::new(threads),
            end: std::sync::Barrier::new(threads),
            job: std::sync::Mutex::new(None),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|idx| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    shared.start.wait();
                    if shared.shutdown.load(std::sync::atomic::Ordering::Acquire) {
                        return;
                    }
                    let job = shared
                        .job
                        .lock()
                        .expect("worker pool mutex poisoned")
                        .expect("worker released without a job");
                    job(idx);
                    shared.end.wait();
                })
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Total participants (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `work` over `0..len` split into one contiguous range per
    /// participant; results are returned in range order. Sub-ranges and
    /// their order depend only on `len` and the pool size, never on
    /// scheduling.
    pub fn run<A, F>(&self, len: usize, work: F) -> Vec<A>
    where
        A: Send,
        F: Fn(Range<usize>) -> A + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        let parts = self.threads.min(len);
        if parts == 1 || self.workers.is_empty() {
            return vec![work(0..len)];
        }
        let chunk = len.div_ceil(parts);
        let slots: Vec<std::sync::Mutex<Option<A>>> =
            (0..parts).map(|_| std::sync::Mutex::new(None)).collect();
        let slots_ref = &slots;
        let work_ref = &work;
        let call = move |idx: usize| {
            // Workers beyond `parts` get an empty range when len < threads.
            let lo = (idx * chunk).min(len);
            let hi = ((idx + 1) * chunk).min(len);
            if lo < hi {
                *slots_ref[idx].lock().expect("worker pool slot poisoned") = Some(work_ref(lo..hi));
            }
        };
        {
            let erased: &(dyn Fn(usize) + Sync) = &call;
            // SAFETY: the job pointer is only dereferenced by workers
            // between the start barrier below and the end barrier at the
            // bottom of this block. The publisher participates in both
            // barriers, so it cannot leave this scope — and `call`,
            // `slots`, `work` cannot be dropped — until every worker has
            // finished executing the job. The transmute only erases the
            // lifetime for storage in the shared slot.
            let job: Job = unsafe { std::mem::transmute(erased) };
            *self.shared.job.lock().expect("worker pool mutex poisoned") = Some(job);
            self.shared.start.wait();
            call(0);
            self.shared.end.wait();
            *self.shared.job.lock().expect("worker pool mutex poisoned") = None;
        }
        slots
            .into_iter()
            .filter_map(|s| s.into_inner().expect("worker pool slot poisoned"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::Release);
        if !self.workers.is_empty() {
            self.shared.start.wait();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_sum_matches_serial() {
        let v: Vec<u64> = (0..10_000).collect();
        let par: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(par, v.iter().sum::<u64>());
    }

    #[test]
    fn range_into_par_iter_sum() {
        let s: usize = (0..1000usize).into_par_iter().map(|i| i * 2).sum();
        assert_eq!(s, 999 * 1000);
    }

    #[test]
    fn for_each_visits_everything_once() {
        let counters: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        (0..500usize).into_par_iter().for_each(|i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_reduce() {
        let v: Vec<usize> = (1..=100).collect();
        let total = v
            .par_chunks(7)
            .map(|c| c.iter().sum::<usize>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<usize> = Vec::new();
        assert_eq!(v.par_iter().map(|&x| x).sum::<usize>(), 0);
        assert_eq!(
            v.par_chunks(4).map(|c| c.len()).reduce(|| 0, |a, b| a + b),
            0
        );
    }

    #[test]
    fn worker_pool_matches_split_run_partitioning() {
        let pool = WorkerPool::new(4);
        for len in [0usize, 1, 3, 4, 5, 97, 1000] {
            let ranges = pool.run(len, |r| r);
            let reference = split_run_ranges(len, 4);
            assert_eq!(ranges, reference, "len = {len}");
        }
    }

    fn split_run_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
        if len == 0 {
            return Vec::new();
        }
        let parts = threads.min(len).max(1);
        if parts == 1 {
            return vec![0..len];
        }
        let chunk = len.div_ceil(parts);
        (0..parts)
            .map(|t| (t * chunk).min(len)..((t + 1) * chunk).min(len))
            .filter(|r| !r.is_empty())
            .collect()
    }

    #[test]
    fn worker_pool_reuses_threads_across_many_calls() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        for _ in 0..200 {
            let partials = pool.run(30, |r| {
                hits.fetch_add(r.len(), Ordering::Relaxed);
                r.len()
            });
            assert_eq!(partials.iter().sum::<usize>(), 30);
        }
        assert_eq!(hits.load(Ordering::Relaxed), 200 * 30);
    }

    #[test]
    fn worker_pool_single_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.run(10, |r| r.sum::<usize>());
        assert_eq!(out, vec![45]);
    }

    #[test]
    fn worker_pool_results_preserve_range_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run(8, |r| r.start);
        assert_eq!(out, vec![0, 2, 4, 6]);
    }
}
