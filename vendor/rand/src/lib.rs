//! Offline stand-in for `rand` (0.9-style API). Provides `RngCore`,
//! `Rng::{random, random_range}`, `SeedableRng::seed_from_u64`,
//! `rngs::SmallRng` (xoshiro256++ seeded via splitmix64) and
//! `seq::SliceRandom::shuffle`. Only the surface this workspace uses is
//! provided (see vendor/README.md). Streams are deterministic per seed
//! but are NOT bit-compatible with the real crate.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (uniform over the
/// type's range; unit interval for floats).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer in `[0, bound)` by rejection sampling on the top
/// `bound`-multiple of 2^64.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, i64, i32);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ with splitmix64 seeding.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
            let w = rng.random_range(1u64..=5);
            assert!((1..=5).contains(&w));
        }
        assert!(seen.iter().all(|&b| b), "all values of a small range hit");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle moved something");
    }
}
