//! Offline stand-in for `parking_lot`: non-poisoning `Mutex` and
//! `Condvar` implemented over `std::sync`. Only the surface this
//! workspace uses is provided (see vendor/README.md).

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Non-poisoning mutex: `lock()` returns the guard directly and a
/// panicked holder does not poison the lock for later users.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait_for`] can temporarily take it by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with [`MutexGuard`] in place (parking_lot
/// style: the guard is passed by `&mut`, not consumed).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        let inner = match self.0.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_millis(10));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
