//! Offline stand-in for `proptest`. Provides the `Strategy` trait with
//! `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! `Just`, `collection::vec`, `ProptestConfig::with_cases`, the
//! `proptest!` macro and `prop_assert!`/`prop_assert_eq!`. Only the
//! surface this workspace uses is provided (see vendor/README.md).
//!
//! Differences from the real crate: case generation is a deterministic
//! function of (test name, case index) — there is no persisted failure
//! file and no shrinking; a failing case panics with its index so it can
//! be replayed by rerunning the test.

/// Deterministic per-test random source.
pub struct TestRng {
    base: u64,
    state: u64,
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn new(test_name: &str) -> Self {
        let base = fnv1a(test_name);
        TestRng { base, state: base }
    }

    /// Reset the stream for a new case; each (test, case) pair sees an
    /// independent deterministic stream.
    pub fn set_case(&mut self, case: u32) {
        let mut s = self.base ^ (case as u64).wrapping_mul(0xA24BAED4963EE407);
        // Warm up so consecutive cases decorrelate.
        splitmix64(&mut s);
        self.state = s;
    }

    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { src: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { src: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    src: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.src.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    src: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.src.generate(rng)).generate(rng)
    }
}

/// Constant strategy: always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec`]: an exact length or a half-open range.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: Box<dyn IntoSizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: Box::new(size),
        }
    }
}

/// Run configuration: number of generated cases per test.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(<$crate::ProptestConfig as ::core::default::Default>::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                rng.set_case(case);
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }));
                if let Err(e) = result {
                    eprintln!(
                        "proptest shim: {} failed at case {case}/{} (deterministic; rerun reproduces)",
                        stringify!($name),
                        cfg.cases,
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<u64>)> {
        (1usize..20).prop_flat_map(|n| (Just(n), crate::collection::vec(0u64..10, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 5u64..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn flat_map_links_sizes((n, v) in arb_pair()) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn map_applies(x in (0u32..100).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 200);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::new("t");
        let mut b = super::TestRng::new("t");
        a.set_case(3);
        b.set_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
