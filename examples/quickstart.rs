//! Quickstart: generate a graph with planted communities, run the
//! distributed Louvain algorithm on four simulated ranks, and compare
//! against the serial reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distributed_louvain::dist::serial_louvain;
use distributed_louvain::prelude::*;

fn main() {
    // An LFR benchmark graph: power-law degrees, power-law community
    // sizes, 10% of each vertex's edges leaving its community.
    let generated = lfr(LfrParams::small(5_000, 42));
    let graph = generated.graph;
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Distributed Louvain on 4 simulated ranks (Baseline variant of the
    // IPDPS 2018 paper: no heuristics).
    let outcome = run_distributed(&graph, 4, &DistConfig::baseline());
    println!(
        "distributed (4 ranks): Q = {:.4}, {} communities, {} phases, {} iterations",
        outcome.modularity, outcome.num_communities, outcome.phases, outcome.total_iterations
    );
    println!(
        "  modeled job time = {:.2} ms, wall = {:.2} ms",
        outcome.modeled_seconds * 1e3,
        outcome.wall.as_secs_f64() * 1e3
    );
    println!(
        "  traffic: {} p2p messages, {} KiB, {} collectives",
        outcome.traffic.p2p_messages,
        outcome.traffic.p2p_bytes / 1024,
        outcome.traffic.collective_calls
    );

    // The serial reference (Algorithm 1 of the paper).
    let serial = serial_louvain(&graph, 1e-6);
    println!(
        "serial reference:      Q = {:.4}, {} phases, {} iterations",
        serial.modularity, serial.phases, serial.total_iterations
    );

    // The heuristic variants of Section IV-B.
    for variant in [
        Variant::ThresholdCycling,
        Variant::Et { alpha: 0.25 },
        Variant::Etc { alpha: 0.75 },
    ] {
        let out = run_distributed(&graph, 4, &DistConfig::with_variant(variant));
        println!(
            "{:<22} Q = {:.4}, modeled {:.2} ms, {} iterations",
            variant.label(),
            out.modularity,
            out.modeled_seconds * 1e3,
            out.total_iterations
        );
    }
}
