//! Social-network community detection — the paper's motivating workload
//! (com-orkut, twitter, soc-friendster are all social graphs).
//!
//! Builds a scale-free social network, detects communities with both the
//! shared-memory (Grappolo) and distributed implementations, and reports
//! community structure statistics.
//!
//! ```sh
//! cargo run --release --example social_network_analysis
//! ```

use distributed_louvain::prelude::*;

fn main() {
    // A friendster-like social network: strong local friend groups
    // (LFR with μ = 0.36) at laptop scale.
    let generated = lfr(LfrParams {
        mu: 0.36,
        ..LfrParams::small(20_000, 7)
    });
    let graph = generated.graph;
    println!(
        "social network: {} members, {} friendships",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Shared-memory baseline (state of the art before the paper).
    let shared = ParallelLouvain::new(GrappoloConfig::default()).run(&graph);
    println!(
        "grappolo (shared memory): Q = {:.4}, {} communities in {:.0} ms",
        shared.modularity,
        shared.num_communities,
        shared.elapsed.as_secs_f64() * 1e3
    );

    // Distributed with the paper's best-performing heuristic for
    // soc-friendster (Table IV: ETC(0.25), 23x over Baseline).
    let out = run_distributed(
        &graph,
        8,
        &DistConfig::with_variant(Variant::Etc { alpha: 0.25 }),
    );
    println!(
        "distributed ETC(0.25), 8 ranks: Q = {:.4}, {} communities",
        out.modularity, out.num_communities
    );

    // Community size distribution from the distributed run.
    let mut sizes = vec![0usize; out.num_communities];
    for &c in &out.assignment {
        sizes[c as usize] += 1;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("largest communities: {:?}", &sizes[..sizes.len().min(10)]);
    let median = sizes[sizes.len() / 2];
    println!(
        "median community size: {median}, singletons: {}",
        sizes.iter().filter(|&&s| s == 1).count()
    );

    // Who shares a community with member #0?
    let c0 = out.assignment[0];
    let peers = out.assignment.iter().filter(|&&c| c == c0).count();
    println!("member #0 belongs to a community of {peers} members");
}
