//! Web-graph clustering with threshold cycling — mirrors the paper's
//! uk-2007 / arabic-2005 workloads: host-structured web crawls where the
//! Louvain hierarchy is deep and early phases dominate runtime.
//!
//! Shows the per-phase view: how the graph compresses phase by phase,
//! the τ used by the cycling schedule, and the modularity trajectory.
//!
//! ```sh
//! cargo run --release --example web_graph_hierarchy
//! ```

use distributed_louvain::prelude::*;

fn main() {
    let generated = weblike(WeblikeParams::web(30_000, 11));
    let graph = generated.graph;
    println!(
        "web graph: {} pages, {} links",
        graph.num_vertices(),
        graph.num_edges()
    );

    for variant in [Variant::Baseline, Variant::ThresholdCycling] {
        let out = run_distributed(&graph, 8, &DistConfig::with_variant(variant));
        println!(
            "\n{} — Q = {:.4}, {} communities, modeled {:.2} ms",
            variant.label(),
            out.modularity,
            out.num_communities,
            out.modeled_seconds * 1e3
        );
        println!(
            "{:>5} {:>10} {:>8} {:>8} {:>10}",
            "phase", "vertices", "tau", "iters", "Q"
        );
        for stats in &out.per_rank_stats[0] {
            println!(
                "{:>5} {:>10} {:>8.0e} {:>8} {:>10.4}",
                stats.phase, stats.num_vertices, stats.tau, stats.iterations, stats.modularity
            );
        }
    }

    // Quality vs the planted host structure.
    let truth = generated.ground_truth.unwrap();
    let out = run_distributed(&graph, 8, &DistConfig::baseline());
    let report = distributed_louvain::dist::f_score(&truth, &out.assignment);
    println!(
        "\nvs planted hosts: precision {:.3}, recall {:.3}, F-score {:.3}",
        report.precision, report.recall, report.f_score
    );
}
