//! A tour of the paper's future-work extensions, implemented in this
//! library and toggled through `DistConfig` flags: neighborhood
//! collectives, inactive-ghost pruning, distance-1 colored sweeps,
//! vertex following, and the MPI+OpenMP hybrid mode.
//!
//! ```sh
//! cargo run --release --example extensions_tour
//! ```

use distributed_louvain::prelude::*;

fn show(name: &str, out: &DistOutcome) {
    println!(
        "{name:<28} Q={:.4}  iters={:<3} modeled={:>8.2}ms  p2p={:>6} msgs / {:>6} KiB",
        out.modularity,
        out.total_iterations,
        out.modeled_seconds * 1e3,
        out.traffic.p2p_messages,
        out.traffic.p2p_bytes / 1024,
    );
}

fn main() {
    let ranks = 8;
    let g = grid3d(Grid3dParams::cube(10_000, 3)).graph;
    println!(
        "mesh graph: {} vertices, {} edges, {} ranks\n",
        g.num_vertices(),
        g.num_edges(),
        ranks
    );

    let base = run_distributed(&g, ranks, &DistConfig::baseline());
    show("Baseline (paper Alg. 2)", &base);

    // MPI-3 neighborhood collectives: identical results, fewer messages.
    let out = run_distributed(
        &g,
        ranks,
        &DistConfig {
            neighborhood_collectives: true,
            ..DistConfig::baseline()
        },
    );
    show("+ neighborhood collectives", &out);
    assert_eq!(out.assignment, base.assignment, "must be bit-identical");

    // Distance-1 colored sub-rounds: fewer iterations, more messages.
    let out = run_distributed(
        &g,
        ranks,
        &DistConfig {
            color_sweeps: true,
            ..DistConfig::baseline()
        },
    );
    show("+ colored sweeps", &out);

    // Vertex following: pendants pre-merged before the first sweep.
    let out = run_distributed(
        &g,
        ranks,
        &DistConfig {
            vertex_following: true,
            ..DistConfig::baseline()
        },
    );
    show("+ vertex following", &out);

    // Hybrid MPI+OpenMP: half the ranks, two threads each.
    let out = run_distributed(
        &g,
        ranks / 2,
        &DistConfig {
            threads_per_rank: 2,
            ..DistConfig::baseline()
        },
    );
    show("hybrid p/2 x 2 threads", &out);

    // ET with and without inactive-ghost pruning.
    println!();
    let et = DistConfig::with_variant(Variant::Et { alpha: 0.75 });
    let out = run_distributed(&g, ranks, &et);
    show("ET(0.75)", &out);
    let out = run_distributed(
        &g,
        ranks,
        &DistConfig {
            prune_inactive_ghosts: true,
            ..et
        },
    );
    show("ET(0.75) + ghost pruning", &out);
}
