//! The paper's full input pipeline: convert a graph to the binary
//! edge-list format, have every rank read only its slice of the file
//! (standing in for MPI I/O), redistribute edges so each rank owns
//! roughly the same number ("no clever graph partitioning"), and run
//! distributed Louvain on the result.
//!
//! ```sh
//! cargo run --release --example binary_io_pipeline
//! ```

use distributed_louvain::comm::{run as run_ranks, ReduceOp};
use distributed_louvain::dist::runner::run_on_rank;
use distributed_louvain::dist::DistConfig;
use distributed_louvain::graph::dist::build_distributed;
use distributed_louvain::graph::{binio, LocalGraph};
use distributed_louvain::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("louvain-binary-io-example");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("web.graph");

    // 1. Convert a generated web graph to the binary edge-list format.
    let generated = weblike(WeblikeParams::web(10_000, 3));
    let edge_list = generated.graph.to_edge_list();
    binio::write_edge_list(&path, &edge_list).unwrap();
    let header = binio::read_header(&path).unwrap();
    println!(
        "wrote {} ({} vertices, {} edge records, {} KiB)",
        path.display(),
        header.num_vertices,
        header.num_edges,
        std::fs::metadata(&path).unwrap().len() / 1024
    );

    // 2. Distributed load + community detection: each rank reads its own
    //    record range, edges are redistributed edge-balanced, Louvain runs.
    let p = 4;
    let cfg = DistConfig::baseline();
    let outcomes = run_ranks(p, |comm| {
        let (lo, hi) = binio::rank_record_range(header.num_edges, comm.rank(), comm.size());
        let my_edges = binio::read_edge_range(&path, lo, hi).unwrap();
        println!(
            "rank {} read records {lo}..{hi} ({} edges)",
            comm.rank(),
            my_edges.len()
        );
        let lg: LocalGraph = build_distributed(comm, header.num_vertices, my_edges);
        let local_arcs = lg.num_local_arcs() as u64;
        let max_arcs = comm.all_reduce(local_arcs, ReduceOp::Max);
        let min_arcs = comm.all_reduce(local_arcs, ReduceOp::Min);
        if comm.rank() == 0 {
            println!(
                "edge balance after redistribution: min {min_arcs} / max {max_arcs} arcs per rank"
            );
        }
        run_on_rank(comm, lg, &cfg)
    });

    // 3. Merge and report.
    let assignment: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.assignment.iter().copied())
        .collect();
    let q_check = distributed_louvain::graph::modularity(&generated.graph, &assignment);
    println!(
        "distributed Louvain from file: Q = {:.4} (recomputed {:.4}), {} phases",
        outcomes[0].modularity, q_check, outcomes[0].phases
    );

    std::fs::remove_file(&path).ok();
}
