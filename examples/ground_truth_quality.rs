//! Ground-truth quality assessment — the paper's Section V-D experiment
//! in miniature: generate LFR benchmark graphs of growing size, run the
//! distributed implementation, and score the detected communities with
//! precision / recall / F-score.
//!
//! ```sh
//! cargo run --release --example ground_truth_quality
//! ```

use distributed_louvain::dist::f_score;
use distributed_louvain::prelude::*;

fn main() {
    println!(
        "{:>9} {:>9} {:>10} {:>8} {:>9}",
        "vertices", "edges", "precision", "recall", "F-score"
    );
    for (i, n) in [2_000u64, 5_000, 10_000, 20_000].into_iter().enumerate() {
        let generated = lfr(LfrParams::small(n, 900 + i as u64));
        let truth = generated.ground_truth.as_ref().unwrap();

        let out = run_distributed(&generated.graph, 4, &DistConfig::baseline());
        let q = f_score(truth, &out.assignment);
        println!(
            "{:>9} {:>9} {:>10.4} {:>8.4} {:>9.4}",
            n,
            generated.graph.num_edges(),
            q.precision,
            q.recall,
            q.f_score
        );
    }

    println!("\nhow the mixing parameter affects detectability (n = 5000):");
    println!(
        "{:>6} {:>10} {:>9} {:>14}",
        "mu", "planted Q", "found Q", "F-score"
    );
    for (i, mu) in [0.1, 0.2, 0.3, 0.4, 0.5].into_iter().enumerate() {
        let generated = lfr(LfrParams {
            mu,
            ..LfrParams::small(5_000, 950 + i as u64)
        });
        let truth = generated.ground_truth.as_ref().unwrap();
        let planted_q = distributed_louvain::graph::modularity(&generated.graph, truth);
        let out = run_distributed(&generated.graph, 4, &DistConfig::baseline());
        let q = f_score(truth, &out.assignment);
        println!(
            "{:>6.1} {:>10.4} {:>9.4} {:>14.4}",
            mu, planted_q, out.modularity, q.f_score
        );
    }
}
