//! Property-based tests (proptest) over the core invariants:
//! modularity bounds, coarsening invariance, partition coverage,
//! distributed/sequential agreement on random graphs.

use distributed_louvain::dist::{run_distributed, DistConfig};
use distributed_louvain::graph::community::{
    coarsen, count_communities, modularity, renumber, singleton_assignment,
};
use distributed_louvain::graph::{Csr, EdgeList, LocalGraph, VertexPartition};
use proptest::prelude::*;

/// Strategy: a random connected-ish undirected graph as (n, edges).
fn arb_graph() -> impl Strategy<Value = Csr> {
    (4usize..40).prop_flat_map(|n| {
        let edge = (0..n as u64, 0..n as u64, 1u32..4);
        proptest::collection::vec(edge, n..4 * n).prop_map(move |edges| {
            let mut el = EdgeList::new(n as u64);
            // A spine keeps the graph connected so Louvain has work to do.
            for v in 0..n as u64 - 1 {
                el.push(v, v + 1, 1.0);
            }
            for (u, v, w) in edges {
                el.push(u, v, w as f64);
            }
            Csr::from_edge_list(el)
        })
    })
}

/// Strategy: a random community assignment for a given n.
fn arb_assignment(n: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0..n as u64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn modularity_is_bounded(g in arb_graph(), seed in 0u64..1000) {
        let n = g.num_vertices();
        let assignment: Vec<u64> = (0..n as u64)
            .map(|v| (v.wrapping_mul(seed + 1)) % (n as u64 / 2 + 1))
            .collect();
        let q = modularity(&g, &assignment);
        // Modularity is in [-1, 1] by definition.
        prop_assert!((-1.0..=1.0).contains(&q), "q = {q}");
    }

    #[test]
    fn coarsening_preserves_modularity((g, seed) in arb_graph().prop_flat_map(|g| {
        let n = g.num_vertices();
        (Just(g), Just(n).prop_flat_map(arb_assignment))
    })) {
        let assignment = seed;
        let q_fine = modularity(&g, &assignment);
        let (coarse, dense) = coarsen(&g, &assignment);
        let q_coarse = modularity(&coarse, &singleton_assignment(coarse.num_vertices()));
        prop_assert!((q_fine - q_coarse).abs() < 1e-9, "{q_fine} vs {q_coarse}");
        // Total weight is conserved.
        prop_assert!((g.two_m() - coarse.two_m()).abs() < 1e-9);
        // The dense map is consistent with the input partition.
        let (expected_dense, k) = renumber(&assignment);
        prop_assert_eq!(dense, expected_dense);
        prop_assert_eq!(coarse.num_vertices(), k);
    }

    #[test]
    fn scatter_preserves_all_arcs(g in arb_graph(), p in 1usize..6) {
        let part = VertexPartition::balanced_edges(&g, p);
        let parts = LocalGraph::scatter(&g, &part);
        let assembled = LocalGraph::assemble(&parts);
        prop_assert_eq!(assembled, g);
    }

    #[test]
    fn partition_owner_is_consistent(n in 1u64..200, p in 1usize..8) {
        let part = VertexPartition::balanced_vertices(n, p);
        for v in 0..n {
            let owner = part.owner_of(v);
            prop_assert!(part.range(owner).contains(&v));
        }
        let total: usize = (0..p).map(|r| part.num_local(r)).sum();
        prop_assert_eq!(total as u64, n);
    }

    #[test]
    fn single_rank_louvain_never_reduces_modularity_below_singletons(g in arb_graph()) {
        // With one rank there is no information lag: every applied move
        // had truly positive gain, so the result can never be worse than
        // the all-singletons start state. (With p > 1 this is NOT an
        // invariant — the paper's Section III-B "community update lag"
        // means concurrent moves based on stale ghost state can be
        // globally negative; see the bounded-degradation property below.)
        let q_singleton = modularity(&g, &singleton_assignment(g.num_vertices()));
        let out = run_distributed(&g, 1, &DistConfig::baseline());
        prop_assert!(
            out.modularity >= q_singleton - 1e-9,
            "q = {} vs singleton {}", out.modularity, q_singleton
        );
    }

    #[test]
    fn serial_louvain_never_reduces_modularity_below_singletons(g in arb_graph()) {
        let q_singleton = modularity(&g, &singleton_assignment(g.num_vertices()));
        let out = distributed_louvain::dist::serial_louvain(&g, 1e-6);
        prop_assert!(
            out.modularity >= q_singleton - 1e-9,
            "q = {} vs singleton {}", out.modularity, q_singleton
        );
    }

    #[test]
    fn distributed_louvain_output_is_valid_and_degradation_bounded(
        g in arb_graph(), p in 2usize..4
    ) {
        let q_singleton = modularity(&g, &singleton_assignment(g.num_vertices()));
        let out = run_distributed(&g, p, &DistConfig::baseline());
        // Lag-induced regressions exist but stay bounded on these tiny
        // inputs.
        prop_assert!(
            out.modularity >= q_singleton - 0.25,
            "q = {} vs singleton {}", out.modularity, q_singleton
        );
        // The assignment is dense and complete, and the reported
        // modularity is the true modularity of the reported assignment.
        prop_assert_eq!(out.assignment.len(), g.num_vertices());
        prop_assert_eq!(count_communities(&out.assignment), out.num_communities);
        let q = modularity(&g, &out.assignment);
        prop_assert!((out.modularity - q).abs() < 1e-9);
    }

    #[test]
    fn renumber_is_idempotent_and_dense(comm in proptest::collection::vec(0u64..50, 1..100)) {
        let (dense, k) = renumber(&comm);
        prop_assert_eq!(dense.len(), comm.len());
        let max = *dense.iter().max().unwrap() as usize;
        prop_assert_eq!(max + 1, k);
        let (dense2, k2) = renumber(&dense);
        prop_assert_eq!(&dense2, &dense);
        prop_assert_eq!(k2, k);
        // Same-community relations preserved.
        for i in 0..comm.len() {
            for j in 0..comm.len() {
                prop_assert_eq!(comm[i] == comm[j], dense[i] == dense[j]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rank-health backoff policy (satellite of the watchdog subsystem)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The backoff contract the watchdog ladder relies on, over random
    /// policies: delays are monotone non-decreasing in the attempt
    /// number, jitter stays within a quarter of the exponential term,
    /// the cap is never exceeded, and a fixed seed reproduces the exact
    /// sequence.
    #[test]
    fn backoff_is_monotone_jitter_bounded_capped_and_deterministic(
        base_us in 1u64..500,
        cap_mult in 1u32..64,
        seed in 0u64..u64::MAX,
        salt in 0u64..u64::MAX,
    ) {
        use distributed_louvain::comm::BackoffPolicy;
        use std::time::Duration;
        let base = Duration::from_micros(base_us);
        let cap = base * cap_mult;
        let policy = BackoffPolicy { base, cap, seed };
        let twin = BackoffPolicy { base, cap, seed };
        let mut prev = Duration::ZERO;
        for attempt in 0..24u32 {
            let d = policy.delay(attempt, salt);
            prop_assert_eq!(d, twin.delay(attempt, salt), "same seed, same delay");
            prop_assert!(d >= prev, "attempt {}: {:?} < previous {:?}", attempt, d, prev);
            prop_assert!(d <= cap, "attempt {}: {:?} exceeds cap {:?}", attempt, d, cap);
            // Pre-cap bounds: exp <= delay <= exp * 5/4 (jitter < exp/4).
            let exp = (base.as_nanos()) << attempt.min(63);
            let lo = exp.min(cap.as_nanos());
            let hi = (exp + exp / 4).min(cap.as_nanos());
            prop_assert!(
                (lo..=hi).contains(&d.as_nanos()),
                "attempt {}: {:?} outside [{}, {}] ns", attempt, d, lo, hi
            );
            prev = d;
        }
        // A different seed produces a different sequence somewhere
        // (statistically; equal-everywhere would mean the seed is dead).
        let other = BackoffPolicy { base, cap, seed: seed ^ 1 };
        let differs = (0..24u32).any(|a| {
            let x = policy.delay(a, salt);
            x != other.delay(a, salt) || x == cap
        });
        prop_assert!(differs, "seed has no effect and cap never reached");
    }

    /// Repairing an edge list is idempotent, conserves non-loop weight,
    /// and never invents edges.
    #[test]
    fn ingest_repair_is_idempotent_and_weight_conserving(
        n in 2u64..30,
        edges in proptest::collection::vec((0u64..30, 0u64..30, 1u32..5), 1..120),
    ) {
        let triples: Vec<(u64, u64, f64)> = edges
            .into_iter()
            .map(|(u, v, w)| (u % n, v % n, w as f64))
            .collect();
        let non_loop_weight: f64 = triples
            .iter()
            .filter(|(u, v, _)| u != v)
            .map(|(_, _, w)| w)
            .sum();
        let mut el = EdgeList::from_edges(n, triples.iter().copied());
        let before = el.num_edges();
        let stats = el.repair();
        prop_assert_eq!(
            before as u64,
            el.num_edges() as u64 + stats.duplicates_merged + stats.self_loops_dropped
        );
        prop_assert!((el.total_weight() - non_loop_weight).abs() < 1e-9);
        for e in el.edges() {
            prop_assert!(e.u != e.v, "self-loop survived repair");
        }
        let again = el.repair();
        prop_assert!(!again.any(), "repair not idempotent: {:?}", again);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Determinism acceptance for the colored sweep schedule: with a
    /// fixed seed (and therefore a fixed coloring), a single-rank run at
    /// 4 worker threads must produce a RunArtifact byte-identical to the
    /// 1-thread run once measurement-only fields are normalized — the
    /// wall clock, the modeled compute (which is divided by the thread
    /// speedup by construction), and the thread count recorded in the
    /// report metadata. Everything the algorithm itself decides —
    /// assignment, modularity trajectory, traffic, phase/iteration
    /// counts — must already agree bit for bit.
    #[test]
    fn colored_artifacts_are_byte_identical_across_threads(g in arb_graph()) {
        use distributed_louvain::dist::{build_run_report, ReportMeta, SweepMode};
        use distributed_louvain::obs::{run_label, RunArtifact, RunEntry};

        let meta = ReportMeta::new("prop", g.num_vertices() as u64, g.num_edges() as u64)
            .variant("baseline/colored");
        let mut artifacts = Vec::new();
        let mut raw = Vec::new();
        for threads in [1usize, 4] {
            let cfg = DistConfig {
                sweep: SweepMode::Colored,
                threads_per_rank: threads,
                ..DistConfig::baseline()
            };
            let out = run_distributed(&g, 1, &cfg);
            let mut report = build_run_report(&out, &meta);
            // Normalize measurement-only fields; all else must match.
            report.wall_seconds = 0.0;
            report.modeled.compute = 0.0;
            artifacts.push(
                RunArtifact {
                    name: "prop".into(),
                    description: "thread-count determinism probe".into(),
                    runs: vec![RunEntry {
                        label: run_label("prop", 1, "colored"),
                        report,
                        telemetry: Vec::new(),
                    }],
                }
                .to_json_string(),
            );
            raw.push((out.assignment, out.modularity));
        }
        prop_assert_eq!(raw[0].0.clone(), raw[1].0.clone(), "assignments diverged");
        prop_assert_eq!(raw[0].1.to_bits(), raw[1].1.to_bits(), "modularity diverged");
        prop_assert_eq!(&artifacts[0], &artifacts[1], "artifact bytes diverged");
    }
}
