//! Tier-1 resilience guarantees: a run killed at any phase and resumed
//! from its newest checkpoint produces **bit-identical** final
//! membership and modularity to an uninterrupted run, transient comm
//! faults are absorbed without changing any result, and fault injection
//! is fully deterministic from its seed.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use louvain_comm::{FaultPlan, RunConfig};
use louvain_dist::{
    run_distributed, run_distributed_resilient, CheckpointOptions, DistConfig, DistOutcome,
    ResilOptions,
};
use louvain_graph::gen::{lfr, rmat, ssca2, LfrParams, RmatParams, Ssca2Params};
use louvain_graph::Csr;

/// Tracing toggles are process-global; tests that flip them serialize.
static TRACE_FLAG: Mutex<()> = Mutex::new(());

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("louvain-resilience-{}", std::process::id()))
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn with_plan(spec: &str) -> RunConfig {
    RunConfig {
        fault: Some(Arc::new(FaultPlan::parse(spec).expect("fault spec"))),
        ..RunConfig::default()
    }
}

fn assert_bit_identical(a: &DistOutcome, b: &DistOutcome, what: &str) {
    assert_eq!(a.assignment, b.assignment, "{what}: assignments differ");
    assert_eq!(
        a.modularity.to_bits(),
        b.modularity.to_bits(),
        "{what}: modularity differs ({} vs {})",
        a.modularity,
        b.modularity
    );
    assert_eq!(a.num_communities, b.num_communities, "{what}");
    assert_eq!(a.phases, b.phases, "{what}: phase counts differ");
}

/// The paper's three benchmark families, sized for test time.
fn graphs() -> Vec<(&'static str, Csr)> {
    vec![
        (
            "ssca2",
            ssca2(Ssca2Params {
                n: 700,
                max_clique_size: 14,
                inter_clique_prob: 0.05,
                seed: 5,
            })
            .graph,
        ),
        ("lfr", lfr(LfrParams::small(900, 11)).graph),
        ("rmat", rmat(RmatParams::social(9, 6, 3)).graph),
    ]
}

/// The tentpole guarantee: for every rank count, every graph family,
/// and a kill at EVERY phase of the run, crash + restore from the
/// newest checkpoint reproduces the uninterrupted run bit for bit.
#[test]
fn kill_and_resume_is_bit_identical_for_every_phase() {
    let cfg = DistConfig::baseline();
    for (name, g) in graphs() {
        for p in [1, 2, 8] {
            let clean = run_distributed(&g, p, &cfg);
            assert!(clean.phases >= 2, "{name}: want a multi-phase run");
            for kill_phase in 0..clean.phases {
                let label = format!("{name} p={p} kill at phase {kill_phase}");
                let dir = tmp_dir(&format!("kill-{name}-p{p}-k{kill_phase}"));
                let resil = ResilOptions {
                    checkpoint: Some(CheckpointOptions::new(&dir)),
                    resume: false,
                    max_recoveries: 1,
                    ..ResilOptions::none()
                };
                let out = run_distributed_resilient(
                    &g,
                    p,
                    &cfg,
                    with_plan(&format!("crash:rank=0,phase={kill_phase},op=0")),
                    &resil,
                )
                .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(out.recoveries, 1, "{label}");
                // The kill lands on the first comm op of phase k, so the
                // newest complete checkpoint is the phase-k boundary
                // (none at all for k=0: clean restart).
                let expected_resume = (kill_phase > 0).then_some(kill_phase as u64);
                assert_eq!(out.resumed_from_phase, expected_resume, "{label}");
                assert_bit_identical(&out, &clean, &label);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// Checkpoint/resume under the colored parallel sweep: a crash landing
/// mid-phase (on a comm op in the middle of an iteration's exchange
/// sequence) while ranks sweep with 4 worker threads must restore and
/// replay to results bit-identical to the uninterrupted parallel run —
/// and to the 1-thread run, since the colored schedule is thread-count
/// deterministic.
#[test]
fn parallel_sweep_crash_mid_phase_resumes_bit_identically() {
    let cfg = DistConfig {
        sweep: louvain_dist::SweepMode::Colored,
        threads_per_rank: 4,
        ..DistConfig::baseline()
    };
    let serial_cfg = DistConfig {
        sweep: louvain_dist::SweepMode::Colored,
        threads_per_rank: 1,
        ..DistConfig::baseline()
    };
    for (name, g) in graphs() {
        for p in [2, 4] {
            let clean = run_distributed(&g, p, &cfg);
            assert!(clean.phases >= 2, "{name}: want a multi-phase run");
            assert_bit_identical(
                &clean,
                &run_distributed(&g, p, &serial_cfg),
                &format!("{name} p={p} threads 4 vs 1"),
            );
            // op=2 lands inside an iteration's 4-step comm sequence, so
            // the recovery replays a partially swept phase.
            for (kill_phase, op) in [(1usize, 2usize), (clean.phases - 1, 2)] {
                let label = format!("{name} p={p} kill at phase {kill_phase} op {op}");
                let dir = tmp_dir(&format!("par-kill-{name}-p{p}-k{kill_phase}"));
                let resil = ResilOptions {
                    checkpoint: Some(CheckpointOptions::new(&dir)),
                    resume: false,
                    max_recoveries: 1,
                    ..ResilOptions::none()
                };
                let out = run_distributed_resilient(
                    &g,
                    p,
                    &cfg,
                    with_plan(&format!("crash:rank=0,phase={kill_phase},op={op}")),
                    &resil,
                )
                .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(out.recoveries, 1, "{label}");
                assert_bit_identical(&out, &clean, &label);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// Several crashes in one run: each recovery consumes one crash rule
/// and restarts from the newest checkpoint at that moment.
#[test]
fn repeated_crashes_are_each_recovered_from_the_newest_checkpoint() {
    let g = lfr(LfrParams::small(900, 11)).graph;
    let cfg = DistConfig::baseline();
    let p = 2;
    let clean = run_distributed(&g, p, &cfg);
    let last = clean.phases - 1;
    let dir = tmp_dir("repeated-crashes");
    let resil = ResilOptions {
        checkpoint: Some(CheckpointOptions::new(&dir)),
        resume: false,
        max_recoveries: 2,
        ..ResilOptions::none()
    };
    let spec = format!("crash:rank=1,phase=1,op=0;crash:rank=0,phase={last},op=1");
    let out = run_distributed_resilient(&g, p, &cfg, with_plan(&spec), &resil)
        .expect("two crashes within budget");
    assert_eq!(out.recoveries, 2);
    assert_eq!(out.resumed_from_phase, Some(last as u64));
    assert_bit_identical(&out, &clean, "two-crash recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An exhausted recovery budget surfaces as a descriptive `Err`, not a
/// panic — the CLI turns this into a nonzero exit.
#[test]
fn exhausted_recovery_budget_is_an_error() {
    let g = ssca2(Ssca2Params {
        n: 400,
        max_clique_size: 10,
        inter_clique_prob: 0.05,
        seed: 2,
    })
    .graph;
    let cfg = DistConfig::baseline();
    let dir = tmp_dir("no-budget");
    let resil = ResilOptions {
        checkpoint: Some(CheckpointOptions::new(&dir)),
        resume: false,
        max_recoveries: 0,
        ..ResilOptions::none()
    };
    let err =
        run_distributed_resilient(&g, 2, &cfg, with_plan("crash:rank=0,phase=1,op=0"), &resil)
            .expect_err("budget 0 cannot absorb a crash");
    assert!(
        err.contains("rank 0") && err.contains("budget"),
        "unhelpful error: {err}"
    );
    // The checkpoint the crashed run left behind resumes cleanly.
    let resumed = run_distributed_resilient(
        &g,
        2,
        &cfg,
        RunConfig::default(),
        &ResilOptions {
            checkpoint: Some(CheckpointOptions::new(&dir)),
            resume: true,
            max_recoveries: 0,
            ..ResilOptions::none()
        },
    )
    .expect("resume after external restart");
    assert_eq!(resumed.resumed_from_phase, Some(1));
    let clean = run_distributed(&g, 2, &cfg);
    assert_bit_identical(&resumed, &clean, "resume-after-error");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming under a different configuration must refuse loudly instead
/// of silently diverging; so must resuming without a checkpoint dir.
#[test]
fn resume_validation_refuses_incompatible_state() {
    let g = lfr(LfrParams::small(600, 7)).graph;
    let cfg = DistConfig::baseline();
    let dir = tmp_dir("validation");
    let resil = ResilOptions {
        checkpoint: Some(CheckpointOptions::new(&dir)),
        resume: false,
        max_recoveries: 0,
        ..ResilOptions::none()
    };
    run_distributed_resilient(&g, 2, &cfg, RunConfig::default(), &resil).expect("checkpointed run");

    let mut other = cfg.clone();
    other.seed ^= 1;
    let err = run_distributed_resilient(
        &g,
        2,
        &other,
        RunConfig::default(),
        &ResilOptions {
            resume: true,
            ..resil.clone()
        },
    )
    .expect_err("different config must not resume");
    assert!(err.contains("configuration"), "unhelpful error: {err}");

    let err = run_distributed_resilient(
        &g,
        3,
        &cfg,
        RunConfig::default(),
        &ResilOptions {
            resume: true,
            ..resil.clone()
        },
    )
    .expect_err("different rank count must not resume");
    assert!(err.contains("rank"), "unhelpful error: {err}");

    let err = run_distributed_resilient(
        &g,
        2,
        &cfg,
        RunConfig::default(),
        &ResilOptions {
            checkpoint: None,
            resume: true,
            max_recoveries: 0,
            ..ResilOptions::none()
        },
    )
    .expect_err("resume without a checkpoint dir");
    assert!(err.contains("checkpoint"), "unhelpful error: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Transient comm faults (drops, truncations, duplicates, delays) are
/// absorbed by the retry protocol without changing a single result, the
/// injected counts land in the traffic counters, and two runs under the
/// same seed inject exactly the same faults.
#[test]
fn transient_faults_preserve_results_and_are_deterministic() {
    let g = lfr(LfrParams::small(800, 3)).graph;
    let cfg = DistConfig::baseline();
    let p = 4;
    let spec = "seed=7;drop:prob=0.05;truncate:prob=0.03;duplicate:prob=0.05;delay:prob=0.01";
    let clean = run_distributed(&g, p, &cfg);

    let run_faulty = || {
        run_distributed_resilient(&g, p, &cfg, with_plan(spec), &ResilOptions::none())
            .expect("transient faults need no recovery budget")
    };
    let faulty = run_faulty();
    assert_bit_identical(&faulty, &clean, "transient faults");

    let t = &faulty.traffic;
    assert!(
        t.fault_drops + t.fault_truncations + t.fault_duplicates + t.fault_delays > 0,
        "plan injected nothing"
    );
    // Every dropped or truncated copy forces exactly one retry.
    assert_eq!(t.fault_retries, t.fault_drops + t.fault_truncations);

    let again = run_faulty();
    assert_bit_identical(&again, &clean, "second faulty run");
    for (a, b) in faulty.per_rank_traffic.iter().zip(&again.per_rank_traffic) {
        assert_eq!(a.fault_drops, b.fault_drops);
        assert_eq!(a.fault_delays, b.fault_delays);
        assert_eq!(a.fault_duplicates, b.fault_duplicates);
        assert_eq!(a.fault_truncations, b.fault_truncations);
        assert_eq!(a.fault_retries, b.fault_retries);
        assert_eq!(
            a.p2p_bytes, b.p2p_bytes,
            "fault injection not deterministic"
        );
    }
}

/// Crashes and transient faults together: the recovery driver skips the
/// consumed crash rule, the retry protocol keeps absorbing the rest.
#[test]
fn crash_recovery_survives_concurrent_transient_faults() {
    let g = rmat(RmatParams::social(9, 6, 3)).graph;
    let cfg = DistConfig::baseline();
    let p = 2;
    let clean = run_distributed(&g, p, &cfg);
    let dir = tmp_dir("crash-plus-noise");
    let resil = ResilOptions {
        checkpoint: Some(CheckpointOptions::new(&dir)),
        resume: false,
        max_recoveries: 1,
        ..ResilOptions::none()
    };
    let spec = "seed=13;drop:prob=0.04;duplicate:prob=0.04;crash:rank=1,phase=1,op=2";
    let out = run_distributed_resilient(&g, p, &cfg, with_plan(spec), &resil)
        .expect("one crash within budget");
    assert_eq!(out.recoveries, 1);
    assert_bit_identical(&out, &clean, "crash + transient noise");
    assert!(out.traffic.fault_drops + out.traffic.fault_duplicates > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: the delta ghost refresh must keep working across a
/// resume. Each phase's first exchange is always full (no baseline
/// yet); any *additional* full exchange post-resume can only come from
/// the >¼-moved fallback inside the delta policy — so seeing more fulls
/// than ranks×phases proves the fallback fired after restore, and the
/// bit-identical outcome proves it (and the delta path, which must also
/// appear) stayed correct.
#[test]
fn delta_ghost_refresh_falls_back_to_full_after_resume() {
    use louvain_graph::gen::{grid3d, Grid3dParams};
    let _serial = TRACE_FLAG.lock().unwrap_or_else(|p| p.into_inner());
    // A 3-D grid coarsens through many phases with heavy churn at every
    // scale, so the >¼-moved condition reliably holds post-resume.
    let g = grid3d(Grid3dParams {
        nx: 12,
        ny: 12,
        nz: 8,
        seed: 1,
        diagonals: false,
        fill: 1.0,
    })
    .graph;
    let cfg = DistConfig {
        delta_ghost_refresh: true,
        ..DistConfig::baseline()
    };
    let p = 2;
    let clean = run_distributed(&g, p, &cfg);
    let dir = tmp_dir("delta-fallback");
    let checkpoint = Some(CheckpointOptions::new(&dir));

    // Stage 1: crash at phase 1 with no recovery budget (tracing off).
    let crashed = run_distributed_resilient(
        &g,
        p,
        &cfg,
        with_plan("crash:rank=0,phase=1,op=0"),
        &ResilOptions {
            checkpoint: checkpoint.clone(),
            resume: false,
            max_recoveries: 0,
            ..ResilOptions::none()
        },
    );
    assert!(crashed.is_err());

    // Stage 2: resume with tracing on, so the harvested counters cover
    // exactly the post-resume phases.
    louvain_obs::set_enabled(true);
    let out = run_distributed_resilient(
        &g,
        p,
        &cfg,
        RunConfig::default(),
        &ResilOptions {
            checkpoint,
            resume: true,
            max_recoveries: 0,
            ..ResilOptions::none()
        },
    );
    louvain_obs::set_enabled(false);
    let out = out.expect("resume");
    assert_eq!(out.resumed_from_phase, Some(1));
    assert_bit_identical(&out, &clean, "delta refresh across resume");

    let metrics = out.trace.as_ref().expect("traced run").merged_metrics();
    let full = metrics
        .counters
        .get("ghost.full.refreshes")
        .copied()
        .unwrap_or(0);
    let delta = metrics
        .counters
        .get("ghost.delta.refreshes")
        .copied()
        .unwrap_or(0);
    let post_resume_phases = (out.phases - 1) as u64;
    assert!(delta >= 1, "delta refresh never ran post-resume");
    assert!(
        full > p as u64 * post_resume_phases,
        "no >¼-moved fallback fired post-resume (full={full}, delta={delta}, \
         post-resume phases={post_resume_phases})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpointing must not perturb the trajectory: checkpoint-on and
/// checkpoint-off runs are bit-identical, and all checkpoint traffic is
/// attributed to the dedicated `checkpoint` comm step.
#[test]
fn checkpointing_never_changes_results_and_is_step_attributed() {
    use louvain_comm::CommStep;
    let g = ssca2(Ssca2Params {
        n: 700,
        max_clique_size: 14,
        inter_clique_prob: 0.05,
        seed: 5,
    })
    .graph;
    let cfg = DistConfig::baseline();
    for p in [1, 4] {
        let clean = run_distributed(&g, p, &cfg);
        let dir = tmp_dir(&format!("overhead-p{p}"));
        let resil = ResilOptions {
            checkpoint: Some(CheckpointOptions::new(&dir)),
            resume: false,
            max_recoveries: 0,
            ..ResilOptions::none()
        };
        let ckpt = run_distributed_resilient(&g, p, &cfg, RunConfig::default(), &resil)
            .expect("checkpointed run");
        assert_bit_identical(&ckpt, &clean, "checkpoint-on vs off");
        assert_eq!(ckpt.recoveries, 0);
        assert_eq!(ckpt.resumed_from_phase, None);
        // All non-checkpoint steps carry exactly the clean run's bytes.
        for step in CommStep::ALL {
            if step == CommStep::Checkpoint {
                continue;
            }
            assert_eq!(
                ckpt.traffic.step_bytes_for(step),
                clean.traffic.step_bytes_for(step),
                "p={p}: step {} perturbed by checkpointing",
                step.label()
            );
        }
        // Slabs really hit the disk, under a committed manifest.
        assert!(dir.join("LATEST").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Rank-health watchdog: hang detection and recovery
// ---------------------------------------------------------------------------

use louvain_comm::{BackoffPolicy, CommStep, HealthConfig};
use std::time::Duration;

/// A watchdog tuned for test time: short deadline, few extensions,
/// fast backoff. Detection of a hang lands within a few hundred ms.
/// The checkpoint step gets a higher retry cap (the per-step override
/// surface): slab serialization + fsync can keep a healthy rank away
/// from its heartbeat for longer than the tight test deadline.
fn fast_health() -> HealthConfig {
    let mut cfg = HealthConfig {
        deadline: Duration::from_millis(60),
        max_retries: 2,
        backoff: BackoffPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(2),
            seed: 0,
        },
        ..HealthConfig::default()
    };
    // fsync storms on a loaded box can keep a rank from beating for
    // hundreds of ms; the deep cap keeps checkpoint I/O from being
    // misread as a hang while every other step stays snappy.
    cfg.step_max_retries[CommStep::Checkpoint.index()] = Some(30);
    cfg
}

fn with_plan_and_health(spec: &str, health: HealthConfig) -> RunConfig {
    RunConfig {
        fault: Some(Arc::new(FaultPlan::parse(spec).expect("fault spec"))),
        health,
        ..RunConfig::default()
    }
}

/// The watchdog counterpart of the kill-and-resume tentpole: a rank
/// that goes silent (hangs) at EVERY phase, for every rank count and
/// graph family, is detected within the configured deadline ladder,
/// declared hung, and recovered from the newest checkpoint — with a
/// final result bit-identical to the uninterrupted run.
#[test]
fn hang_recovery_is_bit_identical_for_every_phase() {
    let cfg = DistConfig::baseline();
    for (name, g) in graphs() {
        for p in [1, 2, 8] {
            let clean = run_distributed(&g, p, &cfg);
            assert!(clean.phases >= 2, "{name}: want a multi-phase run");
            // The hung rank: last rank when p > 1 (so rank 0, which owns
            // the gathers, does the detecting), itself at p = 1 (the
            // self-timeout path — no peer exists to notice).
            let victim = p - 1;
            for hang_phase in 0..clean.phases {
                let label = format!("{name} p={p} hang at phase {hang_phase}");
                let dir = tmp_dir(&format!("hang-{name}-p{p}-h{hang_phase}"));
                let resil = ResilOptions {
                    checkpoint: Some(CheckpointOptions::new(&dir)),
                    resume: false,
                    max_recoveries: 1,
                    ..ResilOptions::none()
                };
                let out = run_distributed_resilient(
                    &g,
                    p,
                    &cfg,
                    with_plan_and_health(
                        &format!("hang:rank={victim},phase={hang_phase},op=0"),
                        fast_health(),
                    ),
                    &resil,
                )
                .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(out.recoveries, 1, "{label}");
                assert_eq!(out.hung_events.len(), 1, "{label}");
                let hung = &out.hung_events[0];
                assert_eq!(hung.rank, victim, "{label}: wrong rank declared");
                assert_eq!(hung.phase, hang_phase as u64, "{label}");
                // Who wins the detection race is timing-dependent: a
                // peer's ladder normally lands first (~2× deadline vs
                // the 3× self-timeout), but on a loaded machine the
                // self-timeout may fire before the peer's final window
                // expires. Either detector is a valid detection; only
                // the declared rank and phase are deterministic.
                assert!(hung.detector < p, "{label}: detector out of range");
                if p == 1 {
                    assert_eq!(hung.detector, 0, "{label}: must self-declare");
                }
                let expected_resume = (hang_phase > 0).then_some(hang_phase as u64);
                assert_eq!(out.resumed_from_phase, expected_resume, "{label}");
                assert_bit_identical(&out, &clean, &label);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// A slow rank (stalling longer than the deadline, but heartbeating)
/// must be carried as a straggler — deadline extensions, no hang
/// declaration, no recovery — and the result must not change.
#[test]
fn stall_straggler_is_extended_not_declared_hung() {
    let g = lfr(LfrParams::small(700, 5)).graph;
    let cfg = DistConfig::baseline();
    let p = 2;
    let clean = run_distributed(&g, p, &cfg);
    // 150 ms stalls against a 60 ms deadline. The stall decision is
    // op-keyed (phase-independent), so under this seed op 10 of every
    // epoch stalls — roughly one straggler episode per phase.
    let spec = "seed=2;stall:rank=1,ms=150,prob=0.05";
    let out = run_distributed_resilient(
        &g,
        p,
        &cfg,
        with_plan_and_health(spec, fast_health()),
        &ResilOptions::none(),
    )
    .expect("stalls must not consume the recovery budget");
    assert_eq!(out.recoveries, 0);
    assert!(out.hung_events.is_empty(), "straggler misdeclared as hung");
    assert_bit_identical(&out, &clean, "stall straggler");
    let t = &out.traffic;
    assert!(t.fault_stalls > 0, "the stall rule never fired");
    assert!(
        t.wd_stragglers > 0,
        "no straggler extension recorded (stalls={}, timeouts={})",
        t.fault_stalls,
        t.wd_timeouts
    );
}

/// Corrupt payloads (checksum-detected) and flaky bursts are absorbed
/// by the retransmission protocol without touching results, and both
/// runs under one seed inject identical faults.
#[test]
fn corrupt_payload_and_flaky_burst_are_absorbed_deterministically() {
    let g = ssca2(Ssca2Params {
        n: 600,
        max_clique_size: 12,
        inter_clique_prob: 0.05,
        seed: 8,
    })
    .graph;
    let cfg = DistConfig::baseline();
    let p = 4;
    let clean = run_distributed(&g, p, &cfg);
    let spec = "seed=21;corrupt-payload:prob=0.03;flaky-burst:prob=0.02,len=2";
    let run_faulty = || {
        run_distributed_resilient(
            &g,
            p,
            &cfg,
            with_plan_and_health(spec, HealthConfig::default()),
            &ResilOptions::none(),
        )
        .expect("transient corruption needs no recovery budget")
    };
    let faulty = run_faulty();
    assert_bit_identical(&faulty, &clean, "corruption + bursts");
    let t = &faulty.traffic;
    assert!(t.fault_corruptions > 0, "corrupt-payload never fired");
    assert!(t.fault_bursts > 0, "flaky-burst never fired");
    assert_eq!(
        t.checksum_rejects, t.fault_corruptions,
        "every corruption must be caught by the receiver checksum"
    );
    assert_eq!(t.fault_retries, t.fault_corruptions + t.fault_bursts);
    let again = run_faulty();
    for (a, b) in faulty.per_rank_traffic.iter().zip(&again.per_rank_traffic) {
        assert_eq!(a.fault_corruptions, b.fault_corruptions);
        assert_eq!(a.fault_bursts, b.fault_bursts);
        assert_eq!(a.checksum_rejects, b.checksum_rejects);
        assert_eq!(a.step_retries, b.step_retries);
    }
}

/// The run report surfaces the health story: hung-rank events with
/// phase/op attribution, per-rank watchdog counters, and slowest-rank
/// attribution — and it round-trips through JSON.
#[test]
fn run_report_carries_health_section_and_hung_events() {
    use louvain_dist::{build_run_report, ReportMeta};
    use louvain_obs::RunReport;
    let g = lfr(LfrParams::small(700, 9)).graph;
    let cfg = DistConfig::baseline();
    let p = 2;
    let dir = tmp_dir("report-health");
    let resil = ResilOptions {
        checkpoint: Some(CheckpointOptions::new(&dir)),
        resume: false,
        max_recoveries: 1,
        ..ResilOptions::none()
    };
    let out = run_distributed_resilient(
        &g,
        p,
        &cfg,
        with_plan_and_health("hang:rank=1,phase=1,op=0", fast_health()),
        &resil,
    )
    .expect("hang within budget");
    let meta = ReportMeta::new("lfr-700", 700, g.num_edges() as u64);
    let report = build_run_report(&out, &meta);
    assert!(report.health.any(), "health section empty after a hang");
    assert_eq!(report.health.hung_events.len(), 1);
    assert_eq!(report.health.hung_events[0].rank, 1);
    assert_eq!(report.health.hung_events[0].phase, 1);
    assert!(!report.health.hung_events[0].step.is_empty());
    assert_eq!(report.health.per_rank.len(), p);
    assert!(report.health.slowest_rank.is_some());
    assert_eq!(report.recoveries, 1);
    let back = RunReport::from_json_str(&report.to_json_string()).expect("round-trip");
    assert_eq!(back.health, report.health);
    let _ = std::fs::remove_dir_all(&dir);
}
