//! Out-of-core storage end-to-end: the three [`GraphSource`] loading
//! modes must be indistinguishable by results.
//!
//! The matrix covers p∈{1,2,8} × {SSCA2, RMAT, LFR} × {baseline delta,
//! colored t4 sweep}, comparing community assignment and modularity
//! bits across the in-memory scatter, the shared mmap, and the per-rank
//! byte-range loads; at p=2 the traced arm additionally compares the
//! per-iteration telemetry rows and checks that slab-backed runs record
//! the `mem.mapped_bytes` gauge the in-memory run does not.

use std::path::{Path, PathBuf};

use distributed_louvain::comm::RunConfig;
use distributed_louvain::dist::{
    build_run_report, run_distributed_resilient_source, DistConfig, DistOutcome, GraphSource,
    ReportMeta, ResilOptions, SweepMode, Variant,
};
use distributed_louvain::graph::gen::{
    lfr, lfr_stream, rmat, rmat_stream, ssca2, ssca2_stream, LfrParams, RmatParams, Ssca2Params,
};
use distributed_louvain::graph::{Csr, EdgeSink};
use distributed_louvain::store::{Slab, SlabBuilder, SlabOptions};

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("louvain-storage-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build the in-memory CSR and the slab from the *same* generator edge
/// stream, so any divergence below is the loader's fault, not the
/// generator's.
fn build_pair(
    name: &str,
    dir: &Path,
    gen_csr: Csr,
    stream: impl FnOnce(&mut SlabBuilder),
) -> (Csr, PathBuf) {
    let path = dir.join(format!("{name}.slab"));
    let mut b = SlabBuilder::new(gen_csr.num_vertices() as u64, SlabOptions::default());
    stream(&mut b);
    b.finish(&path).unwrap();
    (gen_csr, path)
}

fn run_src(src: GraphSource<'_>, p: usize, cfg: &DistConfig) -> DistOutcome {
    run_distributed_resilient_source(src, p, cfg, RunConfig::default(), &ResilOptions::none())
        .expect("source run")
}

#[test]
fn all_three_load_paths_are_bit_identical_across_the_matrix() {
    let dir = tmp_dir();
    let graphs: Vec<(&str, Csr, PathBuf)> = vec![
        {
            let p = Ssca2Params::paper(800, 9);
            let (g, path) = build_pair("ssca2", &dir, ssca2(p).graph, |b| {
                ssca2_stream(p, b).unwrap();
            });
            ("ssca2", g, path)
        },
        {
            let p = RmatParams::social(10, 8, 5);
            let (g, path) = build_pair("rmat", &dir, rmat(p).graph, |b| {
                rmat_stream(p, b).unwrap();
            });
            ("rmat", g, path)
        },
        {
            let p = LfrParams::small(600, 7);
            let (g, path) = build_pair("lfr", &dir, lfr(p).graph, |b| {
                lfr_stream(p, b).unwrap();
            });
            ("lfr", g, path)
        },
    ];

    let arms: Vec<(&str, DistConfig)> = vec![
        (
            "delta",
            DistConfig {
                delta_ghost_refresh: true,
                ..DistConfig::with_variant(Variant::Et { alpha: 0.25 })
            },
        ),
        (
            "colored-t4",
            DistConfig {
                delta_ghost_refresh: true,
                sweep: SweepMode::Colored,
                threads_per_rank: 4,
                ..DistConfig::with_variant(Variant::Et { alpha: 0.25 })
            },
        ),
    ];

    for (name, g, path) in &graphs {
        let slab = Slab::open(path).unwrap();
        assert_eq!(
            &slab.to_csr(),
            g,
            "{name}: slab round-trip must reproduce the in-memory CSR"
        );
        for (arm, cfg) in &arms {
            for p in [1usize, 2, 8] {
                let mem = run_src(GraphSource::Memory(g), p, cfg);
                let mapped = run_src(GraphSource::SlabMapped(&slab), p, cfg);
                let ranged = run_src(GraphSource::SlabRanged(path), p, cfg);
                for (mode, out) in [("mapped", &mapped), ("ranged", &ranged)] {
                    assert_eq!(
                        mem.assignment, out.assignment,
                        "{name}/{arm} p={p}: {mode} assignment diverged from memory"
                    );
                    assert_eq!(
                        mem.modularity.to_bits(),
                        out.modularity.to_bits(),
                        "{name}/{arm} p={p}: {mode} modularity diverged from memory"
                    );
                    assert_eq!(
                        (mem.phases, mem.total_iterations),
                        (out.phases, out.total_iterations),
                        "{name}/{arm} p={p}: {mode} trajectory diverged from memory"
                    );
                }
            }
        }
    }

    // Traced p=2 pass on one graph: telemetry rows must match across the
    // load paths, slab runs must carry the mem.mapped_bytes gauge (the
    // in-memory run must not), and every run must record peak RSS.
    let (name, g, path) = &graphs[0];
    let slab = Slab::open(path).unwrap();
    let cfg = &arms[0].1;
    louvain_obs::set_enabled(true);
    let mem = run_src(GraphSource::Memory(g), 2, cfg);
    let mapped = run_src(GraphSource::SlabMapped(&slab), 2, cfg);
    let ranged = run_src(GraphSource::SlabRanged(path), 2, cfg);
    louvain_obs::set_enabled(false);

    let telemetry = |out: &DistOutcome| {
        out.trace
            .as_ref()
            .expect("traced run carries a trace")
            .merged_telemetry()
    };
    assert!(!telemetry(&mem).is_empty(), "{name}: telemetry missing");
    assert_eq!(
        telemetry(&mem),
        telemetry(&mapped),
        "{name}: mapped telemetry diverged"
    );
    assert_eq!(
        telemetry(&mem),
        telemetry(&ranged),
        "{name}: ranged telemetry diverged"
    );

    let meta = ReportMeta::new(*name, g.num_vertices() as u64, g.num_edges() as u64);
    let report = |out: &DistOutcome| build_run_report(out, &meta);
    let mem_report = report(&mem);
    assert!(
        !mem_report.metrics.gauges.contains_key("mem.mapped_bytes"),
        "{name}: in-memory run must not report mapped bytes"
    );
    for (mode, out) in [("mapped", &mapped), ("ranged", &ranged)] {
        let r = report(out);
        let gauge = r
            .metrics
            .gauges
            .get("mem.mapped_bytes")
            .unwrap_or_else(|| panic!("{name}: {mode} run must record mem.mapped_bytes"));
        assert!(gauge.sum > 0.0, "{name}: {mode} mapped bytes gauge empty");
        assert!(
            r.metrics.gauges.get("mem.peak_rss_bytes").map(|x| x.max) > Some(0.0),
            "{name}: {mode} run must record peak RSS"
        );
    }
    // The shared mapping charges each rank the whole file; byte-range
    // loading reads strictly less than 2x the file per rank pair.
    let mapped_sum = report(&mapped).metrics.gauges["mem.mapped_bytes"].sum;
    let ranged_sum = report(&ranged).metrics.gauges["mem.mapped_bytes"].sum;
    assert!(
        ranged_sum < mapped_sum,
        "{name}: ranged loads ({ranged_sum}) should touch fewer bytes than 2 whole mappings ({mapped_sum})"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Edge streams fed through the generic [`EdgeSink`] trait object reach
/// the slab identically to direct calls (the CLI wires sinks through
/// generics; this guards the trait path itself).
#[test]
fn sink_trait_object_and_direct_calls_build_identical_slabs() {
    let dir = tmp_dir();
    let p = RmatParams::social(8, 4, 3);
    let direct = dir.join("direct.slab");
    let via_dyn = dir.join("dyn.slab");

    let mut b = SlabBuilder::new(1 << 8, SlabOptions::default());
    rmat_stream(p, &mut b).unwrap();
    b.finish(&direct).unwrap();

    let mut b = SlabBuilder::new(1 << 8, SlabOptions::default());
    {
        let sink: &mut dyn EdgeSink = &mut b;
        struct Fwd<'a>(&'a mut dyn EdgeSink);
        impl EdgeSink for Fwd<'_> {
            fn edge(
                &mut self,
                u: u64,
                v: u64,
                w: f64,
            ) -> Result<(), distributed_louvain::graph::IngestError> {
                self.0.edge(u, v, w)
            }
        }
        let mut fwd = Fwd(sink);
        rmat_stream(p, &mut fwd).unwrap();
    }
    b.finish(&via_dyn).unwrap();

    assert_eq!(
        std::fs::read(&direct).unwrap(),
        std::fs::read(&via_dyn).unwrap(),
        "slab bytes must not depend on how the sink was dispatched"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
