//! Full-pipeline integration: binary file → per-rank range reads →
//! edge-balanced redistribution → distributed Louvain → quality report,
//! plus determinism guarantees.

use distributed_louvain::comm::run as run_ranks;
use distributed_louvain::dist::runner::run_on_rank;
use distributed_louvain::dist::{f_score, run_distributed, DistConfig};
use distributed_louvain::graph::dist::build_distributed;
use distributed_louvain::graph::{binio, modularity};
use distributed_louvain::prelude::*;

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("louvain-pipeline-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn file_to_communities_pipeline_matches_in_memory_run() {
    let generated = lfr(LfrParams::small(1_200, 55));
    let g = &generated.graph;
    let path = tmp_path("pipeline.graph");
    binio::write_edge_list(&path, &g.to_edge_list()).unwrap();
    let header = binio::read_header(&path).unwrap();
    assert_eq!(header.num_vertices as usize, g.num_vertices());

    let p = 3;
    let cfg = DistConfig::baseline();
    let outcomes = run_ranks(p, |comm| {
        let (lo, hi) = binio::rank_record_range(header.num_edges, comm.rank(), comm.size());
        let edges = binio::read_edge_range(&path, lo, hi).unwrap();
        let lg = build_distributed(comm, header.num_vertices, edges);
        run_on_rank(comm, lg, &cfg)
    });
    let file_q = outcomes[0].modularity;

    let direct = run_distributed(g, p, &cfg);
    // Identical partitioning and seeds → identical result.
    assert!(
        (file_q - direct.modularity).abs() < 1e-9,
        "file {} vs direct {}",
        file_q,
        direct.modularity
    );
}

#[test]
fn quality_report_on_planted_graph_is_high() {
    let generated = ssca2(Ssca2Params {
        n: 1_500,
        max_clique_size: 25,
        inter_clique_prob: 0.02,
        seed: 9,
    });
    let out = run_distributed(&generated.graph, 3, &DistConfig::baseline());
    let report = f_score(generated.ground_truth.as_ref().unwrap(), &out.assignment);
    assert!(report.recall > 0.95, "recall {}", report.recall);
    assert!(report.f_score > 0.9, "F {}", report.f_score);
}

#[test]
fn runs_are_deterministic_for_fixed_seed_and_ranks() {
    let g = weblike(WeblikeParams::web(1_500, 66)).graph;
    let cfg = DistConfig::with_variant(Variant::Etc { alpha: 0.25 });
    let a = run_distributed(&g, 3, &cfg);
    let b = run_distributed(&g, 3, &cfg);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.modularity, b.modularity);
    assert_eq!(a.total_iterations, b.total_iterations);
    assert_eq!(a.phases, b.phases);
}

#[test]
fn traffic_accounting_is_plausible() {
    let g = lfr(LfrParams::small(1_000, 77)).graph;
    let p2 = run_distributed(&g, 2, &DistConfig::baseline());
    let p6 = run_distributed(&g, 6, &DistConfig::baseline());
    // More ranks → more point-to-point traffic (more ghost boundaries).
    assert!(
        p6.traffic.p2p_messages > p2.traffic.p2p_messages,
        "p2p at 6 ranks {} vs 2 ranks {}",
        p6.traffic.p2p_messages,
        p2.traffic.p2p_messages
    );
    // Single rank → no point-to-point bytes at all.
    let p1 = run_distributed(&g, 1, &DistConfig::baseline());
    assert_eq!(p1.traffic.p2p_bytes, 0);
}

#[test]
fn isolated_vertices_and_self_loops_survive_the_pipeline() {
    // A graph with an isolated vertex, a self loop, and two communities.
    let mut el = EdgeList::new(8);
    for (u, v) in [(0, 1), (1, 2), (0, 2), (4, 5), (5, 6), (4, 6)] {
        el.push(u, v, 1.0);
    }
    el.push(3, 3, 2.0); // self-loop island
                        // vertex 7 isolated entirely
    let g = Csr::from_edge_list(el);
    for p in [1, 2, 4] {
        let out = run_distributed(&g, p, &DistConfig::baseline());
        assert_eq!(out.assignment.len(), 8, "p={p}");
        // Triangles grouped.
        assert_eq!(out.assignment[0], out.assignment[1]);
        assert_eq!(out.assignment[4], out.assignment[5]);
        assert_ne!(out.assignment[0], out.assignment[4]);
        let q = modularity(&g, &out.assignment);
        assert!((out.modularity - q).abs() < 1e-9, "p={p}");
    }
}

#[test]
fn more_ranks_than_meaningful_work_is_safe() {
    // 12 vertices across 8 ranks: some ranks own 1-2 vertices.
    let mut el = EdgeList::new(12);
    for v in 0..11 {
        el.push(v, v + 1, 1.0);
    }
    let g = Csr::from_edge_list(el);
    let out = run_distributed(&g, 8, &DistConfig::baseline());
    assert_eq!(out.assignment.len(), 12);
    assert!(out.num_communities >= 1);
}
