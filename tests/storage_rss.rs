//! Memory ceiling of the streamed slab ingest, in its own test binary:
//! `VmHWM` is a process-wide high-water mark, so sharing a binary with
//! tests that materialize graphs in RAM would poison the measurement.

use distributed_louvain::graph::gen::{rmat_stream, RmatParams};
use distributed_louvain::store::{SlabBuilder, SlabOptions};

/// Stream-generate a >=1M-edge RMAT graph straight into a slab and
/// assert the process peak RSS stays well below what materializing the
/// edge list would cost. The builder's external sort keeps O(chunk)
/// triples resident (here 64k × 24 B = 1.5 MiB per buffer); an
/// in-memory build holds every raw triple (24 B each) plus the dedup
/// map and the CSR arrays, several times the raw-triple footprint.
#[test]
fn million_edge_streamed_ingest_is_rss_bounded() {
    let dir = std::env::temp_dir().join(format!("louvain-rss-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rmat_s17.slab");

    let opts = SlabOptions {
        chunk_edges: 1 << 16,
        ..SlabOptions::default()
    };
    let mut b = SlabBuilder::new(1u64 << 17, opts);
    rmat_stream(RmatParams::social(17, 10, 5), &mut b).unwrap();
    let summary = b.finish(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        summary.num_edges >= 1_000_000,
        "graph too small for the claim: {} edges",
        summary.num_edges
    );
    // Raw-triple floor of an in-memory build (EdgeList buffers every
    // accepted edge at 24 bytes before dedup).
    let materialized_floor = summary.edges_in * 24;
    let peak = louvain_obs::peak_rss_bytes();
    assert!(peak > 0, "peak RSS unavailable on this platform");
    assert!(
        peak < materialized_floor,
        "streamed ingest peaked at {peak} B RSS — not below the {materialized_floor} B \
         raw-triple floor of a materialized edge list ({} edges in)",
        summary.edges_in
    );
}
