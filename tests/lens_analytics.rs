//! Acceptance tests for the `lens` analytics over the committed
//! artifacts: every legacy bench file converts into the unified
//! RunArtifact schema, diffing committed artifacts is deterministic
//! (byte-identical output), and the CI gate passes on the committed
//! baseline while failing on a synthetic 2x wall-time regression.

use distributed_louvain::obs::RunArtifact;
use louvain_lens::{diff, gate, show, Thresholds};

fn load(rel: &str) -> RunArtifact {
    let path = format!("{}/{}", env!("CARGO_MANIFEST_DIR"), rel);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    RunArtifact::from_any_json_str(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Every committed artifact — native schema and all legacy shapes —
/// loads through the single `from_any_json_str` entry point.
#[test]
fn committed_artifacts_and_legacy_files_all_parse() {
    for rel in [
        "BENCH_PR5.json",
        "artifacts/bench_pr1.json",
        "artifacts/bench_pr3.json",
        "artifacts/bench_pr4.json",
        "artifacts/runreport_pr2.json",
        "BENCH_PR1.json",
        "BENCH_PR3.json",
        "BENCH_PR4.json",
        "RUNREPORT_PR2.json",
    ] {
        let a = load(rel);
        assert!(!a.runs.is_empty(), "{rel}: no runs");
        for e in &a.runs {
            assert!(!e.label.is_empty(), "{rel}: entry without a label");
        }
    }
}

/// The converted artifacts/ copies carry exactly the runs of the legacy
/// originals (labels are derived, data is not resampled).
#[test]
fn converted_baselines_match_their_legacy_originals() {
    for (legacy, converted) in [
        ("BENCH_PR1.json", "artifacts/bench_pr1.json"),
        ("BENCH_PR3.json", "artifacts/bench_pr3.json"),
        ("BENCH_PR4.json", "artifacts/bench_pr4.json"),
        ("RUNREPORT_PR2.json", "artifacts/runreport_pr2.json"),
    ] {
        let a = load(legacy);
        let b = load(converted);
        assert_eq!(a.runs.len(), b.runs.len(), "{legacy} vs {converted}");
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.report.modularity.to_bits(), y.report.modularity.to_bits());
            assert_eq!(x.report.total_bytes, y.report.total_bytes);
            assert_eq!(x.report.iterations, y.report.iterations);
        }
    }
}

/// Acceptance criterion: `lens diff` of two committed artifacts is
/// deterministic — two independent load+diff+render passes produce
/// byte-identical output.
#[test]
fn diff_of_committed_artifacts_is_deterministic() {
    let t = Thresholds::default();
    let r1 = diff(
        &load("artifacts/bench_pr3.json"),
        &load("BENCH_PR5.json"),
        &t,
    )
    .render();
    let r2 = diff(
        &load("artifacts/bench_pr3.json"),
        &load("BENCH_PR5.json"),
        &t,
    )
    .render();
    assert_eq!(r1, r2, "diff rendering must be byte-identical");
    assert!(r1.contains("matched"));
    // The two bench sweeps share the 18 sweep labels.
    assert!(r1.starts_with("diff: 18 matched"), "{r1}");
}

/// Acceptance criterion: the gate passes on the committed baseline
/// (diffed against itself) with default thresholds.
#[test]
fn gate_passes_on_committed_baseline() {
    let base = load("BENCH_PR5.json");
    let g = gate(&base, &base, &Thresholds::default());
    assert!(g.passed(), "failures: {:?}", g.failures);
    assert_eq!(g.checked, base.runs.len());
}

/// Acceptance criterion: a synthetic 2x wall-time regression on every
/// run fails the gate with default thresholds.
#[test]
fn gate_fails_on_synthetic_two_x_wall_regression() {
    let base = load("BENCH_PR5.json");
    let mut cur = base.clone();
    for e in &mut cur.runs {
        e.report.wall_seconds *= 2.0;
    }
    let g = gate(&base, &cur, &Thresholds::default());
    assert!(!g.passed(), "2x wall regression must fail the gate");
    assert!(
        g.failures.iter().any(|f| f.contains("wall")),
        "failures: {:?}",
        g.failures
    );
}

/// The committed baseline carries telemetry for the traced entries, and
/// `lens show` renders their convergence tables.
#[test]
fn committed_baseline_has_telemetry_and_shows_convergence() {
    let base = load("BENCH_PR5.json");
    let traced: Vec<_> = base
        .runs
        .iter()
        .filter(|e| !e.telemetry.is_empty())
        .collect();
    assert_eq!(traced.len(), 3, "one traced entry per bench graph");
    for e in &traced {
        assert!(e.label.ends_with("delta+traced"), "{}", e.label);
        // Rows are ordered and end converged.
        let last = e.telemetry.last().unwrap();
        assert_eq!(last.moves, 0);
        assert_eq!(
            last.modularity.to_bits(),
            e.report.modularity.to_bits(),
            "{}: final telemetry row must agree with the report",
            e.label
        );
        for r in &e.telemetry {
            assert_eq!(r.ghost_bytes_per_rank.len(), e.report.ranks);
        }
    }
    let text = show(&base);
    assert!(text.contains("convergence:"));
    assert!(text.contains("rank imbalance"));
}
