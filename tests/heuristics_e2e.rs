//! End-to-end behaviour of the Section IV-B heuristics: ET reduces work,
//! ETC exits phases on the global inactive count, threshold cycling uses
//! the Fig 2 schedule and still accepts only at the minimum τ.

use distributed_louvain::dist::{run_distributed, DistConfig, Variant};
use distributed_louvain::prelude::*;

fn test_graph() -> Csr {
    // Mesh-like structure: the class where ET pays off the most
    // (Table I: 58x on Channel).
    grid3d(Grid3dParams::cube(4_000, 77)).graph
}

#[test]
fn et_reduces_processed_work() {
    let g = test_graph();
    let base = run_distributed(&g, 2, &DistConfig::baseline());
    let et = run_distributed(
        &g,
        2,
        &DistConfig::with_variant(Variant::Et { alpha: 0.75 }),
    );
    let work = |o: &distributed_louvain::dist::DistOutcome| -> u64 {
        o.per_rank_stats
            .iter()
            .flat_map(|r| r.iter())
            .map(|s| s.compute.vertices_processed)
            .sum()
    };
    assert!(
        work(&et) < work(&base),
        "ET processed {} vertices vs baseline {}",
        work(&et),
        work(&base)
    );
    // Paper: "negligible loss in quality" (we allow a modest margin at
    // this scale).
    assert!(et.modularity > base.modularity - 0.1);
}

#[test]
fn etc_records_inactive_counts_and_can_exit_early() {
    let g = test_graph();
    let out = run_distributed(
        &g,
        2,
        &DistConfig::with_variant(Variant::Etc { alpha: 0.75 }),
    );
    // Inactive counts must be recorded and grow within phases.
    let traces: Vec<_> = out.per_rank_stats[0]
        .iter()
        .flat_map(|p| p.iteration_traces.iter())
        .collect();
    assert!(
        traces.iter().any(|t| t.inactive > 0),
        "no inactive vertices recorded"
    );
}

#[test]
fn etc_exit_flag_set_when_threshold_reached() {
    // α = 1 deactivates immediately; with a high exit fraction satisfied,
    // some phase should flag the ETC exit.
    let g = test_graph();
    let cfg = DistConfig {
        etc_exit_fraction: 0.5,
        ..DistConfig::with_variant(Variant::Etc { alpha: 1.0 })
    };
    let out = run_distributed(&g, 2, &cfg);
    let any_etc_exit = out.per_rank_stats[0].iter().any(|p| p.etc_exit);
    assert!(
        any_etc_exit,
        "ETC exit never fired at fraction 0.5 with alpha 1.0"
    );
}

#[test]
fn threshold_cycling_uses_larger_taus_in_early_phases() {
    let g = weblike(WeblikeParams::web(6_000, 13)).graph;
    let out = run_distributed(&g, 2, &DistConfig::with_variant(Variant::ThresholdCycling));
    let taus: Vec<f64> = out.per_rank_stats[0].iter().map(|p| p.tau).collect();
    assert!(
        taus[0] > 1e-4,
        "first phase tau should be cycled up, got {}",
        taus[0]
    );
    // The accepted (final) phase must run at the minimum threshold —
    // "always forces Louvain iteration to run once more with the lowest
    // threshold".
    let last = *taus.last().unwrap();
    assert!(
        last <= 1e-6 * 1.001,
        "final phase tau {last} is not the minimum"
    );
}

#[test]
fn et_alpha_zero_equals_baseline_exactly() {
    // α = 0 never decays probabilities: ET(0) must follow the baseline
    // trajectory exactly (same seeds, same sweep order).
    let g = lfr(LfrParams::small(1_500, 14)).graph;
    let base = run_distributed(&g, 2, &DistConfig::baseline());
    let et0 = run_distributed(&g, 2, &DistConfig::with_variant(Variant::Et { alpha: 0.0 }));
    assert_eq!(base.assignment, et0.assignment);
    assert!((base.modularity - et0.modularity).abs() < 1e-12);
    assert_eq!(base.total_iterations, et0.total_iterations);
}

#[test]
fn et_plus_cycling_combination_works() {
    let g = test_graph();
    let combo = run_distributed(
        &g,
        2,
        &DistConfig::with_variant(Variant::EtPlusCycling { alpha: 0.25 }),
    );
    assert!(combo.modularity > 0.4, "q = {}", combo.modularity);
    // Cycling engaged: some phase uses a raised τ.
    assert!(combo.per_rank_stats[0].iter().any(|p| p.tau > 1e-5));
}

#[test]
fn variants_report_etc_exit_only_for_etc() {
    let g = test_graph();
    for variant in [Variant::Baseline, Variant::Et { alpha: 0.75 }] {
        let out = run_distributed(&g, 2, &DistConfig::with_variant(variant));
        assert!(
            out.per_rank_stats[0].iter().all(|p| !p.etc_exit),
            "{} should never set etc_exit",
            variant.label()
        );
    }
}
