//! End-to-end guarantees of the `louvaind` serving layer: concurrent
//! jobs on a bounded pool, the fingerprint-keyed result cache,
//! kill-and-resume with bit-identical results, the poisoned-job
//! quarantine ladder, deterministic cancellation, and admission-control
//! backpressure.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use distributed_louvain::serve::{JobSpec, JobStatus, ServeConfig, Server, SubmitError};
use louvain_dist::{run_distributed, DistConfig, Variant};
use louvain_graph::gen::{lfr, LfrParams};
use louvain_graph::{binio, Csr};
use proptest::prelude::*;

fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("louvain-serve-it-{}", std::process::id()))
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic test graph, written as a binary edge list.
fn graph_file(dir: &Path, n: u64, seed: u64) -> (PathBuf, Csr) {
    let g = lfr(LfrParams::small(n, seed)).graph;
    let path = dir.join(format!("lfr_{n}_{seed}.bin"));
    binio::write_edge_list(&path, &g.to_edge_list()).unwrap();
    (path, g)
}

fn spec(job_id: &str, graph: &Path, ranks: usize, cfg: DistConfig) -> JobSpec {
    JobSpec {
        job_id: job_id.to_string(),
        graph: graph.to_path_buf(),
        ranks,
        cfg,
        fault_plan: None,
        max_crash_recoveries: None,
        max_hang_recoveries: None,
    }
}

fn server(dir: &Path, workers: usize) -> Server {
    Server::start(ServeConfig {
        workers,
        checkpoint_root: dir.join("ckpt"),
        ..ServeConfig::default()
    })
}

fn done(status: &JobStatus) -> &JobStatus {
    assert!(
        matches!(status, JobStatus::Done { .. }),
        "expected Done, got {status:?}"
    );
    status
}

#[test]
fn concurrent_jobs_on_two_workers_match_direct_runs() {
    let dir = work_dir("concurrent");
    let (path_a, g_a) = graph_file(&dir, 400, 3);
    let (path_b, g_b) = graph_file(&dir, 500, 4);
    let srv = server(&dir, 2);

    // Distinct graphs and configs, all in flight together on the
    // 2-worker pool.
    let jobs = [
        ("a", &path_a, 2, DistConfig::baseline()),
        (
            "b",
            &path_b,
            2,
            DistConfig::with_variant(Variant::Et { alpha: 0.25 }),
        ),
        ("c", &path_a, 4, DistConfig::baseline()),
        ("d", &path_b, 1, DistConfig::baseline()),
    ];
    let seqs: Vec<u64> = jobs
        .iter()
        .map(|(id, path, ranks, cfg)| srv.submit(spec(id, path, *ranks, cfg.clone())).unwrap())
        .collect();
    for ((id, path, ranks, cfg), seq) in jobs.iter().zip(&seqs) {
        let status = srv
            .wait_timeout(*seq, Duration::from_secs(120))
            .unwrap_or_else(|| panic!("job {id} timed out"));
        let JobStatus::Done { result, .. } = done(&status) else {
            unreachable!()
        };
        let reference = run_distributed(if *path == &path_a { &g_a } else { &g_b }, *ranks, cfg);
        assert_eq!(
            result.assignment, reference.assignment,
            "job {id}: served assignment differs from a direct run"
        );
        assert_eq!(result.modularity.to_bits(), reference.modularity.to_bits());
        assert_eq!(
            *result.levels.last().unwrap(),
            result.assignment,
            "job {id}: last dendrogram level must equal the final assignment"
        );
    }
    srv.drain();
}

#[test]
fn identical_resubmission_is_a_cache_hit() {
    let dir = work_dir("cache");
    let (path, _) = graph_file(&dir, 300, 9);
    let srv = server(&dir, 1);

    let s1 = srv
        .submit(spec("first", &path, 2, DistConfig::baseline()))
        .unwrap();
    let first = srv.wait(s1).unwrap();
    let JobStatus::Done {
        cached: false,
        result: r1,
        ..
    } = done(&first)
    else {
        unreachable!()
    };

    // Different job id, same (graph, config, ranks) key.
    let s2 = srv
        .submit(spec("second", &path, 2, DistConfig::baseline()))
        .unwrap();
    let second = srv.wait(s2).unwrap();
    let JobStatus::Done {
        cached: true,
        result: r2,
        ..
    } = done(&second)
    else {
        panic!("resubmission must be served from the cache: {second:?}");
    };
    assert!(Arc::ptr_eq(r1, r2), "cache hit returns the same result");

    let snap = srv.metrics_snapshot();
    assert_eq!(snap.counters.get("serve.cache_hits"), Some(&1));
    assert_eq!(snap.counters.get("serve.cache_misses"), Some(&1));
    assert_eq!(snap.counters.get("serve.jobs_completed"), Some(&2));

    // A different ranks count is a different key: miss, not hit.
    let s3 = srv
        .submit(spec("third", &path, 4, DistConfig::baseline()))
        .unwrap();
    done(&srv.wait(s3).unwrap());
    let snap = srv.metrics_snapshot();
    assert_eq!(snap.counters.get("serve.cache_hits"), Some(&1));
    assert_eq!(snap.counters.get("serve.cache_misses"), Some(&2));
    srv.drain();
}

#[test]
fn killed_job_resumes_from_checkpoint_bit_identically() {
    let dir = work_dir("resume");
    let (path, g) = graph_file(&dir, 500, 11);
    let cfg = DistConfig::baseline();
    let reference = run_distributed(&g, 2, &cfg);
    let srv = server(&dir, 1);

    // Attempt 1: injected crash past its budget (0) kills the job after
    // phase 1's checkpoint committed.
    let killed = JobSpec {
        fault_plan: Some("crash:rank=0,phase=1,op=0".into()),
        max_crash_recoveries: Some(0),
        ..spec("job", &path, 2, cfg.clone())
    };
    let s1 = srv.submit(killed).unwrap();
    let failed = srv.wait(s1).unwrap();
    let JobStatus::Failed { error, attempts } = &failed else {
        panic!("budget-0 crash must fail the job: {failed:?}");
    };
    assert!(error.contains("crash recovery budget"), "{error}");
    assert_eq!(*attempts, 1);

    // Attempt 2: same key, no fault. Must resume off the dead
    // attempt's newest manifest, not start from scratch, and match the
    // uninterrupted run bit for bit.
    let s2 = srv.submit(spec("job", &path, 2, cfg)).unwrap();
    let second = srv.wait(s2).unwrap();
    let JobStatus::Done {
        cached: false,
        resumed_from_phase,
        result,
        ..
    } = done(&second)
    else {
        unreachable!()
    };
    assert!(
        resumed_from_phase.is_some(),
        "resubmission must resume from the killed attempt's checkpoint"
    );
    assert_eq!(result.assignment, reference.assignment);
    assert_eq!(result.modularity.to_bits(), reference.modularity.to_bits());
    assert_eq!(result.phases, reference.phases);

    let snap = srv.metrics_snapshot();
    assert_eq!(snap.counters.get("serve.jobs_resumed"), Some(&1));
    srv.drain();
}

#[test]
fn poisoned_job_is_quarantined_and_daemon_survives() {
    let dir = work_dir("quarantine");
    let (path, _) = graph_file(&dir, 300, 13);
    let srv = Server::start(ServeConfig {
        workers: 1,
        quarantine_after: 2,
        checkpoint_root: dir.join("ckpt"),
        ..ServeConfig::default()
    });

    // A phase-0 crash with budget 0 fails before any checkpoint exists,
    // so every retry fails the same way.
    let poisoned = || JobSpec {
        fault_plan: Some("crash:rank=0,phase=0,op=0".into()),
        max_crash_recoveries: Some(0),
        ..spec("poison", &path, 2, DistConfig::baseline())
    };
    let s1 = srv.submit(poisoned()).unwrap();
    assert!(matches!(
        srv.wait(s1).unwrap(),
        JobStatus::Failed { attempts: 1, .. }
    ));
    let s2 = srv.submit(poisoned()).unwrap();
    assert!(
        matches!(
            srv.wait(s2).unwrap(),
            JobStatus::Quarantined { attempts: 2, .. }
        ),
        "the ladder trips at quarantine_after"
    );
    // Third submission short-circuits without running.
    let s3 = srv.submit(poisoned()).unwrap();
    assert!(matches!(
        srv.wait(s3).unwrap(),
        JobStatus::Quarantined { .. }
    ));
    let snap = srv.metrics_snapshot();
    assert_eq!(snap.counters.get("serve.jobs_quarantined"), Some(&2));

    // The daemon is alive and well: an unrelated clean job (different
    // key — the quarantine is per job key, and the fault plan is not
    // part of the key) still runs.
    let s4 = srv
        .submit(spec("clean", &path, 4, DistConfig::baseline()))
        .unwrap();
    done(&srv.wait(s4).unwrap());
    srv.drain();
}

#[test]
fn queued_job_cancels_deterministically_and_resubmits_clean() {
    let dir = work_dir("cancel");
    let (path, _) = graph_file(&dir, 300, 17);
    // workers = 0: submissions stay queued, so cancellation is
    // deterministic (the job can never have started).
    let srv = server(&dir, 0);
    let s1 = srv
        .submit(spec("victim", &path, 2, DistConfig::baseline()))
        .unwrap();
    assert!(matches!(srv.status(s1), Some(JobStatus::Queued)));
    assert!(srv.cancel_job(s1));
    assert!(matches!(
        srv.status(s1),
        Some(JobStatus::Cancelled { at_phase: None })
    ));
    assert!(!srv.cancel_job(s1), "already terminal");
    let snap = srv.metrics_snapshot();
    assert_eq!(snap.counters.get("serve.jobs_cancelled"), Some(&1));
    srv.drain();

    // A fresh server with workers runs the same spec to completion.
    let srv = server(&dir, 1);
    let s2 = srv
        .submit(spec("victim", &path, 2, DistConfig::baseline()))
        .unwrap();
    done(&srv.wait(s2).unwrap());
    srv.drain();
}

#[test]
fn drain_sheds_queued_jobs_and_refuses_new_work() {
    let dir = work_dir("drain");
    let (path, _) = graph_file(&dir, 300, 19);
    let srv = server(&dir, 0);
    let seqs: Vec<u64> = (0..3)
        .map(|i| {
            srv.submit(spec(&format!("q{i}"), &path, 2, DistConfig::baseline()))
                .unwrap()
        })
        .collect();
    srv.drain();
    for seq in seqs {
        assert!(matches!(
            srv.status(seq),
            Some(JobStatus::Cancelled { at_phase: None })
        ));
    }
    assert_eq!(
        srv.submit(spec("late", &path, 2, DistConfig::baseline())),
        Err(SubmitError::ShuttingDown)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Admission control backpressure: with a pool that never drains
    /// (workers = 0), exactly the first `queue_depth` submissions are
    /// accepted in order, every later one is shed with `QueueFull`
    /// without blocking, and the server still drains cleanly.
    #[test]
    fn backpressure_sheds_exactly_past_queue_depth(
        queue_depth in 1usize..6,
        extra in 0usize..5,
    ) {
        let dir = work_dir(&format!("backpressure-{queue_depth}-{extra}"));
        let (path, _) = graph_file(&dir, 300, 23);
        let srv = Server::start(ServeConfig {
            workers: 0,
            queue_depth,
            checkpoint_root: dir.join("ckpt"),
            ..ServeConfig::default()
        });
        let start = std::time::Instant::now();
        let mut accepted = Vec::new();
        for i in 0..queue_depth + extra {
            match srv.submit(spec(&format!("j{i}"), &path, 2, DistConfig::baseline())) {
                Ok(seq) => accepted.push((i, seq)),
                Err(e) => {
                    prop_assert_eq!(e, SubmitError::QueueFull);
                    prop_assert!(i >= queue_depth, "premature shed at {}", i);
                }
            }
        }
        // Deterministic accepted set and order: the first queue_depth
        // submissions, with monotonically increasing seqs.
        prop_assert_eq!(accepted.len(), queue_depth);
        for (k, (i, _)) in accepted.iter().enumerate() {
            prop_assert_eq!(*i, k);
        }
        for w in accepted.windows(2) {
            prop_assert!(w[0].1 < w[1].1);
        }
        // The listener never blocked: rejections are immediate.
        prop_assert!(
            start.elapsed() < Duration::from_secs(10),
            "admission control must not block"
        );
        let snap = srv.metrics_snapshot();
        prop_assert_eq!(
            snap.counters.get("serve.jobs_rejected").copied().unwrap_or(0),
            extra as u64
        );
        srv.drain();
    }
}
