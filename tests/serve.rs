//! End-to-end guarantees of the `louvaind` serving layer: concurrent
//! jobs on a bounded pool, the fingerprint-keyed result cache,
//! kill-and-resume with bit-identical results, the poisoned-job
//! quarantine ladder, deterministic cancellation, and admission-control
//! backpressure.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use distributed_louvain::serve::{JobSpec, JobStatus, ServeConfig, Server, SubmitError};
use louvain_dist::{run_distributed, DistConfig, Variant};
use louvain_graph::gen::{lfr, LfrParams};
use louvain_graph::{binio, Csr};
use proptest::prelude::*;

fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("louvain-serve-it-{}", std::process::id()))
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic test graph, written as a binary edge list.
fn graph_file(dir: &Path, n: u64, seed: u64) -> (PathBuf, Csr) {
    let g = lfr(LfrParams::small(n, seed)).graph;
    let path = dir.join(format!("lfr_{n}_{seed}.bin"));
    binio::write_edge_list(&path, &g.to_edge_list()).unwrap();
    (path, g)
}

fn spec(job_id: &str, graph: &Path, ranks: usize, cfg: DistConfig) -> JobSpec {
    JobSpec {
        job_id: job_id.to_string(),
        graph: graph.to_path_buf(),
        ranks,
        cfg,
        fault_plan: None,
        max_crash_recoveries: None,
        max_hang_recoveries: None,
    }
}

fn server(dir: &Path, workers: usize) -> Server {
    Server::start(ServeConfig {
        workers,
        checkpoint_root: dir.join("ckpt"),
        ..ServeConfig::default()
    })
}

fn done(status: &JobStatus) -> &JobStatus {
    assert!(
        matches!(status, JobStatus::Done { .. }),
        "expected Done, got {status:?}"
    );
    status
}

#[test]
fn concurrent_jobs_on_two_workers_match_direct_runs() {
    let dir = work_dir("concurrent");
    let (path_a, g_a) = graph_file(&dir, 400, 3);
    let (path_b, g_b) = graph_file(&dir, 500, 4);
    let srv = server(&dir, 2);

    // Distinct graphs and configs, all in flight together on the
    // 2-worker pool.
    let jobs = [
        ("a", &path_a, 2, DistConfig::baseline()),
        (
            "b",
            &path_b,
            2,
            DistConfig::with_variant(Variant::Et { alpha: 0.25 }),
        ),
        ("c", &path_a, 4, DistConfig::baseline()),
        ("d", &path_b, 1, DistConfig::baseline()),
    ];
    let seqs: Vec<u64> = jobs
        .iter()
        .map(|(id, path, ranks, cfg)| srv.submit(spec(id, path, *ranks, cfg.clone())).unwrap())
        .collect();
    for ((id, path, ranks, cfg), seq) in jobs.iter().zip(&seqs) {
        let status = srv
            .wait_timeout(*seq, Duration::from_secs(120))
            .unwrap_or_else(|| panic!("job {id} timed out"));
        let JobStatus::Done { result, .. } = done(&status) else {
            unreachable!()
        };
        let reference = run_distributed(if *path == &path_a { &g_a } else { &g_b }, *ranks, cfg);
        assert_eq!(
            result.assignment, reference.assignment,
            "job {id}: served assignment differs from a direct run"
        );
        assert_eq!(result.modularity.to_bits(), reference.modularity.to_bits());
        assert_eq!(
            *result.levels.last().unwrap(),
            result.assignment,
            "job {id}: last dendrogram level must equal the final assignment"
        );
    }
    srv.drain();
}

#[test]
fn identical_resubmission_is_a_cache_hit() {
    let dir = work_dir("cache");
    let (path, _) = graph_file(&dir, 300, 9);
    let srv = server(&dir, 1);

    let s1 = srv
        .submit(spec("first", &path, 2, DistConfig::baseline()))
        .unwrap();
    let first = srv.wait(s1).unwrap();
    let JobStatus::Done {
        cached: false,
        result: r1,
        ..
    } = done(&first)
    else {
        unreachable!()
    };

    // Different job id, same (graph, config, ranks) key.
    let s2 = srv
        .submit(spec("second", &path, 2, DistConfig::baseline()))
        .unwrap();
    let second = srv.wait(s2).unwrap();
    let JobStatus::Done {
        cached: true,
        result: r2,
        ..
    } = done(&second)
    else {
        panic!("resubmission must be served from the cache: {second:?}");
    };
    assert!(Arc::ptr_eq(r1, r2), "cache hit returns the same result");

    let snap = srv.metrics_snapshot();
    assert_eq!(snap.counters.get("serve.cache_hits"), Some(&1));
    assert_eq!(snap.counters.get("serve.cache_misses"), Some(&1));
    assert_eq!(snap.counters.get("serve.jobs_completed"), Some(&2));

    // A different ranks count is a different key: miss, not hit.
    let s3 = srv
        .submit(spec("third", &path, 4, DistConfig::baseline()))
        .unwrap();
    done(&srv.wait(s3).unwrap());
    let snap = srv.metrics_snapshot();
    assert_eq!(snap.counters.get("serve.cache_hits"), Some(&1));
    assert_eq!(snap.counters.get("serve.cache_misses"), Some(&2));
    srv.drain();
}

#[test]
fn killed_job_resumes_from_checkpoint_bit_identically() {
    let dir = work_dir("resume");
    let (path, g) = graph_file(&dir, 500, 11);
    let cfg = DistConfig::baseline();
    let reference = run_distributed(&g, 2, &cfg);
    let srv = server(&dir, 1);

    // Attempt 1: injected crash past its budget (0) kills the job after
    // phase 1's checkpoint committed.
    let killed = JobSpec {
        fault_plan: Some("crash:rank=0,phase=1,op=0".into()),
        max_crash_recoveries: Some(0),
        ..spec("job", &path, 2, cfg.clone())
    };
    let s1 = srv.submit(killed).unwrap();
    let failed = srv.wait(s1).unwrap();
    let JobStatus::Failed { error, attempts } = &failed else {
        panic!("budget-0 crash must fail the job: {failed:?}");
    };
    assert!(error.contains("crash recovery budget"), "{error}");
    assert_eq!(*attempts, 1);

    // Attempt 2: same key, no fault. Must resume off the dead
    // attempt's newest manifest, not start from scratch, and match the
    // uninterrupted run bit for bit.
    let s2 = srv.submit(spec("job", &path, 2, cfg)).unwrap();
    let second = srv.wait(s2).unwrap();
    let JobStatus::Done {
        cached: false,
        resumed_from_phase,
        result,
        ..
    } = done(&second)
    else {
        unreachable!()
    };
    assert!(
        resumed_from_phase.is_some(),
        "resubmission must resume from the killed attempt's checkpoint"
    );
    assert_eq!(result.assignment, reference.assignment);
    assert_eq!(result.modularity.to_bits(), reference.modularity.to_bits());
    assert_eq!(result.phases, reference.phases);

    let snap = srv.metrics_snapshot();
    assert_eq!(snap.counters.get("serve.jobs_resumed"), Some(&1));
    srv.drain();
}

#[test]
fn poisoned_job_is_quarantined_and_daemon_survives() {
    let dir = work_dir("quarantine");
    let (path, _) = graph_file(&dir, 300, 13);
    let srv = Server::start(ServeConfig {
        workers: 1,
        quarantine_after: 2,
        checkpoint_root: dir.join("ckpt"),
        ..ServeConfig::default()
    });

    // A phase-0 crash with budget 0 fails before any checkpoint exists,
    // so every retry fails the same way.
    let poisoned = || JobSpec {
        fault_plan: Some("crash:rank=0,phase=0,op=0".into()),
        max_crash_recoveries: Some(0),
        ..spec("poison", &path, 2, DistConfig::baseline())
    };
    let s1 = srv.submit(poisoned()).unwrap();
    assert!(matches!(
        srv.wait(s1).unwrap(),
        JobStatus::Failed { attempts: 1, .. }
    ));
    let s2 = srv.submit(poisoned()).unwrap();
    assert!(
        matches!(
            srv.wait(s2).unwrap(),
            JobStatus::Quarantined { attempts: 2, .. }
        ),
        "the ladder trips at quarantine_after"
    );
    // Third submission short-circuits without running.
    let s3 = srv.submit(poisoned()).unwrap();
    assert!(matches!(
        srv.wait(s3).unwrap(),
        JobStatus::Quarantined { .. }
    ));
    let snap = srv.metrics_snapshot();
    assert_eq!(snap.counters.get("serve.jobs_quarantined"), Some(&2));

    // The daemon is alive and well: an unrelated clean job (different
    // key — the quarantine is per job key, and the fault plan is not
    // part of the key) still runs.
    let s4 = srv
        .submit(spec("clean", &path, 4, DistConfig::baseline()))
        .unwrap();
    done(&srv.wait(s4).unwrap());
    srv.drain();
}

#[test]
fn queued_job_cancels_deterministically_and_resubmits_clean() {
    let dir = work_dir("cancel");
    let (path, _) = graph_file(&dir, 300, 17);
    // workers = 0: submissions stay queued, so cancellation is
    // deterministic (the job can never have started).
    let srv = server(&dir, 0);
    let s1 = srv
        .submit(spec("victim", &path, 2, DistConfig::baseline()))
        .unwrap();
    assert!(matches!(srv.status(s1), Some(JobStatus::Queued)));
    assert!(srv.cancel_job(s1));
    assert!(matches!(
        srv.status(s1),
        Some(JobStatus::Cancelled { at_phase: None })
    ));
    assert!(!srv.cancel_job(s1), "already terminal");
    let snap = srv.metrics_snapshot();
    assert_eq!(snap.counters.get("serve.jobs_cancelled"), Some(&1));
    srv.drain();

    // A fresh server with workers runs the same spec to completion.
    let srv = server(&dir, 1);
    let s2 = srv
        .submit(spec("victim", &path, 2, DistConfig::baseline()))
        .unwrap();
    done(&srv.wait(s2).unwrap());
    srv.drain();
}

#[test]
fn drain_sheds_queued_jobs_and_refuses_new_work() {
    let dir = work_dir("drain");
    let (path, _) = graph_file(&dir, 300, 19);
    let srv = server(&dir, 0);
    let seqs: Vec<u64> = (0..3)
        .map(|i| {
            srv.submit(spec(&format!("q{i}"), &path, 2, DistConfig::baseline()))
                .unwrap()
        })
        .collect();
    srv.drain();
    for seq in seqs {
        assert!(matches!(
            srv.status(seq),
            Some(JobStatus::Cancelled { at_phase: None })
        ));
    }
    assert_eq!(
        srv.submit(spec("late", &path, 2, DistConfig::baseline())),
        Err(SubmitError::ShuttingDown)
    );
}

/// Regression for the drain-while-shedding race: submitters hammering a
/// full queue while another thread drains must leave the
/// `serve.queue_depth` gauge consistent — never negative at any point
/// (`min >= 0`) and exactly zero once the drain finished. The gauge has
/// a single writer (`sync_queue_depth`, always under the state lock,
/// always recomputing from the queue's actual length), which is the
/// invariant this test pins.
#[test]
fn queue_depth_gauge_survives_drain_while_shedding() {
    let dir = work_dir("drain-shed-race");
    let (path, _) = graph_file(&dir, 300, 29);
    let srv = Server::start(ServeConfig {
        workers: 0,
        queue_depth: 4,
        checkpoint_root: dir.join("ckpt"),
        ..ServeConfig::default()
    });
    // Fill the queue, then race shedding submitters and cancels against
    // the drain.
    let seqs: Vec<u64> = (0..4)
        .map(|i| {
            srv.submit(spec(&format!("q{i}"), &path, 2, DistConfig::baseline()))
                .unwrap()
        })
        .collect();
    let submitters: Vec<_> = (0..3)
        .map(|t| {
            let srv = srv.clone();
            let path = path.clone();
            std::thread::spawn(move || {
                for i in 0..20 {
                    let _ = srv.submit(spec(
                        &format!("shed-{t}-{i}"),
                        &path,
                        2,
                        DistConfig::baseline(),
                    ));
                }
            })
        })
        .collect();
    let canceller = {
        let srv = srv.clone();
        std::thread::spawn(move || {
            for seq in seqs {
                let _ = srv.cancel_job(seq);
            }
        })
    };
    srv.drain();
    for h in submitters {
        h.join().unwrap();
    }
    canceller.join().unwrap();

    let gauge = srv.metrics_snapshot().gauges["serve.queue_depth"];
    assert!(gauge.min >= 0.0, "queue depth went negative: {gauge:?}");
    assert_eq!(gauge.last, 0.0, "drained server has an empty queue");
    assert!(
        gauge.max <= 4.0,
        "gauge exceeded the queue bound: {gauge:?}"
    );
}

/// Satellite for the metric-name registry: every name a *live* daemon
/// snapshot carries — taken both mid-job and after a full bench-style
/// job mix — must render through the Prometheus exposition path, which
/// hard-errors on any name missing from `METRIC_REGISTRY`. A metric
/// added to the serving layer without registering it fails here, not in
/// production scrapes.
#[test]
fn live_daemon_snapshot_is_registry_clean() {
    let dir = work_dir("registry-clean");
    let (path, _) = graph_file(&dir, 400, 31);
    let srv = server(&dir, 2);

    let s1 = srv
        .submit(spec("r1", &path, 2, DistConfig::baseline()))
        .unwrap();
    // Mid-job scrape: must render cleanly while work is in flight.
    let mid = louvain_obs::prometheus_text(&srv.metrics_snapshot())
        .expect("mid-job snapshot renders without unregistered names");
    assert!(mid.contains("serve_queue_depth"), "{mid}");
    done(&srv.wait(s1).unwrap());

    // A cache hit and a second config broaden the exercised counters.
    let s2 = srv
        .submit(spec("r2", &path, 2, DistConfig::baseline()))
        .unwrap();
    let s3 = srv
        .submit(spec(
            "r3",
            &path,
            1,
            DistConfig::with_variant(Variant::Et { alpha: 0.25 }),
        ))
        .unwrap();
    done(&srv.wait(s2).unwrap());
    done(&srv.wait(s3).unwrap());

    let text = louvain_obs::prometheus_text(&srv.metrics_snapshot())
        .expect("full live snapshot renders without unregistered names");
    for series in [
        "serve_jobs_accepted_total",
        "serve_jobs_completed_total",
        "serve_jobs_running",
        "serve_cache_hits_total",
        "serve_job_latency_ms_bucket",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }
    // Round-trip: the renderer's output parses back.
    let parsed = louvain_obs::parse_prometheus_text(&text).unwrap();
    assert_eq!(parsed.get("serve_jobs_completed_total"), Some(&3.0));
    srv.drain();
}

/// The `watch` acceptance bit: the progress rows a watcher receives are
/// bit-for-bit the telemetry the finished job's artifact carries — same
/// rows, same order, identical float bits — because both come from the
/// same merged per-iteration records.
#[test]
fn watch_stream_matches_artifact_telemetry_bit_for_bit() {
    let dir = work_dir("watch-parity");
    let (path, _) = graph_file(&dir, 400, 37);
    let srv = server(&dir, 1);
    let seq = srv
        .submit(spec("w", &path, 2, DistConfig::baseline()))
        .unwrap();
    // Subscribe immediately: replay covers anything already emitted,
    // the channel covers the rest.
    let (replay, rx) = srv.watch(seq).expect("job exists");
    let status = done(&srv.wait(seq).unwrap()).clone();
    let mut streamed = replay;
    while let Ok(row) = rx.try_recv() {
        streamed.push(row);
    }
    streamed.sort_by_key(|r| (r.phase, r.iteration));

    let JobStatus::Done { result, .. } = status else {
        unreachable!()
    };
    let telemetry: Vec<_> = result
        .artifact
        .runs
        .iter()
        .flat_map(|run| run.telemetry.iter().cloned())
        .collect();
    assert!(!telemetry.is_empty(), "served artifact carries telemetry");
    assert_eq!(streamed.len(), telemetry.len());
    for (s, t) in streamed.iter().zip(&telemetry) {
        assert_eq!((s.phase, s.iteration), (t.phase, t.iteration));
        assert_eq!(s.modularity.to_bits(), t.modularity.to_bits());
        assert_eq!(s.delta_q.to_bits(), t.delta_q.to_bits());
        assert_eq!(s.moves, t.moves);
        assert_eq!(s.active, t.active);
        assert_eq!(s.vertices, t.vertices);
        assert_eq!(s.communities, t.communities);
    }
    srv.drain();
}

/// Flight-recorder consistency: a `dump` while the event log is enabled
/// produces a parseable document whose `last_seq` equals the sequence
/// number of the event-log tail — the exact invariant a post-crash
/// investigation leans on.
#[test]
fn flight_dump_last_seq_matches_event_log_tail() {
    let dir = work_dir("flight-parity");
    let (path, _) = graph_file(&dir, 300, 41);
    let log_path = dir.join("events.jsonl");
    let srv = Server::start(ServeConfig {
        workers: 1,
        checkpoint_root: dir.join("ckpt"),
        event_log: Some(log_path.clone()),
        ..ServeConfig::default()
    });
    let seq = srv
        .submit(spec("f", &path, 2, DistConfig::baseline()))
        .unwrap();
    done(&srv.wait(seq).unwrap());

    let dump_path = srv.dump_flight("test").unwrap();
    let (reason, last_seq, events) =
        louvain_obs::parse_flight_dump(&std::fs::read_to_string(&dump_path).unwrap()).unwrap();
    assert_eq!(reason, "test");
    assert_eq!(events.last().unwrap().seq, last_seq);
    assert!(
        events
            .iter()
            .any(|e| e.kind == louvain_obs::OpKind::JobDone),
        "ring holds the job lifecycle"
    );

    let log_tail_seq = std::fs::read_to_string(&log_path)
        .unwrap()
        .lines()
        .rfind(|l| !l.trim().is_empty())
        .map(|l| {
            louvain_obs::OpEvent::from_json(&louvain_obs::Json::parse(l).unwrap())
                .unwrap()
                .seq
        })
        .unwrap();
    assert_eq!(
        last_seq, log_tail_seq,
        "flight dump and event log disagree about the newest event"
    );
    srv.drain();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Admission control backpressure: with a pool that never drains
    /// (workers = 0), exactly the first `queue_depth` submissions are
    /// accepted in order, every later one is shed with `QueueFull`
    /// without blocking, and the server still drains cleanly.
    #[test]
    fn backpressure_sheds_exactly_past_queue_depth(
        queue_depth in 1usize..6,
        extra in 0usize..5,
    ) {
        let dir = work_dir(&format!("backpressure-{queue_depth}-{extra}"));
        let (path, _) = graph_file(&dir, 300, 23);
        let srv = Server::start(ServeConfig {
            workers: 0,
            queue_depth,
            checkpoint_root: dir.join("ckpt"),
            ..ServeConfig::default()
        });
        let start = std::time::Instant::now();
        let mut accepted = Vec::new();
        for i in 0..queue_depth + extra {
            match srv.submit(spec(&format!("j{i}"), &path, 2, DistConfig::baseline())) {
                Ok(seq) => accepted.push((i, seq)),
                Err(e) => {
                    prop_assert_eq!(e, SubmitError::QueueFull);
                    prop_assert!(i >= queue_depth, "premature shed at {}", i);
                }
            }
        }
        // Deterministic accepted set and order: the first queue_depth
        // submissions, with monotonically increasing seqs.
        prop_assert_eq!(accepted.len(), queue_depth);
        for (k, (i, _)) in accepted.iter().enumerate() {
            prop_assert_eq!(*i, k);
        }
        for w in accepted.windows(2) {
            prop_assert!(w[0].1 < w[1].1);
        }
        // The listener never blocked: rejections are immediate.
        prop_assert!(
            start.elapsed() < Duration::from_secs(10),
            "admission control must not block"
        );
        let snap = srv.metrics_snapshot();
        prop_assert_eq!(
            snap.counters.get("serve.jobs_rejected").copied().unwrap_or(0),
            extra as u64
        );
        srv.drain();
    }
}
