//! End-to-end tests for the rank-aware tracing subsystem: cross-rank
//! counter conservation, RunReport/comm-stats agreement, and
//! Chrome-trace validity.
//!
//! Tracing is controlled by a process-global flag, and the cargo test
//! harness runs tests of one binary concurrently — so every assertion
//! that needs the flag ON lives in the single test function
//! [`tracing_enabled_end_to_end`]. The other tests run with tracing in
//! its default (off) state and only touch always-on machinery.

use std::sync::Mutex;

use distributed_louvain::dist::{build_run_report, run_distributed, DistConfig, ReportMeta};
use distributed_louvain::graph::gen::{lfr, LfrParams};
use distributed_louvain::obs;

/// Serializes the tests that read or write the global tracing flag.
static TRACE_FLAG: Mutex<()> = Mutex::new(());

/// RunReport per-step byte totals must match the `louvain_comm::stats`
/// snapshots exactly, for every rank count (acceptance criterion).
#[test]
fn report_step_bytes_match_comm_snapshots_across_rank_counts() {
    let g = lfr(LfrParams::small(1_200, 17)).graph;
    for p in [1usize, 2, 8] {
        let out = run_distributed(&g, p, &DistConfig::baseline());
        let meta = ReportMeta::new("lfr-1200", 1_200, g.num_edges() as u64);
        let report = build_run_report(&out, &meta);

        assert_eq!(report.ranks, p);
        assert_eq!(report.per_rank.len(), p);

        // Per-step totals are copied verbatim from the merged snapshot.
        for (i, st) in report.step_totals.iter().enumerate() {
            assert_eq!(
                st.bytes, out.traffic.step_bytes[i],
                "p={p} step={}",
                st.step
            );
            assert_eq!(
                st.messages, out.traffic.step_messages[i],
                "p={p} step={}",
                st.step
            );
        }

        // Conservation: the per-step decomposition covers all traffic,
        // and the merged snapshot equals the sum of the per-rank ones.
        let step_sum: u64 = report.step_totals.iter().map(|s| s.bytes).sum();
        assert_eq!(
            step_sum,
            out.traffic.p2p_bytes + out.traffic.collective_bytes,
            "p={p}"
        );
        assert_eq!(step_sum, report.total_bytes, "p={p}");
        let mut per_rank_step_sum = vec![0u64; report.step_totals.len()];
        for r in &report.per_rank {
            for (i, b) in r.step_bytes.iter().enumerate() {
                per_rank_step_sum[i] += b;
            }
        }
        for (i, st) in report.step_totals.iter().enumerate() {
            assert_eq!(per_rank_step_sum[i], st.bytes, "p={p} step={}", st.step);
        }
    }
}

/// Identical work on identical input: the byte counters (unlike wall
/// times) are fully deterministic, so two runs must agree.
#[test]
fn step_byte_totals_are_deterministic() {
    let g = lfr(LfrParams::small(900, 23)).graph;
    let a = run_distributed(&g, 4, &DistConfig::baseline());
    let b = run_distributed(&g, 4, &DistConfig::baseline());
    assert_eq!(a.traffic.step_bytes, b.traffic.step_bytes);
    assert_eq!(a.traffic.step_messages, b.traffic.step_messages);
    assert_eq!(a.traffic.p2p_bytes, b.traffic.p2p_bytes);
    assert_eq!(a.traffic.collective_bytes, b.traffic.collective_bytes);
}

/// Everything that needs the global tracing flag ON, in one test.
#[test]
fn tracing_enabled_end_to_end() {
    let _guard = TRACE_FLAG.lock().unwrap();
    let g = lfr(LfrParams::small(1_000, 11)).graph;
    obs::set_enabled(true);
    let out = run_distributed(&g, 3, &DistConfig::baseline());
    obs::set_enabled(false);

    // --- Trace harvested, one rank track each, events present.
    let trace = out.trace.as_ref().expect("tracing was enabled");
    assert_eq!(trace.ranks.len(), 3);
    for r in &trace.ranks {
        assert!(!r.events.is_empty(), "rank {} recorded no events", r.rank);
    }
    assert!(trace.total_dropped() == 0, "ring overflowed in a small run");

    // Expected span names from the instrumented phase loop.
    let rollup = trace.span_rollup();
    for expected in ["phase", "iteration", "sweep", "ghost_refresh", "reduction"] {
        assert!(
            rollup.iter().any(|s| s.name == expected),
            "span {expected:?} missing from rollup {:?}",
            rollup.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
        );
    }
    // Spans carry both clocks: comm spans accumulate modeled seconds.
    let ghost = rollup.iter().find(|s| s.name == "ghost_refresh").unwrap();
    assert!(ghost.wall_seconds >= 0.0);
    assert!(
        ghost.modeled_seconds > 0.0,
        "comm spans must advance the modeled clock"
    );

    // --- Metrics aggregated across ranks.
    let metrics = trace.merged_metrics();
    assert!(metrics.counter("sweep.moves") > 0);
    assert!(metrics.counter("sweep.edges") > 0);

    // --- Chrome trace: valid JSON, pid per rank, globally monotonic ts.
    let text = obs::chrome_trace_json(trace);
    let doc = obs::Json::parse(&text).expect("exporter must emit valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());
    let mut pids = std::collections::BTreeSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    let mut metadata = 0usize;
    for ev in events {
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        if ph == "M" {
            metadata += 1;
            continue;
        }
        pids.insert(ev.get("pid").unwrap().as_u64().unwrap());
        let ts = ev.get("ts").unwrap().as_f64().unwrap();
        assert!(ts >= last_ts, "timestamps must be globally monotonic");
        last_ts = ts;
        assert!(ev.get("dur").is_none() || ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
    }
    assert_eq!(pids.len(), 3, "one Chrome process track per rank");
    assert!(metadata >= 3, "process_name metadata per rank");

    // --- JSONL exporter: one valid JSON object per line.
    let jsonl = obs::jsonl(trace);
    let mut lines = 0usize;
    for line in jsonl.lines() {
        let rec = obs::Json::parse(line).expect("each jsonl line parses");
        assert!(rec.get("rank").is_some() && rec.get("name").is_some());
        lines += 1;
    }
    assert_eq!(lines, trace.total_events());

    // --- RunReport with trace sections populated + JSON round-trip.
    let meta = ReportMeta::new("lfr-1000", 1_000, g.num_edges() as u64).variant("baseline");
    let report = build_run_report(&out, &meta);
    assert!(!report.spans.is_empty());
    assert!(report.metrics.counter("sweep.moves") > 0);
    let events_total: u64 = report.per_rank.iter().map(|r| r.events_recorded).sum();
    assert_eq!(events_total, trace.total_events() as u64);
    let back = obs::RunReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(back.step_totals, report.step_totals);
    assert_eq!(back.per_rank, report.per_rank);
    assert_eq!(back.spans.len(), report.spans.len());
}

/// Telemetry and the metric-name registry, end to end: a traced run
/// must record only registered metric names, and its merged telemetry
/// must be a dense, ordered, internally consistent convergence table.
#[test]
fn telemetry_rows_and_metric_names_are_consistent() {
    let _guard = TRACE_FLAG.lock().unwrap();
    let g = lfr(LfrParams::small(1_000, 11)).graph;
    obs::set_enabled(true);
    let out = run_distributed(&g, 3, &DistConfig::baseline());
    obs::set_enabled(false);
    let trace = out.trace.as_ref().expect("tracing was enabled");

    // Counter-name drift gate: every name recorded anywhere in the run
    // must appear in the documented registry (obs::METRIC_REGISTRY).
    let merged = trace.merged_metrics();
    assert_eq!(
        obs::unregistered_metrics(&merged),
        Vec::<String>::new(),
        "recorded metric names must be declared in obs::METRIC_REGISTRY"
    );

    let rows = trace.merged_telemetry();
    assert!(!rows.is_empty(), "a traced run must produce telemetry");
    let mut prev: Option<(u64, u64)> = None;
    let mut prev_q: Option<f64> = None;
    for r in &rows {
        // Strictly ordered by (phase, iteration) with no duplicates.
        if let Some(p) = prev {
            assert!((r.phase, r.iteration) > p, "rows out of order at {p:?}");
            // delta_q is exactly the step from the previous iteration
            // of the same phase, and 0.0 on each phase's first row.
            if p.0 == r.phase {
                assert_eq!(
                    r.delta_q.to_bits(),
                    (r.modularity - prev_q.unwrap()).to_bits()
                );
            } else {
                assert_eq!(r.delta_q, 0.0);
            }
        }
        prev = Some((r.phase, r.iteration));
        prev_q = Some(r.modularity);
        // Per-rank ghost bytes are dense (one slot per rank).
        assert_eq!(r.ghost_bytes_per_rank.len(), 3);
        assert!(r.active <= r.vertices);
        assert!(r.communities <= r.vertices);
        // The size histogram observes each non-empty community once.
        assert_eq!(r.community_sizes.count, r.communities);
        assert_eq!(r.community_sizes.sum, r.vertices);
    }
    // Every vertex is active entering a phase; the run ends converged.
    assert_eq!(rows[0].active, rows[0].vertices);
    let last = rows.last().unwrap();
    assert_eq!(last.moves, 0, "the final iteration must be a fixed point");
    assert_eq!(last.communities, out.num_communities as u64);
    assert_eq!(last.modularity.to_bits(), out.modularity.to_bits());
}

/// Acceptance criterion: per-iteration telemetry for a 2-rank SSCA2 run
/// matches the serial reference (1 rank = the serial algorithm, see
/// tests/parity.rs) trajectory bit-exactly. SSCA2's planted cliques
/// make the greedy decisions partition-invariant, so the full move /
/// community-census trajectory must agree exactly. The recorded
/// modularity is the algorithm's own convergence measure, which is
/// computed against ghost views one exchange stale: on rows that moved
/// vertices it is a lagged *estimate*, and the exact serial value
/// appears one exchange later. Every settled row (`moves == 0` — the
/// measurement the convergence decision actually uses, including each
/// phase's last iteration) must therefore be bit-exact, and estimate
/// rows must agree within lag error.
#[test]
fn ssca2_telemetry_trajectory_matches_serial_reference_bit_exactly() {
    use distributed_louvain::graph::gen::{ssca2, Ssca2Params};
    let _guard = TRACE_FLAG.lock().unwrap();
    let g = ssca2(Ssca2Params {
        n: 1_000,
        max_clique_size: 50,
        inter_clique_prob: 0.05,
        seed: 9,
    })
    .graph;
    obs::set_enabled(true);
    let serial = run_distributed(&g, 1, &DistConfig::baseline());
    let dist = run_distributed(&g, 2, &DistConfig::baseline());
    obs::set_enabled(false);

    let reference = serial.trace.as_ref().unwrap().merged_telemetry();
    let observed = dist.trace.as_ref().unwrap().merged_telemetry();
    assert!(!reference.is_empty());
    assert_eq!(
        reference.len(),
        observed.len(),
        "iteration counts diverged between 1 and 2 ranks"
    );
    let mut settled = 0usize;
    for (a, b) in reference.iter().zip(&observed) {
        assert_eq!((a.phase, a.iteration), (b.phase, b.iteration));
        assert_eq!(
            a.moves, b.moves,
            "phase {} iteration {}",
            a.phase, a.iteration
        );
        assert_eq!(a.communities, b.communities);
        assert_eq!(a.vertices, b.vertices);
        if b.moves == 0 {
            assert_eq!(
                a.modularity.to_bits(),
                b.modularity.to_bits(),
                "settled modularity diverged at phase {} iteration {}",
                a.phase,
                a.iteration
            );
            settled += 1;
        } else {
            assert!(
                (a.modularity - b.modularity).abs() < 0.05,
                "lagged estimate too far off at phase {} iteration {}: {} vs {}",
                a.phase,
                a.iteration,
                a.modularity,
                b.modularity
            );
        }
    }
    assert!(settled >= 2, "each phase must end on a settled measurement");
    assert_eq!(serial.modularity.to_bits(), dist.modularity.to_bits());
    assert_eq!(serial.assignment, dist.assignment);
}

/// ET activity tracking under the colored parallel sweep: the per-color
/// work queues skip settled vertices, and the existing `active_fraction`
/// telemetry rows must still populate correctly — a decaying active set
/// with the same guarantees the sequential sweep provides, plus the new
/// colored-schedule counters.
#[test]
fn et_active_fraction_rows_populate_under_colored_parallel_sweep() {
    use distributed_louvain::dist::{SweepMode, Variant};
    let _guard = TRACE_FLAG.lock().unwrap();
    let g = lfr(LfrParams::small(1_200, 13)).graph;
    let cfg = DistConfig {
        sweep: SweepMode::Colored,
        threads_per_rank: 4,
        ..DistConfig::with_variant(Variant::Et { alpha: 0.25 })
    };
    obs::set_enabled(true);
    let out = run_distributed(&g, 2, &cfg);
    obs::set_enabled(false);
    let trace = out.trace.as_ref().expect("tracing was enabled");

    let rows = trace.merged_telemetry();
    assert!(!rows.is_empty(), "a traced run must produce telemetry");
    for r in &rows {
        assert!(r.vertices > 0);
        assert!(r.active <= r.vertices, "active set can never exceed n");
        let f = r.active_fraction();
        assert!((0.0..=1.0).contains(&f));
    }
    // Every vertex is active entering the run, and ET must actually
    // deactivate some vertices as the phase converges.
    assert_eq!(rows[0].active, rows[0].vertices);
    assert!(
        rows.iter().any(|r| r.active < r.vertices),
        "ET never froze a vertex: the activity filter is not wired in"
    );
    // The colored schedule's own counters ride the same trace: a
    // coloring was computed, and every move went through a color batch.
    let metrics = trace.merged_metrics();
    assert!(
        metrics.counter("sweep.colors") > 0,
        "coloring was never computed"
    );
    assert_eq!(
        metrics.counter("sweep.batch_moves"),
        metrics.counter("sweep.moves"),
        "every move must be attributed to a conflict-free color batch"
    );
}

/// With tracing off (the default), runs carry no trace and pay no
/// recording cost — and the report builder still works from the
/// always-on comm counters.
#[test]
fn disabled_tracing_yields_reports_without_trace_sections() {
    let _guard = TRACE_FLAG.lock().unwrap();
    let g = lfr(LfrParams::small(700, 5)).graph;
    let out = run_distributed(&g, 2, &DistConfig::baseline());
    assert!(out.trace.is_none());
    let report = build_run_report(&out, &ReportMeta::new("lfr-700", 700, g.num_edges() as u64));
    assert!(report.spans.is_empty());
    // No recorded metrics — only the imbalance histogram derived from
    // the always-on per-rank traffic counters.
    assert!(report.metrics.counters.is_empty());
    assert!(report.metrics.gauges.is_empty());
    let rank_bytes = &report.metrics.histograms["rank.total_bytes"];
    assert_eq!(rank_bytes.count, 2, "one observation per rank");
    assert!(report.total_bytes > 0);
}

fn arg_u64(ev: &obs::TraceEvent, key: &str) -> Option<u64> {
    ev.args.iter().find_map(|(k, v)| {
        if *k != key {
            return None;
        }
        match v {
            obs::ArgValue::U64(n) => Some(*n),
            obs::ArgValue::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    })
}

fn arg_str<'a>(ev: &'a obs::TraceEvent, key: &str) -> Option<&'a str> {
    ev.args.iter().find_map(|(k, v)| match v {
        obs::ArgValue::Str(s) if *k == key => Some(*s),
        _ => None,
    })
}

/// Satellite: counter/sub-span reconciliation. For every rank count, the
/// bytes carried by the `transfer` sub-spans must agree byte-exactly
/// with the per-step comm counters, the `wait` sub-span durations must
/// agree with the per-step blocked-wait counters, and the `wait.*`
/// metric counters must sum to the same total. Memory gauges ride the
/// same traced run and must be registered.
#[test]
fn transfer_span_bytes_reconcile_with_step_counters_across_rank_counts() {
    use distributed_louvain::comm::CommStep;
    let _guard = TRACE_FLAG.lock().unwrap();
    let g = lfr(LfrParams::small(1_000, 19)).graph;
    for p in [1usize, 2, 8] {
        obs::set_enabled(true);
        let out = run_distributed(&g, p, &DistConfig::baseline());
        obs::set_enabled(false);
        let trace = out.trace.as_ref().expect("tracing was enabled");

        let mut transfer_bytes = std::collections::BTreeMap::new();
        let mut wait_ns = std::collections::BTreeMap::new();
        for r in &trace.ranks {
            for ev in &r.events {
                if ev.cat != "comm" {
                    continue;
                }
                let Some(step) = arg_str(ev, "step") else {
                    continue;
                };
                match ev.name {
                    "transfer" => {
                        *transfer_bytes.entry(step.to_string()).or_insert(0u64) +=
                            arg_u64(ev, "bytes").unwrap_or(0);
                    }
                    "wait" => {
                        *wait_ns.entry(step.to_string()).or_insert(0u64) += ev.dur_ns();
                    }
                    _ => {}
                }
            }
        }
        for step in CommStep::ALL {
            assert_eq!(
                transfer_bytes.get(step.label()).copied().unwrap_or(0),
                out.traffic.step_bytes_for(step),
                "p={p} step={}: transfer sub-span bytes must equal the step counter",
                step.label()
            );
            assert_eq!(
                wait_ns.get(step.label()).copied().unwrap_or(0),
                out.traffic.step_wait_nanos_for(step),
                "p={p} step={}: wait sub-span time must equal the step wait counter",
                step.label()
            );
        }

        // The wait.* metric counters decompose the same total.
        let metrics = trace.merged_metrics();
        assert_eq!(
            metrics.counter("wait.recv_ns") + metrics.counter("wait.collective_ns"),
            out.traffic.wait_nanos_total(),
            "p={p}: wait counters must sum to the snapshot's blocked-wait total"
        );

        // Memory gauges are recorded on traced runs and registered.
        for gauge in [
            "mem.csr_bytes",
            "mem.ghost_bytes",
            "mem.peak_rss_bytes",
            "mem.scratch_bytes",
            "mem.wire_bytes",
        ] {
            assert!(
                metrics.gauges.contains_key(gauge),
                "p={p}: gauge {gauge} missing from a traced run"
            );
        }
        #[cfg(target_os = "linux")]
        assert!(
            metrics.gauges["mem.peak_rss_bytes"].last > 0.0,
            "VmHWM must be readable on linux"
        );
        assert!(metrics.gauges["mem.csr_bytes"].last > 0.0);
        assert_eq!(
            obs::unregistered_metrics(&metrics),
            Vec::<String>::new(),
            "p={p}: every recorded mem.*/wait.* name must be in METRIC_REGISTRY"
        );
    }
}

/// Satellite: message edges in the report match sends to receives 1:1 by
/// (src, lamport, attempt) and reconcile byte-exactly with the p2p
/// counters; every phase-profile row's four buckets sum to its total.
#[test]
fn message_edges_and_phase_profile_are_consistent_on_a_traced_run() {
    let _guard = TRACE_FLAG.lock().unwrap();
    let g = lfr(LfrParams::small(1_000, 19)).graph;
    obs::set_enabled(true);
    let out = run_distributed(&g, 4, &DistConfig::baseline());
    obs::set_enabled(false);

    let meta = ReportMeta::new("lfr-1000", 1_000, g.num_edges() as u64);
    let report = build_run_report(&out, &meta);
    assert!(
        !report.messages.is_empty(),
        "a multi-rank traced run must record message edges"
    );
    let edge_bytes: u64 = report.messages.iter().map(|e| e.bytes).sum();
    assert_eq!(
        edge_bytes, out.traffic.p2p_bytes,
        "matched edges must carry exactly the p2p bytes"
    );
    assert_eq!(
        report.messages.len() as u64,
        out.traffic.p2p_messages,
        "every logical p2p message must match at both endpoints"
    );
    for e in &report.messages {
        assert!(e.recv_ts_ns >= e.send_ts_ns, "recv cannot precede send");
        assert_ne!(e.src, e.dst, "self-sends bypass the mailbox");
    }
    // Lamport stamps strictly increase per sender.
    let mut last: std::collections::BTreeMap<usize, u64> = Default::default();
    for e in &report.messages {
        if let Some(prev) = last.insert(e.src, e.lamport) {
            assert!(e.lamport > prev, "lamport must increase per sender");
        }
    }

    assert!(!report.phase_profile.is_empty());
    for row in &report.phase_profile {
        assert_eq!(
            row.compute_ns + row.transfer_ns + row.wait_ns + row.rebuild_ns,
            row.total_ns,
            "rank {} phase {}: buckets must sum to the phase wall",
            row.rank,
            row.phase
        );
    }
    // One row per (rank, phase) cell.
    let mut cells = std::collections::BTreeSet::new();
    for row in &report.phase_profile {
        assert!(cells.insert((row.rank, row.phase)), "duplicate cell");
    }

    // Round-trip: the causal sections survive JSON.
    let back = obs::RunReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(back.messages, report.messages);
    assert_eq!(back.phase_profile, report.phase_profile);
}

/// Satellite: Chrome-trace export under the resilient driver. A
/// crash-recovered run tags every event with its attempt, the exporter
/// names per-attempt tracks, and the k-way merged stream stays
/// monotonic across the attempt boundary.
#[test]
fn chrome_trace_tags_attempts_under_resilient_recovery() {
    use distributed_louvain::comm::{FaultPlan, RunConfig};
    use distributed_louvain::dist::{run_distributed_resilient, CheckpointOptions, ResilOptions};
    use std::sync::Arc;

    let _guard = TRACE_FLAG.lock().unwrap();
    let g = lfr(LfrParams::small(900, 11)).graph;
    let dir = std::env::temp_dir().join(format!("louvain-obs-attempt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = FaultPlan::parse("crash:rank=0,phase=1,op=0").unwrap();
    obs::set_enabled(true);
    let out = run_distributed_resilient(
        &g,
        2,
        &DistConfig::baseline(),
        RunConfig {
            fault: Some(Arc::new(plan)),
            ..RunConfig::default()
        },
        &ResilOptions {
            checkpoint: Some(CheckpointOptions::new(&dir)),
            resume: false,
            max_recoveries: 1,
            ..ResilOptions::none()
        },
    )
    .expect("crash within recovery budget");
    obs::set_enabled(false);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(out.recoveries, 1);
    let trace = out.trace.as_ref().expect("tracing was enabled");
    let attempts: std::collections::BTreeSet<u32> = trace
        .ranks
        .iter()
        .flat_map(|r| r.events.iter().map(|e| e.attempt))
        .collect();
    assert!(
        attempts.contains(&0) && attempts.contains(&1),
        "both the crashed and the recovered attempt must be traced, got {attempts:?}"
    );

    let text = obs::chrome_trace_json(trace);
    let doc = obs::Json::parse(&text).expect("exporter must emit valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let mut last_ts = f64::NEG_INFINITY;
    let mut attempt_tracks = 0usize;
    for ev in events {
        if ev.get("ph").unwrap().as_str().unwrap() == "M" {
            if let Some(name) = ev
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(obs::Json::as_str)
            {
                if name.contains("attempt 1") {
                    attempt_tracks += 1;
                }
            }
            continue;
        }
        let ts = ev.get("ts").unwrap().as_f64().unwrap();
        assert!(
            ts >= last_ts,
            "k-way merge must stay monotonic across the attempt boundary"
        );
        last_ts = ts;
    }
    assert!(
        attempt_tracks > 0,
        "metadata must name the recovered attempt's tracks"
    );
}

/// Stats hygiene across a crash/restart: checkpointed counters are
/// re-absorbed on resume, so the recovered run's cumulative per-step
/// traffic reconciles exactly with an uninterrupted run's — for every
/// step except the `checkpoint` step itself — and the run report
/// carries the recovery bookkeeping.
#[test]
fn resumed_run_counters_reconcile_with_uninterrupted_run() {
    use distributed_louvain::comm::{CommStep, FaultPlan, RunConfig};
    use distributed_louvain::dist::{run_distributed_resilient, CheckpointOptions, ResilOptions};
    use std::sync::Arc;

    let g = lfr(LfrParams::small(900, 11)).graph;
    let cfg = DistConfig::baseline();
    let p = 2;
    let clean = run_distributed(&g, p, &cfg);

    let dir = std::env::temp_dir().join(format!("louvain-obs-reconcile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = FaultPlan::parse("crash:rank=0,phase=1,op=0").unwrap();
    let resumed = run_distributed_resilient(
        &g,
        p,
        &cfg,
        RunConfig {
            fault: Some(Arc::new(plan)),
            ..RunConfig::default()
        },
        &ResilOptions {
            checkpoint: Some(CheckpointOptions::new(&dir)),
            resume: false,
            max_recoveries: 1,
            ..ResilOptions::none()
        },
    )
    .expect("crash within recovery budget");
    assert_eq!(resumed.recoveries, 1);
    assert_eq!(resumed.resumed_from_phase, Some(1));
    assert_eq!(resumed.assignment, clean.assignment);

    // Cumulative totals reconcile exactly: the checkpoint cut is
    // snapshotted before the checkpoint gather, and the crashed
    // attempt's post-cut traffic dies with it.
    for step in CommStep::ALL {
        if step == CommStep::Checkpoint {
            assert!(
                resumed.traffic.step_bytes_for(step) > 0,
                "checkpoint traffic must land in its own step"
            );
            continue;
        }
        assert_eq!(
            resumed.traffic.step_bytes_for(step),
            clean.traffic.step_bytes_for(step),
            "step {} does not reconcile",
            step.label()
        );
        assert_eq!(
            resumed.traffic.step_messages_for(step),
            clean.traffic.step_messages_for(step),
            "step {} messages do not reconcile",
            step.label()
        );
    }

    // The report mirrors the recovery bookkeeping and round-trips.
    let meta = ReportMeta::new("lfr-900", 900, g.num_edges() as u64);
    let report = build_run_report(&resumed, &meta);
    assert_eq!(report.recoveries, 1);
    assert_eq!(report.resumed_from_phase, Some(1));
    assert!(!report.faults.any(), "a crash is not a transient fault");
    let back = obs::RunReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(back.recoveries, 1);
    assert_eq!(back.resumed_from_phase, Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}
