//! Acceptance tests for `lens crit` over the committed bench
//! artifacts: the causal analysis of BENCH_PR7.json is deterministic
//! (byte-identical renders), the critical path is bounded by the wall
//! and bounds every single rank's own phase time, the per-phase
//! attribution fractions sum to 1 within 1%, the traced message-edge
//! bytes agree byte-exactly with the p2p counters, the recovered α-β
//! constants land within tolerance of the generating model, and legacy
//! artifacts without message events degrade with a clear error and a
//! nonzero CLI exit instead of an empty report.

use std::collections::BTreeMap;

use distributed_louvain::obs::RunArtifact;
use louvain_lens::{crit, DEFAULT_WAIT_TOL, FIT_TOLERANCE};

fn load(rel: &str) -> RunArtifact {
    let path = format!("{}/{}", env!("CARGO_MANIFEST_DIR"), rel);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    RunArtifact::from_any_json_str(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Two invocations on the same committed artifact render byte-identical
/// reports: no clocks, no hash-order dependence, fixed float precision.
#[test]
fn crit_on_committed_artifact_is_deterministic() {
    let a = load("BENCH_PR7.json");
    let r1 = crit(&a, Some(&a), DEFAULT_WAIT_TOL).unwrap().render();
    let r2 = crit(&a, Some(&a), DEFAULT_WAIT_TOL).unwrap().render();
    assert_eq!(r1, r2, "crit render must be byte-identical");
    assert!(
        r1.contains("crit gate: PASS"),
        "self-baseline must pass:\n{r1}"
    );
}

/// The committed artifact carries causally-traced runs and the critical
/// path of each sits between the per-rank phase sums (lower bound: the
/// path picks the slowest rank per phase, so it dominates any single
/// rank's own run) and the whole-run wall (upper bound).
#[test]
fn critical_path_is_bounded_by_wall_and_bounds_every_rank() {
    let a = load("BENCH_PR7.json");
    let report = crit(&a, None, DEFAULT_WAIT_TOL).unwrap();
    assert!(!report.runs.is_empty(), "BENCH_PR7 must carry traced runs");
    let reports: BTreeMap<&str, _> = a
        .runs
        .iter()
        .map(|e| (e.label.as_str(), &e.report))
        .collect();
    for r in &report.runs {
        assert!(r.critical_path_ns > 0, "{}: empty critical path", r.label);
        assert!(
            r.critical_path_ns <= r.wall_ns,
            "{}: path {} exceeds wall {}",
            r.label,
            r.critical_path_ns,
            r.wall_ns
        );
        let rep = reports[r.label.as_str()];
        let mut per_rank: BTreeMap<usize, u64> = BTreeMap::new();
        for row in &rep.phase_profile {
            *per_rank.entry(row.rank).or_insert(0) += row.total_ns;
        }
        for (rank, total) in per_rank {
            assert!(
                r.critical_path_ns >= total,
                "{}: path {} below rank {}'s own phase time {}",
                r.label,
                r.critical_path_ns,
                rank,
                total
            );
        }
    }
}

/// Per-phase wall attribution along the path sums to the path total
/// within 1%, the traced message-edge bytes reconcile byte-exactly with
/// the p2p counters, and the least-squares α-β recovery lands within
/// the documented tolerance of the generating model constants.
#[test]
fn attribution_bytes_and_fit_meet_the_acceptance_bars() {
    let a = load("BENCH_PR7.json");
    let report = crit(&a, None, DEFAULT_WAIT_TOL).unwrap();
    let rendered = report.render();
    for r in &report.runs {
        let sum: f64 = r.path_fractions().iter().sum();
        assert!(
            (sum - 1.0).abs() < 0.01,
            "{}: fractions sum {sum}, off by more than 1%",
            r.label
        );
        assert_eq!(
            r.edge_bytes, r.p2p_bytes,
            "{}: traced edge bytes disagree with p2p counters",
            r.label
        );
        let fit = r
            .fit
            .unwrap_or_else(|| panic!("{}: no alpha-beta fit", r.label));
        assert!(
            fit.within_tolerance(),
            "{}: alpha {:+.3}% beta {:+.3}% outside {}%",
            r.label,
            100.0 * fit.alpha_rel_err,
            100.0 * fit.beta_rel_err,
            100.0 * FIT_TOLERANCE
        );
    }
    assert!(rendered.contains("exact match"));
    assert!(!rendered.contains("MISMATCH"));
    assert!(!rendered.contains("OUTSIDE TOLERANCE"));
}

/// BENCH_PR6.json predates the causal profiling layer: `crit` must
/// refuse it with a message that says why, not return an empty report.
#[test]
fn legacy_artifact_degrades_with_a_clear_error() {
    let a = load("BENCH_PR6.json");
    let err = crit(&a, None, DEFAULT_WAIT_TOL).unwrap_err();
    assert!(
        err.contains("no runs with message events"),
        "unhelpful error: {err}"
    );
    assert!(
        err.contains("BENCH_PR6"),
        "error must name the artifact: {err}"
    );
}

/// The CLI surfaces that refusal as a nonzero exit with the error on
/// stderr, so scripted pipelines fail loudly on pre-causal artifacts.
#[test]
fn cli_exits_nonzero_on_legacy_artifact() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_lens"))
        .arg("crit")
        .arg(format!("{}/BENCH_PR6.json", env!("CARGO_MANIFEST_DIR")))
        .output()
        .expect("spawn lens");
    assert!(!out.status.success(), "legacy artifact must fail the CLI");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no runs with message events"),
        "stderr: {stderr}"
    );
}

/// And the happy path through the same CLI: crit on the committed
/// artifact gated against itself passes with a zero exit.
#[test]
fn cli_passes_on_committed_artifact_with_self_baseline() {
    let path = format!("{}/BENCH_PR7.json", env!("CARGO_MANIFEST_DIR"));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_lens"))
        .args(["crit", &path, "--baseline", &path])
        .output()
        .expect("spawn lens");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "exit {:?}\n{stdout}", out.status);
    assert!(stdout.contains("crit gate: PASS"));
    assert!(stdout.contains("alpha-beta fit"));
}
