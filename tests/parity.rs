//! Cross-implementation parity: the serial reference (Algorithm 1), the
//! shared-memory Grappolo baseline, and the distributed algorithm must
//! agree on solution quality across graph families, and the distributed
//! answer must be self-consistent at every rank count.

use distributed_louvain::dist::{run_distributed, serial_louvain, DistConfig};
use distributed_louvain::graph::modularity;
use distributed_louvain::prelude::*;

fn families(seed: u64) -> Vec<(&'static str, Csr)> {
    vec![
        ("lfr", lfr(LfrParams::small(2_000, seed)).graph),
        (
            "ssca2",
            ssca2(Ssca2Params {
                n: 2_000,
                max_clique_size: 25,
                inter_clique_prob: 0.03,
                seed,
            })
            .graph,
        ),
        ("weblike", weblike(WeblikeParams::web(2_000, seed)).graph),
        ("grid3d", grid3d(Grid3dParams::cube(2_000, seed)).graph),
    ]
}

#[test]
fn distributed_matches_serial_quality_across_families() {
    for (name, g) in families(31) {
        let serial = serial_louvain(&g, 1e-6);
        for p in [1, 2, 4] {
            let dist = run_distributed(&g, p, &DistConfig::baseline());
            assert!(
                dist.modularity > serial.modularity - 0.06,
                "{name} p={p}: dist {} vs serial {}",
                dist.modularity,
                serial.modularity
            );
        }
    }
}

#[test]
fn grappolo_matches_serial_quality_across_families() {
    for (name, g) in families(32) {
        let serial = serial_louvain(&g, 1e-6);
        let shared = ParallelLouvain::new(GrappoloConfig::default()).run(&g);
        assert!(
            shared.modularity > serial.modularity - 0.06,
            "{name}: shared {} vs serial {}",
            shared.modularity,
            serial.modularity
        );
    }
}

#[test]
fn reported_modularity_always_matches_recomputation() {
    for (name, g) in families(33) {
        for p in [1, 3] {
            let dist = run_distributed(&g, p, &DistConfig::baseline());
            let q = modularity(&g, &dist.assignment);
            assert!(
                (dist.modularity - q).abs() < 1e-9,
                "{name} p={p}: reported {} vs recomputed {q}",
                dist.modularity
            );
        }
        let shared = ParallelLouvain::new(GrappoloConfig::default()).run(&g);
        let q = modularity(&g, &shared.assignment);
        assert!(
            (shared.modularity - q).abs() < 1e-9,
            "{name}: grappolo reported {} vs recomputed {q}",
            shared.modularity
        );
    }
}

#[test]
fn single_rank_distributed_equals_serial_exactly() {
    // With one rank there are no ghosts and no lag: the distributed sweep
    // is the serial algorithm (same gain formula, same shuffled order
    // discipline up to seeds), so quality must agree very tightly.
    for (name, g) in families(34) {
        let serial = serial_louvain(&g, 1e-6);
        let dist = run_distributed(&g, 1, &DistConfig::baseline());
        assert!(
            (dist.modularity - serial.modularity).abs() < 0.05,
            "{name}: dist(1) {} vs serial {}",
            dist.modularity,
            serial.modularity
        );
    }
}

#[test]
fn weighted_graphs_agree_across_implementations() {
    // Coarse graphs are weighted by construction, but the INPUT can be
    // weighted too: scale every edge of a planted graph by a
    // deterministic non-uniform factor and check all three
    // implementations still find the structure.
    let gen = lfr(LfrParams::small(1_500, 40));
    let mut el = EdgeList::new(gen.graph.num_vertices() as u64);
    for u in 0..gen.graph.num_vertices() as u64 {
        for (v, w) in gen.graph.neighbors(u) {
            if u <= v {
                let scale = 0.5 + ((u * 7 + v * 13) % 10) as f64 / 4.0;
                el.push(u, v, w * scale);
            }
        }
    }
    let g = Csr::from_edge_list(el);
    let serial = serial_louvain(&g, 1e-6);
    let shared = ParallelLouvain::new(GrappoloConfig::default()).run(&g);
    let dist = run_distributed(&g, 3, &DistConfig::baseline());
    assert!(serial.modularity > 0.5);
    assert!(shared.modularity > serial.modularity - 0.06);
    assert!(dist.modularity > serial.modularity - 0.06);
    // Reported values must be exact for the returned assignments.
    assert!((modularity(&g, &dist.assignment) - dist.modularity).abs() < 1e-9);
    assert!((modularity(&g, &shared.assignment) - shared.modularity).abs() < 1e-9);
}

#[test]
fn modularity_is_stable_across_rank_counts() {
    let g = lfr(LfrParams::small(3_000, 35)).graph;
    let qs: Vec<f64> = [1usize, 2, 3, 4, 6, 8]
        .iter()
        .map(|&p| run_distributed(&g, p, &DistConfig::baseline()).modularity)
        .collect();
    let max = qs.iter().cloned().fold(f64::MIN, f64::max);
    let min = qs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min < 0.05, "rank-count spread too wide: {qs:?}");
}

#[test]
fn paper_claim_quality_comparable_to_shared_memory() {
    // "Modularities obtained by the different versions of our parallel
    // algorithm are in most cases comparable to the best modularities
    // obtained by a state-of-the-art multithreaded Louvain implementation."
    let g = lfr(LfrParams::small(4_000, 36)).graph;
    let shared = ParallelLouvain::new(GrappoloConfig::default()).run(&g);
    for variant in DistConfig::paper_variants() {
        let dist = run_distributed(&g, 4, &DistConfig::with_variant(variant));
        // Tolerance per variant: the paper reports <1% difference for the
        // Baseline, <3% for Threshold Cycling, and up to ~4% for
        // aggressive ET on billion-edge graphs. Heuristic losses amplify
        // on graphs five orders of magnitude smaller, so the α-variants
        // get wider (but still bounded) margins.
        let tolerance = match variant.alpha() {
            None => 0.03,
            Some(a) if a <= 0.5 => 0.06,
            Some(_) => 0.15,
        };
        assert!(
            dist.modularity > shared.modularity - tolerance,
            "{}: {} vs shared {} (tolerance {tolerance})",
            variant.label(),
            dist.modularity,
            shared.modularity
        );
    }
}
