//! End-to-end coverage of the future-work extensions and the hybrid
//! MPI+OpenMP mode at the full multi-phase level.

use distributed_louvain::dist::{nmi, run_distributed, DistConfig, Variant};
use distributed_louvain::graph::modularity;
use distributed_louvain::prelude::*;

fn lfr_graph(seed: u64) -> Csr {
    lfr(LfrParams::small(2_000, seed)).graph
}

#[test]
fn neighborhood_collectives_match_baseline_bit_for_bit() {
    // The neighborhood refresh moves identical data over a sparser
    // topology: the entire multi-phase run must be identical.
    let g = lfr_graph(81);
    let base = run_distributed(&g, 4, &DistConfig::baseline());
    let nbr = run_distributed(
        &g,
        4,
        &DistConfig {
            neighborhood_collectives: true,
            ..DistConfig::baseline()
        },
    );
    assert_eq!(base.assignment, nbr.assignment);
    assert_eq!(base.modularity, nbr.modularity);
    assert_eq!(base.total_iterations, nbr.total_iterations);
}

#[test]
fn neighborhood_collectives_reduce_messages_at_scale() {
    // With 8 ranks on a mesh, the ghost topology is sparser than
    // all-to-all, so the refresh sends fewer messages.
    let g = grid3d(Grid3dParams::cube(4_000, 5)).graph;
    let base = run_distributed(&g, 8, &DistConfig::baseline());
    let nbr = run_distributed(
        &g,
        8,
        &DistConfig {
            neighborhood_collectives: true,
            ..DistConfig::baseline()
        },
    );
    assert_eq!(base.modularity, nbr.modularity);
    assert!(
        nbr.traffic.p2p_messages < base.traffic.p2p_messages,
        "neighborhood {} vs full {}",
        nbr.traffic.p2p_messages,
        base.traffic.p2p_messages
    );
}

#[test]
fn ghost_pruning_keeps_quality_and_cuts_refresh_bytes() {
    let g = grid3d(Grid3dParams::cube(4_000, 7)).graph;
    let et_cfg = DistConfig::with_variant(Variant::Et { alpha: 0.75 });
    let base = run_distributed(&g, 4, &et_cfg);
    let pruned = run_distributed(
        &g,
        4,
        &DistConfig {
            prune_inactive_ghosts: true,
            ..et_cfg
        },
    );
    // Pruning must not change what ET converges to by much — frozen
    // vertices were not going to move anyway.
    assert!(
        (pruned.modularity - base.modularity).abs() < 0.05,
        "pruned {} vs base {}",
        pruned.modularity,
        base.modularity
    );
    let q_check = modularity(&g, &pruned.assignment);
    assert!((pruned.modularity - q_check).abs() < 1e-9);
}

#[test]
fn colored_sweeps_full_run_quality() {
    let g = lfr_graph(83);
    let base = run_distributed(&g, 4, &DistConfig::baseline());
    let colored = run_distributed(
        &g,
        4,
        &DistConfig {
            color_sweeps: true,
            ..DistConfig::baseline()
        },
    );
    assert!(
        colored.modularity > base.modularity - 0.05,
        "colored {} vs base {}",
        colored.modularity,
        base.modularity
    );
    // The point of coloring: fewer iterations to converge.
    assert!(
        colored.total_iterations <= base.total_iterations + 5,
        "colored {} iters vs base {}",
        colored.total_iterations,
        base.total_iterations
    );
}

#[test]
fn hybrid_mpi_openmp_run_is_sane() {
    let g = lfr_graph(84);
    let base = run_distributed(&g, 4, &DistConfig::baseline());
    let hybrid = run_distributed(
        &g,
        2,
        &DistConfig {
            threads_per_rank: 2,
            ..DistConfig::baseline()
        },
    );
    assert!(
        hybrid.modularity > base.modularity - 0.1,
        "hybrid {} vs base {}",
        hybrid.modularity,
        base.modularity
    );
    let q_check = modularity(&g, &hybrid.assignment);
    assert!((hybrid.modularity - q_check).abs() < 1e-9);
    // The modeled compute time accounts for the intra-rank threads.
    assert!(hybrid.modeled_seconds > 0.0);
}

#[test]
fn vertex_following_full_run_preserves_quality() {
    let g = lfr_graph(85);
    let base = run_distributed(&g, 3, &DistConfig::baseline());
    let vf = run_distributed(
        &g,
        3,
        &DistConfig {
            vertex_following: true,
            ..DistConfig::baseline()
        },
    );
    assert!(
        vf.modularity > base.modularity - 0.05,
        "vf {} vs base {}",
        vf.modularity,
        base.modularity
    );
    // The clusterings should be largely the same communities.
    assert!(nmi(&base.assignment, &vf.assignment) > 0.7);
}

#[test]
fn extensions_compose() {
    // Everything at once: ET + pruning + neighborhood + VF on 4 ranks.
    let g = grid3d(Grid3dParams::cube(3_000, 9)).graph;
    let cfg = DistConfig {
        neighborhood_collectives: true,
        prune_inactive_ghosts: true,
        vertex_following: true,
        ..DistConfig::with_variant(Variant::Etc { alpha: 0.25 })
    };
    let out = run_distributed(&g, 4, &cfg);
    assert!(out.modularity > 0.5, "q = {}", out.modularity);
    let q_check = modularity(&g, &out.assignment);
    assert!((out.modularity - q_check).abs() < 1e-9);
}

#[test]
fn quality_metric_suite_agrees_on_good_clusterings() {
    let gen = lfr(LfrParams::small(2_000, 86));
    let truth = gen.ground_truth.as_ref().unwrap();
    let out = run_distributed(&gen.graph, 4, &DistConfig::baseline());
    let f = distributed_louvain::dist::f_score(truth, &out.assignment);
    let v_nmi = nmi(truth, &out.assignment);
    let v_ari = distributed_louvain::dist::adjusted_rand_index(truth, &out.assignment);
    assert!(f.f_score > 0.85, "F = {}", f.f_score);
    assert!(v_nmi > 0.85, "NMI = {v_nmi}");
    assert!(v_ari > 0.6, "ARI = {v_ari}");
    // Structural metrics: the found partition covers most edge weight.
    let m = distributed_louvain::graph::metrics::partition_metrics(&gen.graph, &out.assignment);
    assert!(m.coverage > 0.8, "coverage = {}", m.coverage);
    assert!(
        m.mean_conductance < 0.3,
        "conductance = {}",
        m.mean_conductance
    );
}
