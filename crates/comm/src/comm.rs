//! The per-rank communicator handle.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::blackboard::Blackboard;
use crate::cost::CostModel;
use crate::envelope::{expected_checksum, Envelope, Mailbox, Senders};
use crate::fault::{FaultKind, FaultPlan, RankCrashed, FAULT_MAX_ATTEMPTS};
use crate::health::{HealthBoard, HealthConfig, RankHung, WaitCtx};
use crate::reduce::{ReduceOp, Reducible};
use crate::stats::{CommStats, CommStep};

/// Message tag, matched together with the source rank on receive.
pub type Tag = u32;

/// Per-rank mutable state of an active [`FaultPlan`]: the message
/// numbering that the plan's deterministic decisions key on. (Epoch/op
/// numbering lives on [`Comm`] itself so [`RankHung`] reports carry
/// phase context even in fault-free runs.)
struct FaultSession {
    plan: Arc<FaultPlan>,
    /// Logical messages sent so far (plan decision key).
    msg_counter: Cell<u64>,
    /// Physical send sequence (receiver-side dedup key); starts at 1 so
    /// `seq == 0` stays reserved for clean runs.
    seq: Cell<u64>,
}

impl FaultSession {
    fn next_seq(&self) -> u64 {
        let s = self.seq.get() + 1;
        self.seq.set(s);
        s
    }
}

/// One rank's endpoint into the simulated job.
///
/// A `Comm` is owned by exactly one rank (thread); it is `Send` but not
/// `Sync`. All methods take `&self` — internal mutability covers the
/// mailbox and statistics.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Senders,
    mailbox: RefCell<Mailbox>,
    blackboard: Arc<Blackboard>,
    stats: CommStats,
    cost: CostModel,
    fault: Option<FaultSession>,
    health: HealthConfig,
    board: Arc<HealthBoard>,
    poison: Arc<AtomicBool>,
    /// Current fault epoch (the Louvain phase index, set by the runner).
    epoch: Cell<u64>,
    /// Communication operations issued so far in the current epoch.
    ops_in_epoch: Cell<u64>,
}

impl Comm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Senders,
        mailbox: Mailbox,
        blackboard: Arc<Blackboard>,
        cost: CostModel,
        fault: Option<Arc<FaultPlan>>,
        health: HealthConfig,
        board: Arc<HealthBoard>,
        poison: Arc<AtomicBool>,
    ) -> Self {
        Self {
            rank,
            size,
            senders,
            mailbox: RefCell::new(mailbox),
            blackboard,
            stats: CommStats::new(),
            cost,
            fault: fault.map(|plan| FaultSession {
                plan,
                msg_counter: Cell::new(0),
                seq: Cell::new(0),
            }),
            health,
            board,
            poison,
            epoch: Cell::new(0),
            ops_in_epoch: Cell::new(0),
        }
    }

    /// Enter fault epoch `epoch` (the runner calls this with the Louvain
    /// phase index at each phase start, so crash/hang rules can address
    /// "phase k, comm op n" and [`RankHung`] reports carry the phase).
    pub fn advance_fault_epoch(&self, epoch: u64) {
        self.epoch.set(epoch);
        self.ops_in_epoch.set(0);
    }

    /// The health configuration this rank runs under.
    pub fn health_config(&self) -> &HealthConfig {
        &self.health
    }

    /// Stamp this rank's heartbeat without counting a comm op. Long
    /// local sections between comm calls (checkpoint serialization and
    /// fsync, big rebuilds) should call this so peer watchdogs keep
    /// classifying the rank as a straggler rather than hung.
    pub fn heartbeat(&self) {
        self.board.beat(self.rank);
    }

    /// Wait identity for the comm op currently in flight (ops are
    /// counted at op entry, so "current" is the last counted one).
    fn wait_ctx(&self) -> WaitCtx<'_> {
        WaitCtx {
            cfg: &self.health,
            board: &self.board,
            stats: &self.stats,
            rank: self.rank,
            phase: self.epoch.get(),
            op: self.ops_in_epoch.get().saturating_sub(1),
        }
    }

    /// Count one communication operation, heartbeat the health board,
    /// and serve any [`crate::fault::CrashRule`]/[`crate::fault::
    /// HangRule`]/stall addressed to it. Called at the top of every
    /// public comm method; two cheap stores plus an `Option` check in
    /// clean runs.
    fn fault_op_tick(&self) {
        let op = self.ops_in_epoch.get();
        self.ops_in_epoch.set(op + 1);
        self.board.beat(self.rank);
        let Some(f) = &self.fault else { return };
        let phase = self.epoch.get();
        if f.plan.should_crash(self.rank, phase, op) {
            std::panic::panic_any(RankCrashed {
                rank: self.rank,
                phase,
                op,
            });
        }
        if f.plan.should_hang(self.rank, phase, op) {
            self.hang_injected(phase, op);
        }
        if let Some(stall) = f
            .plan
            .decide_stall(self.rank, self.stats.current_step(), phase, op)
        {
            self.stall_injected(stall);
        }
    }

    /// Serve an injected hang: go silent (no heartbeats, no messages)
    /// until a peer's watchdog declares this rank hung and poisons the
    /// job, or — in single-rank jobs, where there is no peer to notice —
    /// until the self-timeout fires, simulating an external supervisor
    /// kill. Either way the thread unwinds and the resilient driver
    /// recovers from the newest checkpoint.
    fn hang_injected(&self, phase: u64, op: u64) -> ! {
        let started = Instant::now();
        let limit = self.health.hang_self_timeout();
        loop {
            std::thread::sleep(Duration::from_millis(2));
            if self.poison.load(Ordering::Relaxed) {
                panic!("communicator poisoned: a peer rank panicked");
            }
            if started.elapsed() >= limit {
                std::panic::panic_any(RankHung {
                    rank: self.rank,
                    detector: self.rank,
                    phase,
                    op,
                    step: self.stats.current_step(),
                    waited_ms: started.elapsed().as_millis() as u64,
                });
            }
        }
    }

    /// Serve an injected stall: sleep the configured duration while
    /// *continuing to heartbeat*, so peers classify this rank as a
    /// straggler (deadline extensions), never as hung.
    fn stall_injected(&self, dur: Duration) {
        self.stats.record_fault(FaultKind::Stall);
        let started = Instant::now();
        let slice = Duration::from_millis(2).min(dur);
        while started.elapsed() < dur {
            self.board.beat(self.rank);
            if self.poison.load(Ordering::Relaxed) {
                panic!("communicator poisoned: a peer rank panicked");
            }
            std::thread::sleep(slice);
        }
        self.board.beat(self.rank);
    }

    /// Deliver one logical message to `dst`, surviving any transient
    /// faults the plan injects: dropped, truncated, flaky-burst, and
    /// checksum-corrupted copies are retransmitted (bounded attempts
    /// with exponential-backoff-plus-jitter), duplicates materialize as
    /// a stale extra copy the receiver deduplicates, delays sleep
    /// briefly. Returns the number of physical copies transmitted, for
    /// byte accounting (always 1 in clean runs).
    ///
    /// `bytes` is the serialized payload size the caller charges to its
    /// byte counters; it rides on the envelope (and the `msg_send`
    /// trace event) so the receive side can attribute the same number.
    fn deliver<T: Send + 'static>(&self, dst: usize, tag: Tag, data: Vec<T>, bytes: u64) -> u64 {
        // One Lamport tick and one `msg_send` event per *logical*
        // message: every physical copy carries the same stamp, and the
        // receiver's dedup/checksum intake delivers exactly one, so the
        // (src, lamport) pair matches send and recv events one-to-one.
        let lamport = self.stats.tick_lamport();
        if louvain_obs::enabled() {
            louvain_obs::instant(
                "msg_send",
                "comm",
                vec![
                    ("src", louvain_obs::ArgValue::from(self.rank)),
                    ("dst", louvain_obs::ArgValue::from(dst)),
                    (
                        "step",
                        louvain_obs::ArgValue::from(self.stats.current_step().label()),
                    ),
                    ("lamport", louvain_obs::ArgValue::from(lamport)),
                    ("bytes", louvain_obs::ArgValue::from(bytes)),
                    (
                        "modeled_ns",
                        louvain_obs::ArgValue::from((self.cost.p2p(bytes) * 1e9) as u64),
                    ),
                ],
            );
        }
        let beat = self.board.beat(self.rank);
        let Some(f) = &self.fault else {
            let mut env = Envelope::clean(self.rank, tag, Box::new(data));
            env.beat = beat;
            env.lamport = lamport;
            env.wire_bytes = bytes;
            self.senders[dst].send(env).expect("peer mailbox closed");
            return 1;
        };
        let step = self.stats.current_step();
        let phase = self.epoch.get();
        let msg = f.msg_counter.get();
        f.msg_counter.set(msg + 1);
        let backoff = |attempt: u32| {
            let d = self
                .health
                .backoff
                .delay(attempt, msg ^ ((self.rank as u64) << 48));
            self.stats.record_backoff(d);
            if !d.is_zero() {
                std::thread::sleep(d);
            }
        };
        // A protocol envelope: sequenced, checksummed, heartbeat-stamped.
        let proto =
            |seq: u64, corrupt: bool, checksum: u64, payload: Box<dyn std::any::Any + Send>| {
                Envelope {
                    src: self.rank,
                    tag,
                    seq,
                    corrupt,
                    checksum,
                    beat: self.board.beat(self.rank),
                    lamport,
                    wire_bytes: bytes,
                    payload,
                }
            };
        // After this many faulty tries the message goes through clean —
        // injected faults must never block progress. The per-step
        // watchdog retry cap can raise the window so flaky bursts get
        // room to play out.
        let retry_cap = FAULT_MAX_ATTEMPTS.max(self.health.retries_for(step));
        let mut copies = 0u64;
        let mut attempt = 0u32;
        loop {
            let fault = if attempt < retry_cap {
                f.plan.decide(self.rank, step, phase, msg, attempt)
            } else {
                None
            };
            match fault {
                Some(kind @ (FaultKind::Drop | FaultKind::FlakyBurst)) => {
                    // Transmitted but lost on the wire; retransmit.
                    self.stats.record_fault(kind);
                    self.stats.record_retry();
                    copies += 1;
                    backoff(attempt);
                    attempt += 1;
                }
                Some(FaultKind::Truncate) => {
                    // A mangled copy arrives; the receiver discards it
                    // via the `corrupt` flag and we retransmit.
                    self.stats.record_fault(FaultKind::Truncate);
                    self.stats.record_retry();
                    let seq = f.next_seq();
                    let sum = expected_checksum(self.rank, tag, seq);
                    self.senders[dst]
                        .send(proto(seq, true, sum, Box::<Vec<T>>::default()))
                        .expect("peer mailbox closed");
                    copies += 1;
                    backoff(attempt);
                    attempt += 1;
                }
                Some(FaultKind::CorruptPayload) => {
                    // The copy arrives with a flipped checksum; the
                    // receiver detects the mismatch, discards it, and we
                    // retransmit.
                    self.stats.record_fault(FaultKind::CorruptPayload);
                    self.stats.record_retry();
                    let seq = f.next_seq();
                    let sum = expected_checksum(self.rank, tag, seq) ^ 0xBAD0_BAD0_BAD0_BAD0;
                    self.senders[dst]
                        .send(proto(seq, false, sum, Box::<Vec<T>>::default()))
                        .expect("peer mailbox closed");
                    copies += 1;
                    backoff(attempt);
                    attempt += 1;
                }
                other => {
                    if other == Some(FaultKind::Delay) {
                        self.stats.record_fault(FaultKind::Delay);
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    let seq = f.next_seq();
                    let sum = expected_checksum(self.rank, tag, seq);
                    self.senders[dst]
                        .send(proto(seq, false, sum, Box::new(data)))
                        .expect("peer mailbox closed");
                    copies += 1;
                    if other == Some(FaultKind::Duplicate) {
                        // A stale extra copy reusing the same sequence
                        // number; the receiver's dedup drops it.
                        self.stats.record_fault(FaultKind::Duplicate);
                        self.senders[dst]
                            .send(proto(seq, false, sum, Box::<Vec<T>>::default()))
                            .expect("peer mailbox closed");
                        copies += 1;
                    }
                    return copies;
                }
            }
        }
    }

    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters recorded so far by this rank.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// The cost model used for modeled-time accounting.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Attribute all traffic recorded inside `f` to the given
    /// algorithmic step, restoring the previous attribution afterwards.
    ///
    /// The restore runs from a drop guard, so a panicking closure cannot
    /// leave later traffic misattributed to `step`. When tracing is
    /// enabled the scope also records a span named after the step
    /// (category `comm`) carrying the bytes/messages/retries charged
    /// inside it — the span args are recorded from the same drop guard,
    /// so traffic and retry/backoff activity that happened before a
    /// panic (e.g. a crash injected mid-collective) still lands on the
    /// span instead of being lost with the unwind.
    ///
    /// The guard also splits the step's blocking time into two
    /// attribution sub-spans: `wait` (wall time spent idle in a blocked
    /// receive or collective fill-wait — straggler-bound) and
    /// `transfer` (modeled seconds charged for the bytes that moved,
    /// carrying the step's byte delta so trace totals reconcile with
    /// the `CommStats` counters byte-for-byte).
    pub fn with_step<R>(&self, step: CommStep, f: impl FnOnce() -> R) -> R {
        struct Restore<'a> {
            stats: &'a CommStats,
            prev: CommStep,
            step: CommStep,
            span: louvain_obs::SpanGuard,
            bytes_before: u64,
            msgs_before: u64,
            retries_before: u64,
            wait_before: u64,
            modeled_before: f64,
        }
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                let bytes = self.stats.step_bytes(self.step) - self.bytes_before;
                let messages = self.stats.step_messages(self.step) - self.msgs_before;
                let retries = self.stats.step_retries(self.step) - self.retries_before;
                let wait_ns = self
                    .stats
                    .step_wait_nanos(self.step)
                    .saturating_sub(self.wait_before);
                let modeled = (self.stats.modeled_seconds() - self.modeled_before).max(0.0);
                self.span.arg("bytes", bytes);
                self.span.arg("messages", messages);
                self.span.arg("retries", retries);
                self.span.arg("wait_ns", wait_ns);
                louvain_obs::complete_span(
                    "wait",
                    "comm",
                    wait_ns,
                    0.0,
                    vec![("step", louvain_obs::ArgValue::from(self.step.label()))],
                );
                louvain_obs::complete_span(
                    "transfer",
                    "comm",
                    (modeled * 1e9) as u64,
                    modeled,
                    vec![
                        ("step", louvain_obs::ArgValue::from(self.step.label())),
                        ("bytes", louvain_obs::ArgValue::from(bytes)),
                    ],
                );
                self.stats.set_step(self.prev);
            }
        }
        let prev = self.stats.set_step(step);
        let _restore = Restore {
            stats: &self.stats,
            prev,
            step,
            span: louvain_obs::span_cat(step.label(), "comm", Vec::new()),
            bytes_before: self.stats.step_bytes(step),
            msgs_before: self.stats.step_messages(step),
            retries_before: self.stats.step_retries(step),
            wait_before: self.stats.step_wait_nanos(step),
            modeled_before: self.stats.modeled_seconds(),
        };
        f()
    }

    /// Gather every rank's [`StatsSnapshot`]. Each rank snapshots its own
    /// counters *before* the underlying `all_gather`, so the result
    /// reflects only application traffic, not the aggregation itself.
    /// Collective: all ranks must call it together.
    pub fn gather_stats(&self) -> Vec<crate::stats::StatsSnapshot> {
        let snap = self.stats.snapshot();
        self.all_gather(snap)
    }

    /// Combine all ranks' snapshots into job totals (counters summed,
    /// modeled time max — the bulk-synchronous critical path).
    /// Collective: all ranks must call it together.
    pub fn aggregate_stats(&self) -> crate::stats::StatsSnapshot {
        let mut total = crate::stats::StatsSnapshot::default();
        for s in self.gather_stats() {
            total.merge_max_time(&s);
        }
        total
    }

    // ---------------------------------------------------------------
    // Point-to-point
    // ---------------------------------------------------------------

    /// Send `data` to rank `dst` with tag `tag`. Never blocks (buffered).
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: Tag, data: Vec<T>) {
        assert!(
            dst < self.size,
            "send to rank {dst} out of range (p={})",
            self.size
        );
        self.fault_op_tick();
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let copies = self.deliver(dst, tag, data, bytes);
        self.stats
            .record_p2p_batch(copies, bytes * copies, self.cost.p2p(bytes) * copies as f64);
    }

    /// Blocking receive of a message from `src` with tag `tag`.
    ///
    /// Panics if the payload type does not match what was sent — a type
    /// confusion here is a programming error, not a runtime condition.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: Tag) -> Vec<T> {
        let ctx = self.wait_ctx();
        let env = self.mailbox.borrow_mut().recv_matching(src, tag, &ctx);
        *env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
            panic!(
                "type mismatch receiving from rank {src} tag {tag}: expected Vec<{}>",
                std::any::type_name::<T>()
            )
        })
    }

    // ---------------------------------------------------------------
    // Collectives
    // ---------------------------------------------------------------

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.fault_op_tick();
        self.stats
            .record_collective(0, self.cost.collective(self.size, 0));
        let ctx = self.wait_ctx();
        self.blackboard
            .exchange_watched(self.rank, (), |_| (), Some(&ctx));
    }

    /// Every rank contributes one value; every rank receives the vector of
    /// all contributions indexed by rank.
    pub fn all_gather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        self.fault_op_tick();
        let bytes = std::mem::size_of::<T>() as u64;
        self.stats
            .record_collective(bytes, self.cost.collective(self.size, bytes));
        let ctx = self.wait_ctx();
        self.blackboard.exchange_watched(
            self.rank,
            value,
            |slots| {
                slots
                    .iter()
                    .map(|s| s.as_ref().unwrap().downcast_ref::<T>().unwrap().clone())
                    .collect()
            },
            Some(&ctx),
        )
    }

    /// Global reduction; every rank receives the combined value.
    pub fn all_reduce<T: Reducible>(&self, value: T, op: ReduceOp) -> T {
        self.fault_op_tick();
        let bytes = T::wire_bytes();
        self.stats
            .record_collective(bytes, self.cost.collective(self.size, bytes));
        let ctx = self.wait_ctx();
        self.blackboard.exchange_watched(
            self.rank,
            value,
            |slots| {
                slots
                    .iter()
                    .map(|s| *s.as_ref().unwrap().downcast_ref::<T>().unwrap())
                    .reduce(|a, b| T::combine(op, a, b))
                    .expect("non-empty job")
            },
            Some(&ctx),
        )
    }

    /// Exclusive prefix sum: rank `i` receives the sum of the values
    /// contributed by ranks `0..i` (zero on rank 0). This is the primitive
    /// behind the global renumbering step of graph reconstruction.
    pub fn exscan_sum<T: Reducible>(&self, value: T) -> T {
        self.fault_op_tick();
        let bytes = T::wire_bytes();
        self.stats
            .record_collective(bytes, self.cost.collective(self.size, bytes));
        let rank = self.rank;
        let ctx = self.wait_ctx();
        self.blackboard.exchange_watched(
            self.rank,
            value,
            move |slots| {
                slots[..rank]
                    .iter()
                    .map(|s| *s.as_ref().unwrap().downcast_ref::<T>().unwrap())
                    .fold(T::zero(), |a, b| T::combine(ReduceOp::Sum, a, b))
            },
            Some(&ctx),
        )
    }

    /// Broadcast `value` from `root` to all ranks. Non-root contributions
    /// are ignored (pass any placeholder).
    pub fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: T) -> T {
        self.fault_op_tick();
        assert!(root < self.size);
        let bytes = std::mem::size_of::<T>() as u64;
        self.stats
            .record_collective(bytes, self.cost.collective(self.size, bytes));
        let ctx = self.wait_ctx();
        self.blackboard.exchange_watched(
            self.rank,
            value,
            |slots| {
                slots[root]
                    .as_ref()
                    .unwrap()
                    .downcast_ref::<T>()
                    .unwrap()
                    .clone()
            },
            Some(&ctx),
        )
    }

    /// Gather variable-length buffers to `root`. Returns `Some(bufs)` on
    /// the root (indexed by source rank) and `None` elsewhere.
    pub fn gather_to_root<T: Send + 'static>(
        &self,
        root: usize,
        data: Vec<T>,
    ) -> Option<Vec<Vec<T>>> {
        self.fault_op_tick();
        assert!(root < self.size);
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.stats
            .record_collective(bytes, self.cost.collective(self.size, bytes));
        let is_root = self.rank == root;
        let ctx = self.wait_ctx();
        self.blackboard.exchange_watched(
            self.rank,
            data,
            move |slots| {
                if is_root {
                    Some(
                        slots
                            .iter_mut()
                            .map(|s| {
                                // Move the payload out; non-roots never read it and
                                // the board is reset after the round completes.
                                std::mem::take(
                                    s.as_mut().unwrap().downcast_mut::<Vec<T>>().unwrap(),
                                )
                            })
                            .collect(),
                    )
                } else {
                    None
                }
            },
            Some(&ctx),
        )
    }

    /// Irregular all-to-all: `bufs[j]` is sent to rank `j`; the result's
    /// entry `i` holds what rank `i` sent here. `bufs` must have length
    /// `size`. The self-buffer is moved, not copied through a channel.
    pub fn all_to_all_v<T: Send + 'static>(&self, mut bufs: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(
            bufs.len(),
            self.size,
            "all_to_all_v needs one buffer per rank"
        );
        const A2A_TAG: Tag = u32::MAX - 7;
        self.fault_op_tick();
        let mine = std::mem::take(&mut bufs[self.rank]);
        let mut nmsgs = 0u64;
        let mut sent = 0u64;
        for (dst, buf) in bufs.into_iter().enumerate() {
            if dst == self.rank {
                continue;
            }
            let bytes = (buf.len() * std::mem::size_of::<T>()) as u64;
            let copies = self.deliver(dst, A2A_TAG, buf, bytes);
            nmsgs += copies;
            sent += bytes * copies;
        }
        self.stats
            .record_p2p_batch(nmsgs, sent, self.cost.all_to_all(nmsgs, sent));
        let mut out: Vec<Vec<T>> = (0..self.size).map(|_| Vec::new()).collect();
        out[self.rank] = mine;
        for (src, slot) in out.iter_mut().enumerate() {
            if src == self.rank {
                continue;
            }
            let ctx = self.wait_ctx();
            let env = self.mailbox.borrow_mut().recv_matching(src, A2A_TAG, &ctx);
            *slot = *env
                .payload
                .downcast::<Vec<T>>()
                .expect("all_to_all_v type mismatch");
        }
        out
    }

    /// Like [`Comm::all_to_all_v`], but borrows the send buffers instead
    /// of consuming them, so a caller that reuses the same buffers every
    /// round (e.g. a ghost layer's request lists) does not have to clone
    /// the whole `Vec<Vec<T>>` per call. Only the cross-rank payloads are
    /// cloned onto the wire; the self-buffer is cloned directly into the
    /// result.
    pub fn all_to_all_v_ref<T: Clone + Send + 'static>(&self, bufs: &[Vec<T>]) -> Vec<Vec<T>> {
        assert_eq!(
            bufs.len(),
            self.size,
            "all_to_all_v needs one buffer per rank"
        );
        const A2A_TAG: Tag = u32::MAX - 7;
        self.fault_op_tick();
        let mut nmsgs = 0u64;
        let mut sent = 0u64;
        for (dst, buf) in bufs.iter().enumerate() {
            if dst == self.rank {
                continue;
            }
            let bytes = (buf.len() * std::mem::size_of::<T>()) as u64;
            let copies = self.deliver(dst, A2A_TAG, buf.clone(), bytes);
            nmsgs += copies;
            sent += bytes * copies;
        }
        self.stats
            .record_p2p_batch(nmsgs, sent, self.cost.all_to_all(nmsgs, sent));
        let mut out: Vec<Vec<T>> = (0..self.size).map(|_| Vec::new()).collect();
        out[self.rank] = bufs[self.rank].clone();
        for (src, slot) in out.iter_mut().enumerate() {
            if src == self.rank {
                continue;
            }
            let ctx = self.wait_ctx();
            let env = self.mailbox.borrow_mut().recv_matching(src, A2A_TAG, &ctx);
            *slot = *env
                .payload
                .downcast::<Vec<T>>()
                .expect("all_to_all_v type mismatch");
        }
        out
    }

    /// MPI-3-style neighborhood all-to-all (`MPI_Neighbor_alltoallv`):
    /// exchange only with a fixed, **symmetric** set of topology
    /// neighbors. `bufs[i]` goes to `neighbors[i]`; the result is aligned
    /// with `neighbors`. Every rank must call this with a consistent
    /// topology (if A lists B, B lists A) — the paper's future-work
    /// optimization for the ghost exchange, where the communication graph
    /// is fixed per phase and much sparser than all-to-all.
    ///
    /// Compared to [`Comm::all_to_all_v`], the α (per-message) cost scales
    /// with the neighbor count instead of `p−1`.
    pub fn neighbor_all_to_all_v<T: Send + 'static>(
        &self,
        neighbors: &[usize],
        bufs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        assert_eq!(
            bufs.len(),
            neighbors.len(),
            "one buffer per topology neighbor"
        );
        const NBR_TAG: Tag = u32::MAX - 8;
        self.fault_op_tick();
        let mut nmsgs = 0u64;
        let mut sent = 0u64;
        for (&dst, buf) in neighbors.iter().zip(bufs) {
            assert!(dst < self.size && dst != self.rank, "bad neighbor {dst}");
            let bytes = (buf.len() * std::mem::size_of::<T>()) as u64;
            let copies = self.deliver(dst, NBR_TAG, buf, bytes);
            nmsgs += copies;
            sent += bytes * copies;
        }
        self.stats
            .record_p2p_batch(nmsgs, sent, self.cost.all_to_all(nmsgs, sent));
        neighbors
            .iter()
            .map(|&src| {
                let ctx = self.wait_ctx();
                let env = self.mailbox.borrow_mut().recv_matching(src, NBR_TAG, &ctx);
                *env.payload
                    .downcast::<Vec<T>>()
                    .expect("neighbor_all_to_all_v type mismatch")
            })
            .collect()
    }

    /// Number of messages sitting unreceived in this rank's mailbox —
    /// should be zero at clean shutdown; asserted by the runtime in tests.
    pub fn pending_messages(&self) -> usize {
        self.mailbox.borrow().pending_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run;
    use crate::stats::StatsSnapshot;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn with_step_restores_attribution_on_panic() {
        run(2, |comm| {
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                comm.with_step(CommStep::GhostRefresh, || {
                    comm.all_gather(1u64);
                    panic!("boom inside step");
                })
            }));
            assert!(unwound.is_err());
            // The drop guard must have restored the default attribution…
            assert_eq!(comm.stats().current_step(), CommStep::Other);
            // …so traffic after the unwind lands on `Other`, not the
            // panicked step.
            let ghost_before = comm.stats().step_bytes(CommStep::GhostRefresh);
            let other_before = comm.stats().step_bytes(CommStep::Other);
            comm.all_gather(2u64);
            assert_eq!(
                comm.stats().step_bytes(CommStep::GhostRefresh),
                ghost_before
            );
            assert!(comm.stats().step_bytes(CommStep::Other) > other_before);
        });
    }

    #[test]
    fn with_step_nests_and_restores() {
        run(1, |comm| {
            comm.with_step(CommStep::Reduction, || {
                assert_eq!(comm.stats().current_step(), CommStep::Reduction);
                comm.with_step(CommStep::DeltaPush, || {
                    assert_eq!(comm.stats().current_step(), CommStep::DeltaPush);
                });
                assert_eq!(comm.stats().current_step(), CommStep::Reduction);
            });
            assert_eq!(comm.stats().current_step(), CommStep::Other);
        });
    }

    #[test]
    fn aggregate_stats_sums_counters_across_ranks() {
        let totals = run(4, |comm| {
            // Rank r sends r+1 eight-byte values to every peer.
            let bufs: Vec<Vec<u64>> = (0..comm.size())
                .map(|_| vec![0u64; comm.rank() + 1])
                .collect();
            comm.with_step(CommStep::DeltaPush, || comm.all_to_all_v(bufs));
            let local = comm.stats().snapshot();
            let total = comm.aggregate_stats();
            (local, total)
        });
        // Every rank computed the same aggregate.
        let agg = totals[0].1;
        for (_, t) in &totals {
            assert_eq!(*t, agg);
        }
        // The aggregate equals the manual sum of the local snapshots
        // taken at the same point (aggregation traffic excluded).
        let mut manual = StatsSnapshot::default();
        for (l, _) in &totals {
            manual.merge_max_time(l);
        }
        assert_eq!(agg.p2p_bytes, manual.p2p_bytes);
        assert_eq!(agg.p2p_messages, manual.p2p_messages);
        assert_eq!(agg.step_bytes, manual.step_bytes);
        // 4 ranks × 3 peers × (rank+1) u64s = 3·(1+2+3+4)·8 bytes.
        assert_eq!(agg.step_bytes_for(CommStep::DeltaPush), 3 * 10 * 8);
    }
}
