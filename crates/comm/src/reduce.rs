//! Reduction operators for the scalar collectives.

/// Reduction operator applied by [`crate::Comm::all_reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

/// Scalar types usable in reductions and scans.
///
/// Implemented for the numeric types the Louvain code actually reduces:
/// `u64` (counts, prefix sums), `i64`, `f64` (modularity), `usize`.
pub trait Reducible: Copy + Send + 'static {
    fn zero() -> Self;
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
    /// Accounted size in bytes for traffic statistics.
    fn wire_bytes() -> u64 {
        std::mem::size_of::<Self>() as u64
    }
}

macro_rules! impl_reducible_int {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            fn zero() -> Self { 0 }
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                }
            }
        }
    )*};
}

impl_reducible_int!(u32, u64, i64, usize);

impl Reducible for f64 {
    fn zero() -> Self {
        0.0
    }
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
        match op {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops() {
        assert_eq!(u64::combine(ReduceOp::Sum, 2, 3), 5);
        assert_eq!(u64::combine(ReduceOp::Min, 2, 3), 2);
        assert_eq!(u64::combine(ReduceOp::Max, 2, 3), 3);
        assert_eq!(i64::combine(ReduceOp::Sum, -2, 3), 1);
    }

    #[test]
    fn float_ops() {
        assert_eq!(f64::combine(ReduceOp::Sum, 0.5, 0.25), 0.75);
        assert_eq!(f64::combine(ReduceOp::Min, 0.5, 0.25), 0.25);
        assert_eq!(f64::combine(ReduceOp::Max, 0.5, 0.25), 0.5);
    }

    #[test]
    fn wire_bytes_match_size() {
        assert_eq!(u64::wire_bytes(), 8);
        assert_eq!(f64::wire_bytes(), 8);
        assert_eq!(u32::wire_bytes(), 4);
    }
}
