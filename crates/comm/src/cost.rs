//! α-β (latency-bandwidth) communication cost model.
//!
//! The evaluation machine of the paper is NERSC Cori (Cray Aries,
//! dragonfly). We cannot time a real interconnect, so every communication
//! call is *also* charged against this analytical model, fed by the exact
//! message/byte counts the runtime records. Experiments report both wall
//! time and modeled time; the modeled time is what reproduces the scaling
//! shape of the paper's Figures 3–4 when ranks are simulated by threads.

/// Analytical model: a point-to-point message of `n` bytes costs
/// `alpha + beta * n`; a collective over `p` ranks costs
/// `ceil(log2 p) * (alpha + beta * n_per_stage)` (binomial-tree shaped).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Per-byte transfer time in seconds (inverse bandwidth).
    pub beta: f64,
}

impl CostModel {
    /// Cray-Aries-like defaults: ~1.3 µs latency, ~9 GB/s effective
    /// per-rank bandwidth.
    pub const fn aries() -> Self {
        Self {
            alpha: 1.3e-6,
            beta: 1.0 / 9.0e9,
        }
    }

    /// A model with zero cost — for tests that only care about semantics.
    pub const fn free() -> Self {
        Self {
            alpha: 0.0,
            beta: 0.0,
        }
    }

    /// Cost of one point-to-point message of `bytes` bytes.
    pub fn p2p(&self, bytes: u64) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Cost of a tree-shaped collective over `p` ranks moving `bytes`
    /// bytes per stage (e.g. an all-reduce of a scalar, or a broadcast).
    pub fn collective(&self, p: usize, bytes: u64) -> f64 {
        let stages = (usize::BITS - p.saturating_sub(1).leading_zeros()).max(1) as f64;
        stages * (self.alpha + self.beta * bytes as f64)
    }

    /// Cost of an irregular all-to-all where this rank sends
    /// `sent_bytes` in `nmsgs` messages. Charged as the sum of the
    /// individual sends (the dominant term for the sparse exchanges in
    /// distributed Louvain).
    pub fn all_to_all(&self, nmsgs: u64, sent_bytes: u64) -> f64 {
        nmsgs as f64 * self.alpha + self.beta * sent_bytes as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::aries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_cost_is_affine() {
        let m = CostModel {
            alpha: 1.0,
            beta: 0.5,
        };
        assert_eq!(m.p2p(0), 1.0);
        assert_eq!(m.p2p(10), 6.0);
    }

    #[test]
    fn collective_scales_logarithmically() {
        let m = CostModel {
            alpha: 1.0,
            beta: 0.0,
        };
        assert_eq!(m.collective(1, 0), 1.0);
        assert_eq!(m.collective(2, 0), 1.0);
        assert_eq!(m.collective(4, 0), 2.0);
        assert_eq!(m.collective(8, 0), 3.0);
        assert_eq!(m.collective(5, 0), 3.0); // rounded up to 8
    }

    #[test]
    fn free_model_costs_nothing() {
        let m = CostModel::free();
        assert_eq!(m.p2p(1 << 30), 0.0);
        assert_eq!(m.collective(4096, 1 << 20), 0.0);
    }

    #[test]
    fn aries_defaults_are_sane() {
        let m = CostModel::aries();
        // One MB transfer should take on the order of 100 µs.
        let t = m.p2p(1 << 20);
        assert!(t > 1e-5 && t < 1e-3, "t = {t}");
    }
}
