//! # louvain-comm — an in-process message-passing runtime
//!
//! This crate simulates the MPI surface that the distributed Louvain
//! algorithm of Ghosh et al. (IPDPS 2018) requires, using one OS thread per
//! "rank" inside a single process:
//!
//! * typed, tagged point-to-point messages ([`Comm::send`] / [`Comm::recv`]),
//! * the collectives used by the paper's Algorithms 2–4:
//!   [`Comm::barrier`], [`Comm::all_reduce`], [`Comm::all_gather`],
//!   [`Comm::exscan_sum`], [`Comm::all_to_all_v`], [`Comm::gather_to_root`],
//!   [`Comm::broadcast`],
//! * exact per-rank traffic accounting ([`CommStats`]), and
//! * an α-β (latency/bandwidth) [`CostModel`] that converts the counted
//!   traffic into a modeled communication time, so that scaling *shape* can
//!   be studied on a machine with far fewer cores than ranks.
//!
//! The simulation preserves the property that makes distributed Louvain
//! semantically different from shared-memory Louvain: between two
//! synchronization points a rank only sees remote state from the most recent
//! exchange (the "community update lag" of Section III-B of the paper).
//!
//! ## Example
//!
//! ```
//! use louvain_comm::{run, ReduceOp};
//!
//! // Four ranks compute the sum of their ranks with an all-reduce.
//! let results = run(4, |comm| comm.all_reduce(comm.rank() as u64, ReduceOp::Sum));
//! assert_eq!(results, vec![6, 6, 6, 6]);
//! ```

mod blackboard;
mod comm;
mod cost;
mod envelope;
mod fault;
pub mod health;
mod reduce;
mod runtime;
mod stats;

pub use comm::{Comm, Tag};
pub use cost::CostModel;
pub use fault::{CrashRule, FaultKind, FaultPlan, FaultRule, HangRule, RankCrashed};
pub use health::{BackoffPolicy, HealthBoard, HealthConfig, RankHung};
pub use reduce::{ReduceOp, Reducible};
pub use runtime::{run, run_with, RunConfig};
pub use stats::{CommStats, CommStep, StatsSnapshot, TrafficKind, NUM_COMM_STEPS};
