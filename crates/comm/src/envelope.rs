//! Point-to-point transport: tagged, typed envelopes delivered through
//! per-rank mailboxes.
//!
//! Each rank owns one [`Mailbox`] (a crossbeam channel receiver plus a queue
//! of messages that arrived before anyone asked for them). Out-of-order
//! arrival is expected — MPI matches on `(source, tag)` and so do we.
//!
//! The mailbox also implements the receiver half of the fault-tolerance
//! protocol: envelopes carry a per-sender sequence number (`seq == 0`
//! means "clean run, no protocol"), a header checksum (payload
//! corruptions injected by a [`crate::FaultPlan`] are detected by the
//! mismatch and discarded), and a piggybacked heartbeat stamp that
//! feeds the [`crate::health::HealthBoard`]. Corrupt copies injected by
//! a truncation are discarded at intake, and stale duplicates (sequence
//! numbers at or below the last accepted one) are dropped, so
//! retransmissions and duplications are invisible to callers.
//!
//! Blocked receives run under the rank-health [`Watchdog`]: the
//! configured deadline, deadline extensions with adaptive backoff, and
//! finally a [`crate::RankHung`] declaration against the silent sender.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::fault::mix64;
use crate::health::{WaitCtx, Watchdog};

/// A single in-flight message: source rank, user tag, and payload.
/// (Byte accounting happens on the send side, in `CommStats`.)
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u32,
    /// Per-sender physical sequence number; `0` = clean transmission
    /// outside the fault protocol (never deduplicated).
    pub seq: u64,
    /// Set on copies mangled by an injected truncation; discarded at
    /// intake before matching.
    pub corrupt: bool,
    /// Header checksum over `(src, tag, seq)`; `0` outside the fault
    /// protocol. An injected payload corruption flips bits here and the
    /// receiver discards the copy on the mismatch.
    pub checksum: u64,
    /// Sender's latest heartbeat stamp, piggybacked for the health
    /// board (`0` = no stamp).
    pub beat: u64,
    /// Sender's Lamport clock at send time: unique per sender, folded
    /// into the receiver's clock on delivery. Matches the sender's
    /// `msg_send` trace event to the receiver's `msg_recv` event,
    /// giving the cross-rank happens-before edge `lens crit` walks.
    pub lamport: u64,
    /// Serialized payload size the sender charged to its byte counters
    /// (the payload itself travels as an in-memory `Box`, so the wire
    /// size must ride alongside for receive-side attribution).
    pub wire_bytes: u64,
    pub payload: Box<dyn Any + Send>,
}

/// The checksum a well-formed protocol envelope must carry.
pub(crate) fn expected_checksum(src: usize, tag: u32, seq: u64) -> u64 {
    mix64(seq ^ ((src as u64) << 32) ^ ((tag as u64) << 1) ^ 0x5EED_C0DE_F00D_CAFE)
}

impl Envelope {
    /// A clean envelope outside the fault protocol.
    pub fn clean(src: usize, tag: u32, payload: Box<dyn Any + Send>) -> Self {
        Self {
            src,
            tag,
            seq: 0,
            corrupt: false,
            checksum: 0,
            beat: 0,
            lamport: 0,
            wire_bytes: 0,
            payload,
        }
    }
}

/// Delivery bookkeeping shared by both receive paths: fold the
/// envelope's Lamport stamp into the local clock and record the
/// `msg_recv` edge event (a no-op unless tracing is enabled).
fn on_delivery(env: &Envelope, ctx: &WaitCtx<'_>) {
    ctx.stats.fold_lamport(env.lamport);
    if louvain_obs::enabled() {
        louvain_obs::instant(
            "msg_recv",
            "comm",
            vec![
                ("src", louvain_obs::ArgValue::from(env.src)),
                ("dst", louvain_obs::ArgValue::from(ctx.rank)),
                (
                    "step",
                    louvain_obs::ArgValue::from(ctx.stats.current_step().label()),
                ),
                ("lamport", louvain_obs::ArgValue::from(env.lamport)),
                ("bytes", louvain_obs::ArgValue::from(env.wire_bytes)),
            ],
        );
    }
}

/// Receiving side of a rank's channel plus the "unexpected message queue".
pub(crate) struct Mailbox {
    rx: Receiver<Envelope>,
    /// Messages received from the channel that did not match the
    /// `(src, tag)` a caller was waiting for.
    pending: Vec<Envelope>,
    /// Set when any rank in the job panicked; blocked receives abort.
    poison: Arc<AtomicBool>,
    /// Highest accepted sequence number per sender (fault protocol).
    last_seq: Vec<u64>,
}

impl Mailbox {
    pub fn new(rx: Receiver<Envelope>, poison: Arc<AtomicBool>, p: usize) -> Self {
        Self {
            rx,
            pending: Vec::new(),
            poison,
            last_seq: vec![0; p],
        }
    }

    /// Intake filter: fold in the piggybacked heartbeat, then discard
    /// corrupt copies (truncation flag or checksum mismatch) and stale
    /// duplicates.
    fn admit(&mut self, env: Envelope, ctx: &WaitCtx<'_>) -> Option<Envelope> {
        ctx.board.observe(env.src, env.beat);
        if env.seq != 0 {
            if env.checksum != expected_checksum(env.src, env.tag, env.seq) {
                ctx.stats.record_checksum_reject();
                louvain_obs::counter_add("comm.checksum_rejects", 1);
                return None;
            }
            if env.corrupt || env.seq <= self.last_seq[env.src] {
                return None;
            }
            self.last_seq[env.src] = env.seq;
        }
        Some(env)
    }

    /// Blocking receive of the next envelope matching `(src, tag)`,
    /// under the watchdog ladder described in the module docs.
    ///
    /// Panics if the job is poisoned (another rank panicked), with a
    /// typed [`crate::RankHung`] once the ladder declares the sender
    /// hung, or with a plain timeout string when the watchdog is
    /// disabled and the hard deadline passes.
    pub fn recv_matching(&mut self, src: usize, tag: u32, ctx: &WaitCtx<'_>) -> Envelope {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.src == src && e.tag == tag)
        {
            // `remove`, not `swap_remove`: two buffered messages from the
            // same (src, tag) stream must be delivered in arrival order,
            // or consecutive all_to_all_v rounds would get swapped.
            // Buffered = already arrived = zero blocked wait.
            let env = self.pending.remove(pos);
            on_delivery(&env, ctx);
            return env;
        }
        // From here the caller is genuinely blocked: everything until
        // the matching envelope arrives is *wait* (idle, straggler-
        // bound), charged to the current step's wait counter.
        let wait_start = std::time::Instant::now();
        let mut dog = Watchdog::new(ctx);
        loop {
            dog.alive();
            match self.rx.recv_timeout(dog.tick()) {
                Ok(env) => {
                    let Some(env) = self.admit(env, ctx) else {
                        continue;
                    };
                    if env.src == src && env.tag == tag {
                        let waited = wait_start.elapsed().as_nanos() as u64;
                        ctx.stats.record_wait_nanos(waited);
                        louvain_obs::counter_add("wait.recv_ns", waited);
                        on_delivery(&env, ctx);
                        return env;
                    }
                    self.pending.push(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.poison.load(Ordering::Relaxed) {
                        panic!("communicator poisoned: a peer rank panicked");
                    }
                    if dog.due() {
                        dog.observe(&[src]);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!(
                        "communicator channel disconnected while waiting for rank {src} tag {tag}"
                    );
                }
            }
        }
    }

    /// Number of buffered (unexpected) messages; used by shutdown checks.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Sending endpoints to every rank in the job (index = destination rank).
pub(crate) type Senders = Arc<Vec<Sender<Envelope>>>;
