//! Point-to-point transport: tagged, typed envelopes delivered through
//! per-rank mailboxes.
//!
//! Each rank owns one [`Mailbox`] (a crossbeam channel receiver plus a queue
//! of messages that arrived before anyone asked for them). Out-of-order
//! arrival is expected — MPI matches on `(source, tag)` and so do we.
//!
//! The mailbox also implements the receiver half of the fault-tolerance
//! protocol: envelopes carry a per-sender sequence number (`seq == 0`
//! means "clean run, no protocol"), corrupt copies injected by a
//! [`crate::FaultPlan`] truncation are discarded at intake, and stale
//! duplicates (sequence numbers at or below the last accepted one) are
//! dropped, so retransmissions and duplications are invisible to callers.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

/// A single in-flight message: source rank, user tag, and payload.
/// (Byte accounting happens on the send side, in `CommStats`.)
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u32,
    /// Per-sender physical sequence number; `0` = clean transmission
    /// outside the fault protocol (never deduplicated).
    pub seq: u64,
    /// Set on copies mangled by an injected truncation; discarded at
    /// intake before matching.
    pub corrupt: bool,
    pub payload: Box<dyn Any + Send>,
}

impl Envelope {
    /// A clean envelope outside the fault protocol.
    pub fn clean(src: usize, tag: u32, payload: Box<dyn Any + Send>) -> Self {
        Self {
            src,
            tag,
            seq: 0,
            corrupt: false,
            payload,
        }
    }
}

/// Receiving side of a rank's channel plus the "unexpected message queue".
pub(crate) struct Mailbox {
    rx: Receiver<Envelope>,
    /// Messages received from the channel that did not match the
    /// `(src, tag)` a caller was waiting for.
    pending: Vec<Envelope>,
    /// Set when any rank in the job panicked; blocked receives abort.
    poison: Arc<AtomicBool>,
    /// Highest accepted sequence number per sender (fault protocol).
    last_seq: Vec<u64>,
    /// How long a receive may block before declaring the job wedged.
    deadline: Duration,
}

impl Mailbox {
    pub fn new(
        rx: Receiver<Envelope>,
        poison: Arc<AtomicBool>,
        p: usize,
        deadline: Duration,
    ) -> Self {
        Self {
            rx,
            pending: Vec::new(),
            poison,
            last_seq: vec![0; p],
            deadline,
        }
    }

    /// Intake filter: discard corrupt copies and stale duplicates.
    fn admit(&mut self, env: Envelope) -> Option<Envelope> {
        if env.seq != 0 {
            if env.corrupt || env.seq <= self.last_seq[env.src] {
                return None;
            }
            self.last_seq[env.src] = env.seq;
        }
        Some(env)
    }

    /// Blocking receive of the next envelope matching `(src, tag)`.
    ///
    /// Panics if the job is poisoned (another rank panicked) or if
    /// nothing matching arrives within the configured deadline, so the
    /// whole run fails loudly instead of deadlocking.
    pub fn recv_matching(&mut self, src: usize, tag: u32) -> Envelope {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.src == src && e.tag == tag)
        {
            // `remove`, not `swap_remove`: two buffered messages from the
            // same (src, tag) stream must be delivered in arrival order,
            // or consecutive all_to_all_v rounds would get swapped.
            return self.pending.remove(pos);
        }
        let started = Instant::now();
        loop {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(env) => {
                    let Some(env) = self.admit(env) else { continue };
                    if env.src == src && env.tag == tag {
                        return env;
                    }
                    self.pending.push(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.poison.load(Ordering::Relaxed) {
                        panic!("communicator poisoned: a peer rank panicked");
                    }
                    if started.elapsed() > self.deadline {
                        panic!(
                            "receive timed out after {:?} waiting for a message from rank {src} tag {tag} (lost message or deadlock)",
                            self.deadline
                        );
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!(
                        "communicator channel disconnected while waiting for rank {src} tag {tag}"
                    );
                }
            }
        }
    }

    /// Number of buffered (unexpected) messages; used by shutdown checks.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Sending endpoints to every rank in the job (index = destination rank).
pub(crate) type Senders = Arc<Vec<Sender<Envelope>>>;
