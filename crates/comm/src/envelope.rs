//! Point-to-point transport: tagged, typed envelopes delivered through
//! per-rank mailboxes.
//!
//! Each rank owns one [`Mailbox`] (a crossbeam channel receiver plus a queue
//! of messages that arrived before anyone asked for them). Out-of-order
//! arrival is expected — MPI matches on `(source, tag)` and so do we.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

/// A single in-flight message: source rank, user tag, and payload.
/// (Byte accounting happens on the send side, in `CommStats`.)
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u32,
    pub payload: Box<dyn Any + Send>,
}

/// Receiving side of a rank's channel plus the "unexpected message queue".
pub(crate) struct Mailbox {
    rx: Receiver<Envelope>,
    /// Messages received from the channel that did not match the
    /// `(src, tag)` a caller was waiting for.
    pending: Vec<Envelope>,
    /// Set when any rank in the job panicked; blocked receives abort.
    poison: Arc<AtomicBool>,
}

impl Mailbox {
    pub fn new(rx: Receiver<Envelope>, poison: Arc<AtomicBool>) -> Self {
        Self {
            rx,
            pending: Vec::new(),
            poison,
        }
    }

    /// Blocking receive of the next envelope matching `(src, tag)`.
    ///
    /// Panics if the job is poisoned (another rank panicked) so the whole
    /// run fails loudly instead of deadlocking.
    pub fn recv_matching(&mut self, src: usize, tag: u32) -> Envelope {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.src == src && e.tag == tag)
        {
            // `remove`, not `swap_remove`: two buffered messages from the
            // same (src, tag) stream must be delivered in arrival order,
            // or consecutive all_to_all_v rounds would get swapped.
            return self.pending.remove(pos);
        }
        loop {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(env) => {
                    if env.src == src && env.tag == tag {
                        return env;
                    }
                    self.pending.push(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.poison.load(Ordering::Relaxed) {
                        panic!("communicator poisoned: a peer rank panicked");
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!(
                        "communicator channel disconnected while waiting for rank {src} tag {tag}"
                    );
                }
            }
        }
    }

    /// Number of buffered (unexpected) messages; used by shutdown checks.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Sending endpoints to every rank in the job (index = destination rank).
pub(crate) type Senders = Arc<Vec<Sender<Envelope>>>;
