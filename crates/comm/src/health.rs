//! Rank-health watchdog: deadline-aware waits, adaptive retry/backoff,
//! and heartbeat-based hang detection.
//!
//! Every blocking wait in the communicator (mailbox receives and
//! blackboard collectives) runs under a [`Watchdog`] that escalates
//! through a ladder: *deadline expires* → *consult heartbeats* →
//! *retry with exponential backoff* → *declare the silent rank hung* by
//! panicking with a [`RankHung`] payload. The resilient driver in
//! `louvain-dist` catches that payload exactly like a
//! [`crate::RankCrashed`] and restores from the newest checkpoint.
//!
//! Heartbeats are cheap: every rank stamps a shared [`HealthBoard`]
//! slot (one relaxed atomic store) at every communication operation and
//! on every poll tick while blocked, and every protocol envelope
//! piggybacks the sender's latest stamp. A rank that is merely *slow*
//! (stalled in compute, or waiting on a third rank) keeps beating and is
//! recorded as a straggler — only a rank whose heartbeat goes stale past
//! the deadline is declared hung.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::fault::mix64;
use crate::stats::{CommStats, CommStep, NUM_COMM_STEPS};

/// Exponential backoff with deterministic jitter.
///
/// The delay for attempt `a` is `base · 2^a` plus a jitter of up to 25%
/// of that value, clamped to `cap`. The jitter is a pure function of
/// `(seed, salt, attempt)`, so a fixed seed reproduces the exact same
/// delay sequence — the property the fault matrix and the proptests
/// rely on. Delays are monotone non-decreasing in `attempt`: the
/// exponential term doubles while the jitter adds strictly less than
/// one doubling, and once the cap is reached every later delay equals
/// the cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay of attempt 0 (before jitter).
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Jitter seed; same seed ⇒ same delays.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_micros(50),
            cap: Duration::from_millis(5),
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry `attempt` (0-based) of the logical
    /// operation identified by `salt`. Deterministic; see the type docs
    /// for the monotonicity/cap/jitter contract.
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.base.as_nanos() as u64;
        let cap = self.cap.as_nanos() as u64;
        let exp = base.saturating_shl(attempt.min(63));
        // Jitter in [0, exp/4): strictly less than the next doubling,
        // which is what keeps the sequence monotone non-decreasing.
        let h = mix64(
            self.seed
                ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (attempt as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        let jitter = if exp >= 4 { h % (exp / 4) } else { 0 };
        Duration::from_nanos(exp.saturating_add(jitter).min(cap))
    }
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}
impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if self == 0 {
            0
        } else if rhs >= self.leading_zeros() {
            u64::MAX
        } else {
            self << rhs
        }
    }
}

/// Tuning for the rank-health watchdog, carried by
/// [`crate::RunConfig`].
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Master switch. When off, blocked waits fall back to the legacy
    /// behaviour: a single hard deadline that panics with a plain
    /// string (never a recoverable [`RankHung`]).
    pub enabled: bool,
    /// How long one blocked wait may go without progress before the
    /// watchdog escalates (the per-window deadline of the ladder).
    pub deadline: Duration,
    /// Deadline extensions (with backoff) granted to a silent peer
    /// before it is declared hung; also the default retransmission cap
    /// for injected message faults.
    pub max_retries: u32,
    /// Backoff between deadline extensions and retransmissions.
    pub backoff: BackoffPolicy,
    /// Per-[`CommStep`] overrides of `max_retries` (index =
    /// `CommStep::index()`); `None` = use the global cap.
    pub step_max_retries: [Option<u32>; NUM_COMM_STEPS],
    /// Hard liveness ceiling: a wait that exceeds `deadline ×
    /// liveness_factor` is declared hung even if the suspects are still
    /// heartbeating (catches application-level deadlocks where every
    /// rank is alive but none can progress).
    pub liveness_factor: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            deadline: Duration::from_secs(30),
            max_retries: 3,
            backoff: BackoffPolicy::default(),
            step_max_retries: [None; NUM_COMM_STEPS],
            liveness_factor: 8,
        }
    }
}

impl HealthConfig {
    /// A config with the watchdog ladder switched off (legacy
    /// behaviour); used by the bench harness for the on/off A-B rows.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// The retry cap in effect for `step`.
    pub fn retries_for(&self, step: CommStep) -> u32 {
        self.step_max_retries[step.index()].unwrap_or(self.max_retries)
    }

    /// How long an *injected* hang sleeps before the hung rank declares
    /// itself dead (simulating an external supervisor kill). Longer
    /// than the peers' full detection ladder so that in multi-rank jobs
    /// a peer normally wins; in single-rank jobs this is the only
    /// detector.
    pub fn hang_self_timeout(&self) -> Duration {
        self.deadline * (self.max_retries + 2)
    }

    /// Hard ceiling on one blocked wait (see `liveness_factor`).
    pub fn liveness_ceiling(&self) -> Duration {
        self.deadline * self.liveness_factor.max(1)
    }
}

/// Panic payload carried out of a rank thread when the watchdog (or an
/// injected hang's self-timeout) declares a rank hung. The resilient
/// driver downcasts it and recovers exactly like a [`crate::RankCrashed`].
#[derive(Debug, Clone, Copy)]
pub struct RankHung {
    /// The rank declared hung.
    pub rank: usize,
    /// The rank that made the declaration (== `rank` for an injected
    /// hang's self-timeout).
    pub detector: usize,
    /// Fault epoch (Louvain phase) the detector was in.
    pub phase: u64,
    /// Comm-op index the detector was blocked at.
    pub op: u64,
    /// Step attribution of the blocked wait.
    pub step: CommStep,
    /// Total time the detector had been blocked.
    pub waited_ms: u64,
}

impl std::fmt::Display for RankHung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} declared hung by rank {} after {} ms blocked in {} (comm op {} of phase {})",
            self.rank,
            self.detector,
            self.waited_ms,
            self.step.label(),
            self.op,
            self.phase
        )
    }
}

/// Shared per-rank heartbeat stamps (nanoseconds since job start, via
/// one relaxed atomic per rank). Ranks stamp their own slot on every
/// comm op and every blocked poll tick; envelope intake folds in the
/// stamp piggybacked by the sender.
pub struct HealthBoard {
    origin: Instant,
    beats: Vec<AtomicU64>,
}

impl HealthBoard {
    pub fn new(p: usize) -> Self {
        let board = Self {
            origin: Instant::now(),
            beats: (0..p).map(|_| AtomicU64::new(0)).collect(),
        };
        for r in 0..p {
            board.beat(r);
        }
        board
    }

    fn now_nanos(&self) -> u64 {
        // +1 so a stamp of 0 can only mean "never" (and new() stamps
        // every slot anyway).
        (self.origin.elapsed().as_nanos() as u64).saturating_add(1)
    }

    /// Stamp `rank`'s slot with "now"; returns the stamp for envelope
    /// piggybacking.
    pub fn beat(&self, rank: usize) -> u64 {
        let t = self.now_nanos();
        self.beats[rank].fetch_max(t, Ordering::Relaxed);
        t
    }

    /// Fold in a stamp received on the wire (monotone max).
    pub fn observe(&self, rank: usize, stamp: u64) {
        if stamp != 0 {
            self.beats[rank].fetch_max(stamp, Ordering::Relaxed);
        }
    }

    /// Time since `rank` last heartbeat.
    pub fn age(&self, rank: usize) -> Duration {
        let last = self.beats[rank].load(Ordering::Relaxed);
        let now = self.now_nanos();
        Duration::from_nanos(now.saturating_sub(last))
    }
}

/// Identity of one blocked wait, for watchdog bookkeeping and the
/// [`RankHung`] payload.
pub(crate) struct WaitCtx<'a> {
    pub cfg: &'a HealthConfig,
    pub board: &'a HealthBoard,
    pub stats: &'a CommStats,
    pub rank: usize,
    pub phase: u64,
    pub op: u64,
}

/// The escalation ladder of one blocked wait: `deadline → (straggler
/// extension | retry with backoff) → RankHung`. Created per wait;
/// callers invoke [`Watchdog::alive`] every poll tick and
/// [`Watchdog::observe`] with the current suspect set once
/// [`Watchdog::due`] reports the window expired.
pub(crate) struct Watchdog<'a, 'c> {
    ctx: &'c WaitCtx<'a>,
    started: Instant,
    window: Instant,
    extensions: u32,
}

impl<'a, 'c> Watchdog<'a, 'c> {
    pub fn new(ctx: &'c WaitCtx<'a>) -> Self {
        let now = Instant::now();
        Self {
            ctx,
            started: now,
            window: now,
            extensions: 0,
        }
    }

    /// Poll interval for the underlying timed wait: fine-grained enough
    /// to resolve small deadlines, never coarser than 50 ms.
    pub fn tick(&self) -> Duration {
        (self.ctx.cfg.deadline / 4).clamp(Duration::from_millis(1), Duration::from_millis(50))
    }

    /// Heartbeat this rank's own slot (blocked-but-alive ≠ hung).
    pub fn alive(&self) {
        self.ctx.board.beat(self.ctx.rank);
    }

    /// Whether the current deadline window has expired and
    /// [`Watchdog::observe`] should be consulted.
    pub fn due(&self) -> bool {
        self.window.elapsed() >= self.ctx.cfg.deadline
    }

    /// Escalate one expired window. `suspects` are the ranks this wait
    /// is blocked on; the subset whose heartbeats are stale past the
    /// deadline are candidates for a hung declaration. Panics with
    /// [`RankHung`] when the ladder is exhausted; otherwise extends the
    /// window (recording a straggler or a backed-off retry) and returns.
    pub fn observe(&mut self, suspects: &[usize]) {
        let cfg = self.ctx.cfg;
        let waited = self.started.elapsed();
        if !cfg.enabled {
            // Legacy behaviour: one hard deadline, plain string panic.
            if waited > cfg.deadline {
                panic!(
                    "receive timed out after {:?} waiting on ranks {:?} (lost message or deadlock)",
                    cfg.deadline, suspects
                );
            }
            return;
        }
        let step = self.ctx.stats.current_step();
        self.ctx.stats.record_wd_timeout();
        louvain_obs::counter_add("wd_timeouts", 1);
        let hang = |suspect: usize| RankHung {
            rank: suspect,
            detector: self.ctx.rank,
            phase: self.ctx.phase,
            op: self.ctx.op,
            step,
            waited_ms: waited.as_millis() as u64,
        };
        let stale: Option<usize> = suspects
            .iter()
            .copied()
            .filter(|&s| self.ctx.board.age(s) > cfg.deadline)
            .min();
        match stale {
            None => {
                // Everyone we are waiting on is still heartbeating:
                // straggler, not hang. Extend the window for free, but
                // never beyond the liveness ceiling (live-but-deadlocked
                // ranks must not wedge the job forever).
                self.ctx.stats.record_wd_straggler();
                louvain_obs::counter_add("wd_stragglers", 1);
                if waited > cfg.liveness_ceiling() {
                    let suspect = suspects.iter().copied().min().unwrap_or(self.ctx.rank);
                    std::panic::panic_any(hang(suspect));
                }
            }
            Some(suspect) => {
                if self.extensions >= cfg.retries_for(step) {
                    std::panic::panic_any(hang(suspect));
                }
                self.extensions += 1;
                self.ctx.stats.record_wd_retry();
                louvain_obs::counter_add("wd_retries", 1);
                let salt = (self.ctx.rank as u64) << 40 ^ self.ctx.phase << 20 ^ self.ctx.op;
                let delay = cfg.backoff.delay(self.extensions - 1, salt);
                self.ctx.stats.record_backoff(delay);
                louvain_obs::hist_observe("wd_backoff_us", delay.as_micros() as u64);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
        self.window = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_monotone() {
        let p = BackoffPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(50),
            seed: 42,
        };
        for salt in [0u64, 7, 12345] {
            let mut prev = Duration::ZERO;
            for attempt in 0..20 {
                let d = p.delay(attempt, salt);
                assert_eq!(d, p.delay(attempt, salt), "same inputs, same delay");
                assert!(d >= prev, "attempt {attempt}: {d:?} < {prev:?}");
                assert!(d <= p.cap, "cap violated at attempt {attempt}");
                prev = d;
            }
            assert_eq!(p.delay(19, salt), p.cap, "tail saturates at the cap");
        }
    }

    #[test]
    fn backoff_jitter_stays_within_a_quarter_of_the_exponential() {
        let p = BackoffPolicy {
            base: Duration::from_micros(64),
            cap: Duration::from_secs(10),
            seed: 9,
        };
        for attempt in 0..8u32 {
            let exp = 64_000u64 << attempt; // nanos
            for salt in 0..100u64 {
                let d = p.delay(attempt, salt).as_nanos() as u64;
                assert!(d >= exp, "delay below the exponential floor");
                assert!(d < exp + exp / 4 + 1, "jitter above 25% at {attempt}");
            }
        }
    }

    #[test]
    fn backoff_zero_base_yields_zero_delays() {
        let p = BackoffPolicy {
            base: Duration::ZERO,
            cap: Duration::from_secs(1),
            seed: 1,
        };
        assert_eq!(p.delay(0, 3), Duration::ZERO);
        assert_eq!(p.delay(17, 3), Duration::ZERO);
    }

    #[test]
    fn backoff_huge_attempt_saturates_at_cap_without_overflow() {
        let p = BackoffPolicy::default();
        assert_eq!(p.delay(u32::MAX, 0), p.cap);
        assert_eq!(p.delay(63, 0), p.cap);
    }

    #[test]
    fn health_board_tracks_freshness() {
        let b = HealthBoard::new(2);
        assert!(b.age(0) < Duration::from_millis(100));
        std::thread::sleep(Duration::from_millis(20));
        b.beat(1);
        assert!(b.age(1) < Duration::from_millis(10));
        assert!(b.age(0) >= Duration::from_millis(20));
        // Piggybacked stamps fold in monotonically.
        let s = b.beat(0);
        b.observe(1, s);
        assert!(b.age(1) < Duration::from_millis(10));
        b.observe(1, 1); // stale stamp: ignored by the max
        assert!(b.age(1) < Duration::from_millis(10));
    }

    #[test]
    fn per_step_retry_caps_override_the_global_cap() {
        let mut cfg = HealthConfig {
            max_retries: 5,
            ..HealthConfig::default()
        };
        cfg.step_max_retries[CommStep::Reduction.index()] = Some(1);
        assert_eq!(cfg.retries_for(CommStep::Reduction), 1);
        assert_eq!(cfg.retries_for(CommStep::GhostRefresh), 5);
    }
}
