//! A reusable all-gather rendezvous shared by all ranks of a job.
//!
//! Every collective except `all_to_all_v` is built on one primitive: each
//! rank deposits a value, waits until all `p` values are present, reads the
//! full board, and the last reader resets the board for the next round.
//! A generation counter plus a single condvar make the board safely
//! reusable back-to-back (a fast rank cannot start round `g+1` while a slow
//! rank is still reading round `g`).

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::health::{WaitCtx, Watchdog};

struct State {
    generation: u64,
    slots: Vec<Option<Box<dyn Any + Send>>>,
    filled: usize,
    read: usize,
}

/// Shared rendezvous board; one per job, `Arc`-shared across ranks.
pub(crate) struct Blackboard {
    state: Mutex<State>,
    cv: Condvar,
    poison: Arc<AtomicBool>,
    p: usize,
}

impl Blackboard {
    pub fn new(p: usize, poison: Arc<AtomicBool>) -> Self {
        Self {
            state: Mutex::new(State {
                generation: 0,
                slots: (0..p).map(|_| None).collect(),
                filled: 0,
                read: 0,
            }),
            cv: Condvar::new(),
            poison,
            p,
        }
    }

    fn check_poison(&self) {
        if self.poison.load(Ordering::Relaxed) {
            panic!("communicator poisoned: a peer rank panicked");
        }
    }

    /// Deposit `value` for `rank`, wait for all ranks, then map the complete
    /// board through `read`. Returns `read`'s result once every rank of the
    /// current generation has deposited.
    #[cfg(test)]
    pub fn exchange<T, R, F>(&self, rank: usize, value: T, read: F) -> R
    where
        T: Send + 'static,
        F: FnOnce(&mut [Option<Box<dyn Any + Send>>]) -> R,
    {
        self.exchange_watched(rank, value, read, None)
    }

    /// [`Blackboard::exchange`] under the rank-health watchdog: while
    /// blocked waiting for the board to fill, the deadline ladder runs
    /// against the ranks that have not deposited yet (`watch = None`
    /// falls back to plain 50 ms poison-check polling).
    pub fn exchange_watched<T, R, F>(
        &self,
        rank: usize,
        value: T,
        read: F,
        watch: Option<&WaitCtx<'_>>,
    ) -> R
    where
        T: Send + 'static,
        F: FnOnce(&mut [Option<Box<dyn Any + Send>>]) -> R,
    {
        let mut dog = watch.map(Watchdog::new);
        let tick = dog
            .as_ref()
            .map_or(Duration::from_millis(50), Watchdog::tick);
        let mut s = self.state.lock();
        // Wait out the read phase of the previous round. Rare and
        // short (peers are inside `read`, not hung), so the watchdog
        // only heartbeats here; escalation happens in the fill wait.
        while s.filled == self.p {
            self.cv.wait_for(&mut s, tick);
            self.check_poison();
            if let Some(d) = &dog {
                d.alive();
            }
        }
        debug_assert!(s.slots[rank].is_none(), "rank {rank} double deposit");
        s.slots[rank] = Some(Box::new(value));
        s.filled += 1;
        let gen = s.generation;
        if s.filled == self.p {
            self.cv.notify_all();
        }
        // Everything from here until the board fills is *wait* (idle,
        // blocked on slower ranks), charged to the current comm step.
        // Timed only when actually entered: the last depositor of a
        // round never blocks and records zero wait.
        let fill_wait = (s.generation == gen && s.filled < self.p).then(std::time::Instant::now);
        while s.generation == gen && s.filled < self.p {
            self.cv.wait_for(&mut s, tick);
            self.check_poison();
            if let Some(d) = &mut dog {
                d.alive();
                if d.due() && s.generation == gen && s.filled < self.p {
                    // The ranks still missing from this round are the
                    // suspects; stale heartbeats among them get the
                    // ladder, live ones count as stragglers.
                    let missing: Vec<usize> = s
                        .slots
                        .iter()
                        .enumerate()
                        .filter(|(_, slot)| slot.is_none())
                        .map(|(i, _)| i)
                        .collect();
                    d.observe(&missing);
                }
            }
        }
        if let (Some(start), Some(ctx)) = (fill_wait, watch) {
            let waited = start.elapsed().as_nanos() as u64;
            ctx.stats.record_wait_nanos(waited);
            louvain_obs::counter_add("wait.collective_ns", waited);
        }
        let out = read(&mut s.slots);
        s.read += 1;
        if s.read == self.p {
            for slot in s.slots.iter_mut() {
                *slot = None;
            }
            s.filled = 0;
            s.read = 0;
            s.generation += 1;
            self.cv.notify_all();
        }
        out
    }

    /// Wake all waiters so they observe the poison flag.
    pub fn poison_notify(&self) {
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exchange_sums_across_threads() {
        let p = 4;
        let bb = Arc::new(Blackboard::new(p, Arc::new(AtomicBool::new(false))));
        let handles: Vec<_> = (0..p)
            .map(|r| {
                let bb = Arc::clone(&bb);
                std::thread::spawn(move || {
                    let mut total = 0u64;
                    for round in 0..100u64 {
                        total += bb.exchange(r, r as u64 + round, |slots| {
                            slots
                                .iter()
                                .map(|s| *s.as_ref().unwrap().downcast_ref::<u64>().unwrap())
                                .sum::<u64>()
                        });
                    }
                    total
                })
            })
            .collect();
        let results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every round the board holds 0+1+2+3 + 4*round.
        let expected: u64 = (0..100).map(|round| 6 + 4 * round).sum();
        for r in results {
            assert_eq!(r, expected);
        }
    }
}
