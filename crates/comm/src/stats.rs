//! Per-rank communication accounting.
//!
//! Every `Comm` method updates these counters; experiment harnesses read
//! them to report communication volume and to feed the [`CostModel`]
//! (the HPCToolkit-style breakdown of Section V-A of the paper is derived
//! from exactly these numbers).

use std::cell::Cell;

/// Classification of recorded traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficKind {
    /// Point-to-point sends (including the sends inside `all_to_all_v`).
    PointToPoint,
    /// Barriers, reductions, scans, gathers, broadcasts.
    Collective,
}

/// Mutable per-rank counters. Each rank owns its `CommStats` exclusively
/// (interior mutability via `Cell` keeps the `Comm` API `&self`).
#[derive(Debug, Default)]
pub struct CommStats {
    p2p_messages: Cell<u64>,
    p2p_bytes: Cell<u64>,
    collective_calls: Cell<u64>,
    collective_bytes: Cell<u64>,
    /// Modeled communication time (seconds) accumulated via the cost model.
    modeled_seconds: Cell<f64>,
}

impl CommStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_p2p(&self, bytes: u64, modeled: f64) {
        self.record_p2p_batch(1, bytes, modeled);
    }

    pub(crate) fn record_p2p_batch(&self, nmsgs: u64, bytes: u64, modeled: f64) {
        self.p2p_messages.set(self.p2p_messages.get() + nmsgs);
        self.p2p_bytes.set(self.p2p_bytes.get() + bytes);
        self.modeled_seconds.set(self.modeled_seconds.get() + modeled);
    }

    pub(crate) fn record_collective(&self, bytes: u64, modeled: f64) {
        self.collective_calls.set(self.collective_calls.get() + 1);
        self.collective_bytes.set(self.collective_bytes.get() + bytes);
        self.modeled_seconds.set(self.modeled_seconds.get() + modeled);
    }

    /// Number of point-to-point messages sent by this rank.
    pub fn p2p_messages(&self) -> u64 {
        self.p2p_messages.get()
    }

    /// Bytes sent point-to-point by this rank.
    pub fn p2p_bytes(&self) -> u64 {
        self.p2p_bytes.get()
    }

    /// Number of collective operations this rank participated in.
    pub fn collective_calls(&self) -> u64 {
        self.collective_calls.get()
    }

    /// Bytes this rank contributed to collectives.
    pub fn collective_bytes(&self) -> u64 {
        self.collective_bytes.get()
    }

    /// Modeled communication time in seconds (α-β model).
    pub fn modeled_seconds(&self) -> f64 {
        self.modeled_seconds.get()
    }

    /// Snapshot as a plain-old-data summary (for aggregation across ranks).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            p2p_messages: self.p2p_messages(),
            p2p_bytes: self.p2p_bytes(),
            collective_calls: self.collective_calls(),
            collective_bytes: self.collective_bytes(),
            modeled_seconds: self.modeled_seconds(),
        }
    }
}

/// Plain-old-data copy of [`CommStats`], summable across ranks.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    pub p2p_messages: u64,
    pub p2p_bytes: u64,
    pub collective_calls: u64,
    pub collective_bytes: u64,
    pub modeled_seconds: f64,
}

impl StatsSnapshot {
    /// Element-wise accumulation (modeled time takes the max, matching the
    /// bulk-synchronous critical path; counters sum).
    pub fn merge_max_time(&mut self, other: &StatsSnapshot) {
        self.p2p_messages += other.p2p_messages;
        self.p2p_bytes += other.p2p_bytes;
        self.collective_calls += other.collective_calls;
        self.collective_bytes += other.collective_bytes;
        self.modeled_seconds = self.modeled_seconds.max(other.modeled_seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = CommStats::new();
        s.record_p2p(100, 0.5);
        s.record_p2p(50, 0.25);
        s.record_collective(8, 0.1);
        assert_eq!(s.p2p_messages(), 2);
        assert_eq!(s.p2p_bytes(), 150);
        assert_eq!(s.collective_calls(), 1);
        assert_eq!(s.collective_bytes(), 8);
        assert!((s.modeled_seconds() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn snapshot_merge_takes_time_max_and_counter_sum() {
        let mut a = StatsSnapshot { p2p_messages: 1, p2p_bytes: 10, collective_calls: 2, collective_bytes: 4, modeled_seconds: 0.5 };
        let b = StatsSnapshot { p2p_messages: 3, p2p_bytes: 30, collective_calls: 1, collective_bytes: 8, modeled_seconds: 0.2 };
        a.merge_max_time(&b);
        assert_eq!(a.p2p_messages, 4);
        assert_eq!(a.p2p_bytes, 40);
        assert_eq!(a.collective_calls, 3);
        assert_eq!(a.collective_bytes, 12);
        assert_eq!(a.modeled_seconds, 0.5);
    }
}
