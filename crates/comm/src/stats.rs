//! Per-rank communication accounting.
//!
//! Every `Comm` method updates these counters; experiment harnesses read
//! them to report communication volume and to feed the [`CostModel`]
//! (the HPCToolkit-style breakdown of Section V-A of the paper is derived
//! from exactly these numbers).

use std::cell::Cell;

/// Classification of recorded traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficKind {
    /// Point-to-point sends (including the sends inside `all_to_all_v`).
    PointToPoint,
    /// Barriers, reductions, scans, gathers, broadcasts.
    Collective,
}

/// The algorithmic step traffic is attributed to. The distributed
/// Louvain iteration has four communication steps per sweep (ghost
/// community refresh, remote-community a_c pull, delta push to owners,
/// and the modularity reduction); checkpoint manifest gathers land in
/// `Checkpoint`; everything else (setup, graph rebuild, result
/// gathering) lands in `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommStep {
    GhostRefresh,
    CommunityPull,
    DeltaPush,
    Reduction,
    Checkpoint,
    #[default]
    Other,
}

/// Number of [`CommStep`] variants (array-indexed counters).
pub const NUM_COMM_STEPS: usize = 6;

impl CommStep {
    pub const ALL: [CommStep; NUM_COMM_STEPS] = [
        CommStep::GhostRefresh,
        CommStep::CommunityPull,
        CommStep::DeltaPush,
        CommStep::Reduction,
        CommStep::Checkpoint,
        CommStep::Other,
    ];

    pub fn index(self) -> usize {
        match self {
            CommStep::GhostRefresh => 0,
            CommStep::CommunityPull => 1,
            CommStep::DeltaPush => 2,
            CommStep::Reduction => 3,
            CommStep::Checkpoint => 4,
            CommStep::Other => 5,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            CommStep::GhostRefresh => "ghost_refresh",
            CommStep::CommunityPull => "community_pull",
            CommStep::DeltaPush => "delta_push",
            CommStep::Reduction => "reduction",
            CommStep::Checkpoint => "checkpoint",
            CommStep::Other => "other",
        }
    }

    /// Inverse of [`CommStep::label`] (used by the fault-plan DSL).
    pub fn from_label(label: &str) -> Option<CommStep> {
        CommStep::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// Mutable per-rank counters. Each rank owns its `CommStats` exclusively
/// (interior mutability via `Cell` keeps the `Comm` API `&self`).
#[derive(Debug, Default)]
pub struct CommStats {
    p2p_messages: Cell<u64>,
    p2p_bytes: Cell<u64>,
    collective_calls: Cell<u64>,
    collective_bytes: Cell<u64>,
    /// Modeled communication time (seconds) accumulated via the cost model.
    modeled_seconds: Cell<f64>,
    /// Which algorithmic step subsequent traffic is attributed to.
    step: Cell<CommStep>,
    step_messages: [Cell<u64>; NUM_COMM_STEPS],
    step_bytes: [Cell<u64>; NUM_COMM_STEPS],
    /// Injected-fault events observed by this rank's sender (all zero in
    /// clean runs).
    fault_drops: Cell<u64>,
    fault_delays: Cell<u64>,
    fault_duplicates: Cell<u64>,
    fault_truncations: Cell<u64>,
    /// Retransmissions performed to survive drops/truncations.
    fault_retries: Cell<u64>,
    /// Injected stalls (straggler simulation) served by this rank.
    fault_stalls: Cell<u64>,
    /// Flaky-burst drops (consecutive-failure windows) on this sender.
    fault_bursts: Cell<u64>,
    /// Payload corruptions injected on this sender.
    fault_corruptions: Cell<u64>,
    /// Envelopes this rank rejected at intake on a checksum mismatch.
    checksum_rejects: Cell<u64>,
    /// Watchdog ladder events on this rank's blocked waits.
    wd_timeouts: Cell<u64>,
    wd_retries: Cell<u64>,
    wd_stragglers: Cell<u64>,
    /// Total time this rank slept in retry/watchdog backoff.
    backoff_nanos: Cell<u64>,
    /// Retries (retransmissions + watchdog deadline extensions) charged
    /// to the step they occurred under — the per-step retry histogram
    /// surfaced in the run report. Charged *immediately* when the retry
    /// happens, so a panic mid-step cannot lose them (the panic-safety
    /// contract of `Comm::with_step`).
    step_retries: [Cell<u64>; NUM_COMM_STEPS],
    /// Idle wall time spent blocked (receive loops, collective
    /// fill-waits) per step — the *wait* half of the wait/transfer
    /// split. Wall-clock derived, so excluded from snapshot equality.
    step_wait_nanos: [Cell<u64>; NUM_COMM_STEPS],
    /// This rank's Lamport clock: bumped on every envelope send, folded
    /// to `max(local, remote) + 1` on every receive. Gives every sent
    /// envelope a per-src-unique stamp for matching send/recv trace
    /// events into cross-rank happens-before edges. Not part of the
    /// snapshot: it is a clock, not a traffic counter.
    lamport: Cell<u64>,
}

impl CommStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the step label that subsequent traffic is attributed to;
    /// returns the previous label so callers can scope and restore.
    pub fn set_step(&self, step: CommStep) -> CommStep {
        self.step.replace(step)
    }

    /// The step currently being attributed.
    pub fn current_step(&self) -> CommStep {
        self.step.get()
    }

    fn charge_step(&self, nmsgs: u64, bytes: u64) {
        let i = self.step.get().index();
        self.step_messages[i].set(self.step_messages[i].get() + nmsgs);
        self.step_bytes[i].set(self.step_bytes[i].get() + bytes);
    }

    #[cfg(test)]
    pub(crate) fn record_p2p(&self, bytes: u64, modeled: f64) {
        self.record_p2p_batch(1, bytes, modeled);
    }

    pub(crate) fn record_p2p_batch(&self, nmsgs: u64, bytes: u64, modeled: f64) {
        self.p2p_messages.set(self.p2p_messages.get() + nmsgs);
        self.p2p_bytes.set(self.p2p_bytes.get() + bytes);
        self.modeled_seconds
            .set(self.modeled_seconds.get() + modeled);
        self.charge_step(nmsgs, bytes);
        // Advance the tracing layer's modeled clock so open spans see
        // modeled comm time next to their wall-clock duration.
        louvain_obs::add_modeled_seconds(modeled);
    }

    pub(crate) fn record_collective(&self, bytes: u64, modeled: f64) {
        self.collective_calls.set(self.collective_calls.get() + 1);
        self.collective_bytes
            .set(self.collective_bytes.get() + bytes);
        self.modeled_seconds
            .set(self.modeled_seconds.get() + modeled);
        self.charge_step(1, bytes);
        louvain_obs::add_modeled_seconds(modeled);
    }

    /// Number of point-to-point messages sent by this rank.
    pub fn p2p_messages(&self) -> u64 {
        self.p2p_messages.get()
    }

    /// Bytes sent point-to-point by this rank.
    pub fn p2p_bytes(&self) -> u64 {
        self.p2p_bytes.get()
    }

    /// Number of collective operations this rank participated in.
    pub fn collective_calls(&self) -> u64 {
        self.collective_calls.get()
    }

    /// Bytes this rank contributed to collectives.
    pub fn collective_bytes(&self) -> u64 {
        self.collective_bytes.get()
    }

    /// Modeled communication time in seconds (α-β model).
    pub fn modeled_seconds(&self) -> f64 {
        self.modeled_seconds.get()
    }

    /// Bytes attributed to one algorithmic step.
    pub fn step_bytes(&self, step: CommStep) -> u64 {
        self.step_bytes[step.index()].get()
    }

    /// Messages/calls attributed to one algorithmic step.
    pub fn step_messages(&self, step: CommStep) -> u64 {
        self.step_messages[step.index()].get()
    }

    pub(crate) fn record_fault(&self, kind: crate::fault::FaultKind) {
        use crate::fault::FaultKind;
        let cell = match kind {
            FaultKind::Drop => &self.fault_drops,
            FaultKind::Delay => &self.fault_delays,
            FaultKind::Duplicate => &self.fault_duplicates,
            FaultKind::Truncate => &self.fault_truncations,
            FaultKind::Stall => &self.fault_stalls,
            FaultKind::FlakyBurst => &self.fault_bursts,
            FaultKind::CorruptPayload => &self.fault_corruptions,
        };
        cell.set(cell.get() + 1);
    }

    pub(crate) fn record_retry(&self) {
        self.fault_retries.set(self.fault_retries.get() + 1);
        self.charge_step_retry();
    }

    fn charge_step_retry(&self) {
        let i = self.step.get().index();
        self.step_retries[i].set(self.step_retries[i].get() + 1);
    }

    pub(crate) fn record_wd_timeout(&self) {
        self.wd_timeouts.set(self.wd_timeouts.get() + 1);
    }

    pub(crate) fn record_wd_retry(&self) {
        self.wd_retries.set(self.wd_retries.get() + 1);
        self.charge_step_retry();
    }

    pub(crate) fn record_wd_straggler(&self) {
        self.wd_stragglers.set(self.wd_stragglers.get() + 1);
    }

    pub(crate) fn record_backoff(&self, delay: std::time::Duration) {
        self.backoff_nanos
            .set(self.backoff_nanos.get() + delay.as_nanos() as u64);
    }

    pub(crate) fn record_checksum_reject(&self) {
        self.checksum_rejects.set(self.checksum_rejects.get() + 1);
    }

    /// Charge idle blocked time to the current step (the *wait* half of
    /// the wait/transfer split).
    pub(crate) fn record_wait_nanos(&self, nanos: u64) {
        let i = self.step.get().index();
        self.step_wait_nanos[i].set(self.step_wait_nanos[i].get() + nanos);
    }

    /// Advance this rank's Lamport clock for a send; returns the stamp
    /// to put on the envelope.
    pub(crate) fn tick_lamport(&self) -> u64 {
        let next = self.lamport.get() + 1;
        self.lamport.set(next);
        next
    }

    /// Fold a received envelope's Lamport stamp into the local clock
    /// (`max(local, remote) + 1`).
    pub(crate) fn fold_lamport(&self, remote: u64) {
        self.lamport.set(self.lamport.get().max(remote) + 1);
    }

    /// Idle blocked nanoseconds attributed to one algorithmic step.
    pub fn step_wait_nanos(&self, step: CommStep) -> u64 {
        self.step_wait_nanos[step.index()].get()
    }

    /// Watchdog event counts `(timeouts, retries, stragglers,
    /// backoff_nanos)` on this rank's blocked waits.
    pub fn watchdog_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.wd_timeouts.get(),
            self.wd_retries.get(),
            self.wd_stragglers.get(),
            self.backoff_nanos.get(),
        )
    }

    /// Checksum-mismatch rejections at this rank's intake.
    pub fn checksum_rejects(&self) -> u64 {
        self.checksum_rejects.get()
    }

    /// Retries charged to one algorithmic step.
    pub fn step_retries(&self, step: CommStep) -> u64 {
        self.step_retries[step.index()].get()
    }

    /// Injected-fault event counts `(drops, delays, duplicates,
    /// truncations, retries)`.
    pub fn fault_counts(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.fault_drops.get(),
            self.fault_delays.get(),
            self.fault_duplicates.get(),
            self.fault_truncations.get(),
            self.fault_retries.get(),
        )
    }

    /// Snapshot as a plain-old-data summary (for aggregation across ranks).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            p2p_messages: self.p2p_messages(),
            p2p_bytes: self.p2p_bytes(),
            collective_calls: self.collective_calls(),
            collective_bytes: self.collective_bytes(),
            modeled_seconds: self.modeled_seconds(),
            step_messages: std::array::from_fn(|i| self.step_messages[i].get()),
            step_bytes: std::array::from_fn(|i| self.step_bytes[i].get()),
            fault_drops: self.fault_drops.get(),
            fault_delays: self.fault_delays.get(),
            fault_duplicates: self.fault_duplicates.get(),
            fault_truncations: self.fault_truncations.get(),
            fault_retries: self.fault_retries.get(),
            fault_stalls: self.fault_stalls.get(),
            fault_bursts: self.fault_bursts.get(),
            fault_corruptions: self.fault_corruptions.get(),
            checksum_rejects: self.checksum_rejects.get(),
            wd_timeouts: self.wd_timeouts.get(),
            wd_retries: self.wd_retries.get(),
            wd_stragglers: self.wd_stragglers.get(),
            backoff_nanos: self.backoff_nanos.get(),
            step_retries: std::array::from_fn(|i| self.step_retries[i].get()),
            step_wait_nanos: std::array::from_fn(|i| self.step_wait_nanos[i].get()),
        }
    }

    /// Fold a previously captured snapshot back into the live counters.
    /// A resumed run calls this with the snapshot stored in its
    /// checkpoint so that the final totals are cumulative (pre-crash +
    /// post-resume) and per-step byte sums still reconcile.
    pub fn absorb(&self, base: &StatsSnapshot) {
        self.p2p_messages
            .set(self.p2p_messages.get() + base.p2p_messages);
        self.p2p_bytes.set(self.p2p_bytes.get() + base.p2p_bytes);
        self.collective_calls
            .set(self.collective_calls.get() + base.collective_calls);
        self.collective_bytes
            .set(self.collective_bytes.get() + base.collective_bytes);
        self.modeled_seconds
            .set(self.modeled_seconds.get() + base.modeled_seconds);
        for i in 0..NUM_COMM_STEPS {
            self.step_messages[i].set(self.step_messages[i].get() + base.step_messages[i]);
            self.step_bytes[i].set(self.step_bytes[i].get() + base.step_bytes[i]);
        }
        self.fault_drops
            .set(self.fault_drops.get() + base.fault_drops);
        self.fault_delays
            .set(self.fault_delays.get() + base.fault_delays);
        self.fault_duplicates
            .set(self.fault_duplicates.get() + base.fault_duplicates);
        self.fault_truncations
            .set(self.fault_truncations.get() + base.fault_truncations);
        self.fault_retries
            .set(self.fault_retries.get() + base.fault_retries);
        self.fault_stalls
            .set(self.fault_stalls.get() + base.fault_stalls);
        self.fault_bursts
            .set(self.fault_bursts.get() + base.fault_bursts);
        self.fault_corruptions
            .set(self.fault_corruptions.get() + base.fault_corruptions);
        self.checksum_rejects
            .set(self.checksum_rejects.get() + base.checksum_rejects);
        self.wd_timeouts
            .set(self.wd_timeouts.get() + base.wd_timeouts);
        self.wd_retries.set(self.wd_retries.get() + base.wd_retries);
        self.wd_stragglers
            .set(self.wd_stragglers.get() + base.wd_stragglers);
        self.backoff_nanos
            .set(self.backoff_nanos.get() + base.backoff_nanos);
        for i in 0..NUM_COMM_STEPS {
            self.step_retries[i].set(self.step_retries[i].get() + base.step_retries[i]);
            self.step_wait_nanos[i].set(self.step_wait_nanos[i].get() + base.step_wait_nanos[i]);
        }
    }

    /// Zero every counter, returning the pre-reset snapshot.
    pub fn reset(&self) -> StatsSnapshot {
        let snap = self.snapshot();
        self.p2p_messages.set(0);
        self.p2p_bytes.set(0);
        self.collective_calls.set(0);
        self.collective_bytes.set(0);
        self.modeled_seconds.set(0.0);
        for i in 0..NUM_COMM_STEPS {
            self.step_messages[i].set(0);
            self.step_bytes[i].set(0);
        }
        self.fault_drops.set(0);
        self.fault_delays.set(0);
        self.fault_duplicates.set(0);
        self.fault_truncations.set(0);
        self.fault_retries.set(0);
        self.fault_stalls.set(0);
        self.fault_bursts.set(0);
        self.fault_corruptions.set(0);
        self.checksum_rejects.set(0);
        self.wd_timeouts.set(0);
        self.wd_retries.set(0);
        self.wd_stragglers.set(0);
        self.backoff_nanos.set(0);
        for i in 0..NUM_COMM_STEPS {
            self.step_retries[i].set(0);
            self.step_wait_nanos[i].set(0);
        }
        self.lamport.set(0);
        snap
    }
}

/// Plain-old-data copy of [`CommStats`], summable across ranks.
#[derive(Debug, Default, Clone, Copy)]
pub struct StatsSnapshot {
    pub p2p_messages: u64,
    pub p2p_bytes: u64,
    pub collective_calls: u64,
    pub collective_bytes: u64,
    pub modeled_seconds: f64,
    /// Per-[`CommStep`] message/call counts, indexed by `CommStep::index()`.
    pub step_messages: [u64; NUM_COMM_STEPS],
    /// Per-[`CommStep`] byte counts, indexed by `CommStep::index()`.
    pub step_bytes: [u64; NUM_COMM_STEPS],
    /// Injected-fault events (all zero in clean runs).
    pub fault_drops: u64,
    pub fault_delays: u64,
    pub fault_duplicates: u64,
    pub fault_truncations: u64,
    pub fault_retries: u64,
    pub fault_stalls: u64,
    pub fault_bursts: u64,
    pub fault_corruptions: u64,
    /// Checksum-mismatch rejections at this rank's intake.
    pub checksum_rejects: u64,
    /// Watchdog ladder events (all zero in clean runs).
    pub wd_timeouts: u64,
    pub wd_retries: u64,
    pub wd_stragglers: u64,
    /// Total retry/watchdog backoff sleep, in nanoseconds.
    pub backoff_nanos: u64,
    /// Per-[`CommStep`] retry counts (retransmissions + watchdog
    /// deadline extensions), indexed by `CommStep::index()`.
    pub step_retries: [u64; NUM_COMM_STEPS],
    /// Per-[`CommStep`] idle blocked time (wall nanoseconds), indexed by
    /// `CommStep::index()`. Excluded from equality: see the manual
    /// `PartialEq` below.
    pub step_wait_nanos: [u64; NUM_COMM_STEPS],
}

/// Equality over the *deterministic* counters only. `step_wait_nanos`
/// is wall-clock derived — two bit-identical runs block for different
/// real durations — and the determinism/parity tests compare snapshots
/// wholesale, so the non-deterministic field is excluded by hand.
impl PartialEq for StatsSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.p2p_messages == other.p2p_messages
            && self.p2p_bytes == other.p2p_bytes
            && self.collective_calls == other.collective_calls
            && self.collective_bytes == other.collective_bytes
            && self.modeled_seconds == other.modeled_seconds
            && self.step_messages == other.step_messages
            && self.step_bytes == other.step_bytes
            && self.fault_drops == other.fault_drops
            && self.fault_delays == other.fault_delays
            && self.fault_duplicates == other.fault_duplicates
            && self.fault_truncations == other.fault_truncations
            && self.fault_retries == other.fault_retries
            && self.fault_stalls == other.fault_stalls
            && self.fault_bursts == other.fault_bursts
            && self.fault_corruptions == other.fault_corruptions
            && self.checksum_rejects == other.checksum_rejects
            && self.wd_timeouts == other.wd_timeouts
            && self.wd_retries == other.wd_retries
            && self.wd_stragglers == other.wd_stragglers
            && self.backoff_nanos == other.backoff_nanos
            && self.step_retries == other.step_retries
    }
}

impl StatsSnapshot {
    /// Element-wise accumulation (modeled time takes the max, matching the
    /// bulk-synchronous critical path; counters sum).
    pub fn merge_max_time(&mut self, other: &StatsSnapshot) {
        self.p2p_messages += other.p2p_messages;
        self.p2p_bytes += other.p2p_bytes;
        self.collective_calls += other.collective_calls;
        self.collective_bytes += other.collective_bytes;
        self.modeled_seconds = self.modeled_seconds.max(other.modeled_seconds);
        for i in 0..NUM_COMM_STEPS {
            self.step_messages[i] += other.step_messages[i];
            self.step_bytes[i] += other.step_bytes[i];
        }
        self.fault_drops += other.fault_drops;
        self.fault_delays += other.fault_delays;
        self.fault_duplicates += other.fault_duplicates;
        self.fault_truncations += other.fault_truncations;
        self.fault_retries += other.fault_retries;
        self.fault_stalls += other.fault_stalls;
        self.fault_bursts += other.fault_bursts;
        self.fault_corruptions += other.fault_corruptions;
        self.checksum_rejects += other.checksum_rejects;
        self.wd_timeouts += other.wd_timeouts;
        self.wd_retries += other.wd_retries;
        self.wd_stragglers += other.wd_stragglers;
        self.backoff_nanos += other.backoff_nanos;
        for i in 0..NUM_COMM_STEPS {
            self.step_retries[i] += other.step_retries[i];
            self.step_wait_nanos[i] += other.step_wait_nanos[i];
        }
    }

    /// Bytes attributed to one algorithmic step.
    pub fn step_bytes_for(&self, step: CommStep) -> u64 {
        self.step_bytes[step.index()]
    }

    /// Messages/calls attributed to one algorithmic step.
    pub fn step_messages_for(&self, step: CommStep) -> u64 {
        self.step_messages[step.index()]
    }

    /// Idle blocked nanoseconds attributed to one algorithmic step.
    pub fn step_wait_nanos_for(&self, step: CommStep) -> u64 {
        self.step_wait_nanos[step.index()]
    }

    /// Total idle blocked nanoseconds across all steps.
    pub fn wait_nanos_total(&self) -> u64 {
        self.step_wait_nanos.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = CommStats::new();
        s.record_p2p(100, 0.5);
        s.record_p2p(50, 0.25);
        s.record_collective(8, 0.1);
        assert_eq!(s.p2p_messages(), 2);
        assert_eq!(s.p2p_bytes(), 150);
        assert_eq!(s.collective_calls(), 1);
        assert_eq!(s.collective_bytes(), 8);
        assert!((s.modeled_seconds() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn step_attribution_follows_set_step() {
        let s = CommStats::new();
        s.record_p2p(100, 0.0);
        let prev = s.set_step(CommStep::GhostRefresh);
        assert_eq!(prev, CommStep::Other);
        s.record_p2p_batch(3, 300, 0.0);
        s.set_step(CommStep::Reduction);
        s.record_collective(8, 0.0);
        s.set_step(prev);
        assert_eq!(s.step_bytes(CommStep::Other), 100);
        assert_eq!(s.step_bytes(CommStep::GhostRefresh), 300);
        assert_eq!(s.step_messages(CommStep::GhostRefresh), 3);
        assert_eq!(s.step_bytes(CommStep::Reduction), 8);
        let snap = s.snapshot();
        assert_eq!(snap.step_bytes_for(CommStep::GhostRefresh), 300);
        assert_eq!(
            snap.step_bytes.iter().sum::<u64>(),
            snap.p2p_bytes + snap.collective_bytes
        );
    }

    #[test]
    fn snapshot_merge_takes_time_max_and_counter_sum() {
        let mut a = StatsSnapshot {
            p2p_messages: 1,
            p2p_bytes: 10,
            collective_calls: 2,
            collective_bytes: 4,
            modeled_seconds: 0.5,
            ..Default::default()
        };
        let b = StatsSnapshot {
            p2p_messages: 3,
            p2p_bytes: 30,
            collective_calls: 1,
            collective_bytes: 8,
            modeled_seconds: 0.2,
            ..Default::default()
        };
        a.merge_max_time(&b);
        assert_eq!(a.p2p_messages, 4);
        assert_eq!(a.p2p_bytes, 40);
        assert_eq!(a.collective_calls, 3);
        assert_eq!(a.collective_bytes, 12);
        assert_eq!(a.modeled_seconds, 0.5);
    }

    #[test]
    fn lamport_clock_ticks_and_folds() {
        let s = CommStats::new();
        assert_eq!(s.tick_lamport(), 1);
        assert_eq!(s.tick_lamport(), 2);
        // Receiving a stamp from the future jumps past it.
        s.fold_lamport(10);
        assert_eq!(s.tick_lamport(), 12);
        // Receiving a stale stamp still advances.
        s.fold_lamport(3);
        assert_eq!(s.tick_lamport(), 14);
    }

    #[test]
    fn wait_nanos_charge_current_step_and_survive_absorb() {
        let s = CommStats::new();
        s.set_step(CommStep::GhostRefresh);
        s.record_wait_nanos(500);
        s.set_step(CommStep::Reduction);
        s.record_wait_nanos(200);
        assert_eq!(s.step_wait_nanos(CommStep::GhostRefresh), 500);
        assert_eq!(s.step_wait_nanos(CommStep::Reduction), 200);
        let cut = s.reset();
        assert_eq!(cut.step_wait_nanos_for(CommStep::GhostRefresh), 500);
        assert_eq!(s.step_wait_nanos(CommStep::GhostRefresh), 0);
        s.set_step(CommStep::GhostRefresh);
        s.record_wait_nanos(100);
        s.absorb(&cut);
        let after = s.snapshot();
        assert_eq!(after.step_wait_nanos_for(CommStep::GhostRefresh), 600);
        assert_eq!(after.wait_nanos_total(), 800);
        // Equality ignores the wall-clock wait field: two runs with the
        // same traffic but different idle time still compare equal.
        let mut other = after;
        other.step_wait_nanos = [0; NUM_COMM_STEPS];
        assert_eq!(after, other);
    }

    #[test]
    fn reset_then_absorb_restores_cumulative_totals() {
        let s = CommStats::new();
        s.set_step(CommStep::GhostRefresh);
        s.record_p2p(100, 0.5);
        s.set_step(CommStep::Checkpoint);
        s.record_collective(8, 0.1);
        let before = s.snapshot();

        let cut = s.reset();
        assert_eq!(cut, before);
        assert_eq!(s.snapshot(), StatsSnapshot::default());

        // Post-"resume" traffic plus the absorbed pre-crash snapshot
        // must equal the uninterrupted totals plus the new traffic.
        s.set_step(CommStep::Reduction);
        s.record_collective(16, 0.2);
        s.absorb(&cut);
        let after = s.snapshot();
        assert_eq!(after.p2p_bytes, 100);
        assert_eq!(after.collective_bytes, 24);
        assert_eq!(after.step_bytes_for(CommStep::GhostRefresh), 100);
        assert_eq!(after.step_bytes_for(CommStep::Checkpoint), 8);
        assert_eq!(after.step_bytes_for(CommStep::Reduction), 16);
        assert_eq!(
            after.step_bytes.iter().sum::<u64>(),
            after.p2p_bytes + after.collective_bytes
        );
        assert!((after.modeled_seconds - 0.8).abs() < 1e-12);
    }
}
