//! Per-rank communication accounting.
//!
//! Every `Comm` method updates these counters; experiment harnesses read
//! them to report communication volume and to feed the [`CostModel`]
//! (the HPCToolkit-style breakdown of Section V-A of the paper is derived
//! from exactly these numbers).

use std::cell::Cell;

/// Classification of recorded traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficKind {
    /// Point-to-point sends (including the sends inside `all_to_all_v`).
    PointToPoint,
    /// Barriers, reductions, scans, gathers, broadcasts.
    Collective,
}

/// The algorithmic step traffic is attributed to. The distributed
/// Louvain iteration has four communication steps per sweep (ghost
/// community refresh, remote-community a_c pull, delta push to owners,
/// and the modularity reduction); everything else (setup, graph
/// rebuild, result gathering) lands in `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommStep {
    GhostRefresh,
    CommunityPull,
    DeltaPush,
    Reduction,
    #[default]
    Other,
}

/// Number of [`CommStep`] variants (array-indexed counters).
pub const NUM_COMM_STEPS: usize = 5;

impl CommStep {
    pub const ALL: [CommStep; NUM_COMM_STEPS] = [
        CommStep::GhostRefresh,
        CommStep::CommunityPull,
        CommStep::DeltaPush,
        CommStep::Reduction,
        CommStep::Other,
    ];

    pub fn index(self) -> usize {
        match self {
            CommStep::GhostRefresh => 0,
            CommStep::CommunityPull => 1,
            CommStep::DeltaPush => 2,
            CommStep::Reduction => 3,
            CommStep::Other => 4,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            CommStep::GhostRefresh => "ghost_refresh",
            CommStep::CommunityPull => "community_pull",
            CommStep::DeltaPush => "delta_push",
            CommStep::Reduction => "reduction",
            CommStep::Other => "other",
        }
    }
}

/// Mutable per-rank counters. Each rank owns its `CommStats` exclusively
/// (interior mutability via `Cell` keeps the `Comm` API `&self`).
#[derive(Debug, Default)]
pub struct CommStats {
    p2p_messages: Cell<u64>,
    p2p_bytes: Cell<u64>,
    collective_calls: Cell<u64>,
    collective_bytes: Cell<u64>,
    /// Modeled communication time (seconds) accumulated via the cost model.
    modeled_seconds: Cell<f64>,
    /// Which algorithmic step subsequent traffic is attributed to.
    step: Cell<CommStep>,
    step_messages: [Cell<u64>; NUM_COMM_STEPS],
    step_bytes: [Cell<u64>; NUM_COMM_STEPS],
}

impl CommStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the step label that subsequent traffic is attributed to;
    /// returns the previous label so callers can scope and restore.
    pub fn set_step(&self, step: CommStep) -> CommStep {
        self.step.replace(step)
    }

    /// The step currently being attributed.
    pub fn current_step(&self) -> CommStep {
        self.step.get()
    }

    fn charge_step(&self, nmsgs: u64, bytes: u64) {
        let i = self.step.get().index();
        self.step_messages[i].set(self.step_messages[i].get() + nmsgs);
        self.step_bytes[i].set(self.step_bytes[i].get() + bytes);
    }

    pub(crate) fn record_p2p(&self, bytes: u64, modeled: f64) {
        self.record_p2p_batch(1, bytes, modeled);
    }

    pub(crate) fn record_p2p_batch(&self, nmsgs: u64, bytes: u64, modeled: f64) {
        self.p2p_messages.set(self.p2p_messages.get() + nmsgs);
        self.p2p_bytes.set(self.p2p_bytes.get() + bytes);
        self.modeled_seconds
            .set(self.modeled_seconds.get() + modeled);
        self.charge_step(nmsgs, bytes);
        // Advance the tracing layer's modeled clock so open spans see
        // modeled comm time next to their wall-clock duration.
        louvain_obs::add_modeled_seconds(modeled);
    }

    pub(crate) fn record_collective(&self, bytes: u64, modeled: f64) {
        self.collective_calls.set(self.collective_calls.get() + 1);
        self.collective_bytes
            .set(self.collective_bytes.get() + bytes);
        self.modeled_seconds
            .set(self.modeled_seconds.get() + modeled);
        self.charge_step(1, bytes);
        louvain_obs::add_modeled_seconds(modeled);
    }

    /// Number of point-to-point messages sent by this rank.
    pub fn p2p_messages(&self) -> u64 {
        self.p2p_messages.get()
    }

    /// Bytes sent point-to-point by this rank.
    pub fn p2p_bytes(&self) -> u64 {
        self.p2p_bytes.get()
    }

    /// Number of collective operations this rank participated in.
    pub fn collective_calls(&self) -> u64 {
        self.collective_calls.get()
    }

    /// Bytes this rank contributed to collectives.
    pub fn collective_bytes(&self) -> u64 {
        self.collective_bytes.get()
    }

    /// Modeled communication time in seconds (α-β model).
    pub fn modeled_seconds(&self) -> f64 {
        self.modeled_seconds.get()
    }

    /// Bytes attributed to one algorithmic step.
    pub fn step_bytes(&self, step: CommStep) -> u64 {
        self.step_bytes[step.index()].get()
    }

    /// Messages/calls attributed to one algorithmic step.
    pub fn step_messages(&self, step: CommStep) -> u64 {
        self.step_messages[step.index()].get()
    }

    /// Snapshot as a plain-old-data summary (for aggregation across ranks).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            p2p_messages: self.p2p_messages(),
            p2p_bytes: self.p2p_bytes(),
            collective_calls: self.collective_calls(),
            collective_bytes: self.collective_bytes(),
            modeled_seconds: self.modeled_seconds(),
            step_messages: std::array::from_fn(|i| self.step_messages[i].get()),
            step_bytes: std::array::from_fn(|i| self.step_bytes[i].get()),
        }
    }
}

/// Plain-old-data copy of [`CommStats`], summable across ranks.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    pub p2p_messages: u64,
    pub p2p_bytes: u64,
    pub collective_calls: u64,
    pub collective_bytes: u64,
    pub modeled_seconds: f64,
    /// Per-[`CommStep`] message/call counts, indexed by `CommStep::index()`.
    pub step_messages: [u64; NUM_COMM_STEPS],
    /// Per-[`CommStep`] byte counts, indexed by `CommStep::index()`.
    pub step_bytes: [u64; NUM_COMM_STEPS],
}

impl StatsSnapshot {
    /// Element-wise accumulation (modeled time takes the max, matching the
    /// bulk-synchronous critical path; counters sum).
    pub fn merge_max_time(&mut self, other: &StatsSnapshot) {
        self.p2p_messages += other.p2p_messages;
        self.p2p_bytes += other.p2p_bytes;
        self.collective_calls += other.collective_calls;
        self.collective_bytes += other.collective_bytes;
        self.modeled_seconds = self.modeled_seconds.max(other.modeled_seconds);
        for i in 0..NUM_COMM_STEPS {
            self.step_messages[i] += other.step_messages[i];
            self.step_bytes[i] += other.step_bytes[i];
        }
    }

    /// Bytes attributed to one algorithmic step.
    pub fn step_bytes_for(&self, step: CommStep) -> u64 {
        self.step_bytes[step.index()]
    }

    /// Messages/calls attributed to one algorithmic step.
    pub fn step_messages_for(&self, step: CommStep) -> u64 {
        self.step_messages[step.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = CommStats::new();
        s.record_p2p(100, 0.5);
        s.record_p2p(50, 0.25);
        s.record_collective(8, 0.1);
        assert_eq!(s.p2p_messages(), 2);
        assert_eq!(s.p2p_bytes(), 150);
        assert_eq!(s.collective_calls(), 1);
        assert_eq!(s.collective_bytes(), 8);
        assert!((s.modeled_seconds() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn step_attribution_follows_set_step() {
        let s = CommStats::new();
        s.record_p2p(100, 0.0);
        let prev = s.set_step(CommStep::GhostRefresh);
        assert_eq!(prev, CommStep::Other);
        s.record_p2p_batch(3, 300, 0.0);
        s.set_step(CommStep::Reduction);
        s.record_collective(8, 0.0);
        s.set_step(prev);
        assert_eq!(s.step_bytes(CommStep::Other), 100);
        assert_eq!(s.step_bytes(CommStep::GhostRefresh), 300);
        assert_eq!(s.step_messages(CommStep::GhostRefresh), 3);
        assert_eq!(s.step_bytes(CommStep::Reduction), 8);
        let snap = s.snapshot();
        assert_eq!(snap.step_bytes_for(CommStep::GhostRefresh), 300);
        assert_eq!(
            snap.step_bytes.iter().sum::<u64>(),
            snap.p2p_bytes + snap.collective_bytes
        );
    }

    #[test]
    fn snapshot_merge_takes_time_max_and_counter_sum() {
        let mut a = StatsSnapshot {
            p2p_messages: 1,
            p2p_bytes: 10,
            collective_calls: 2,
            collective_bytes: 4,
            modeled_seconds: 0.5,
            ..Default::default()
        };
        let b = StatsSnapshot {
            p2p_messages: 3,
            p2p_bytes: 30,
            collective_calls: 1,
            collective_bytes: 8,
            modeled_seconds: 0.2,
            ..Default::default()
        };
        a.merge_max_time(&b);
        assert_eq!(a.p2p_messages, 4);
        assert_eq!(a.p2p_bytes, 40);
        assert_eq!(a.collective_calls, 3);
        assert_eq!(a.collective_bytes, 12);
        assert_eq!(a.modeled_seconds, 0.5);
    }
}
