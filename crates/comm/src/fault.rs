//! Seeded, deterministic fault injection for the simulated communicator.
//!
//! A [`FaultPlan`] describes transient message faults (drop, delay,
//! duplicate, truncate) and hard crashes (a chosen rank panics at a
//! chosen communication operation of a chosen phase). Every injection
//! decision is a pure function of `(plan seed, rule, rank, message
//! index, attempt)`, so the same plan on the same program produces the
//! same faults and the same recovery trace — the property the fault
//! matrix tests rely on.
//!
//! Transient faults are *survived* inside the comm layer: the sender
//! retransmits dropped or truncated messages (with backoff), receivers
//! discard corrupt copies and deduplicate by per-sender sequence number.
//! Crashes are *not* survived here — they unwind the rank thread with a
//! [`RankCrashed`] payload, which the resilient driver in
//! `louvain-dist` catches and turns into a checkpoint restore. Injected
//! hangs likewise unwind — but indirectly, via the rank-health watchdog
//! declaring the silent rank hung (see [`crate::health`]).

use crate::stats::CommStep;

/// Transient message-level fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The copy is transmitted but never arrives; the sender retries.
    Drop,
    /// The copy arrives after a short injected latency.
    Delay,
    /// A stale extra copy is delivered; the receiver deduplicates it.
    Duplicate,
    /// The copy arrives corrupt; the receiver discards it and the
    /// sender retries.
    Truncate,
    /// The sending rank stalls (sleeping, but still heartbeating)
    /// before the matched comm op — a straggler, not a hang.
    Stall,
    /// The same logical message is dropped on `len` consecutive
    /// attempts (decided per message, not per attempt), exercising the
    /// multi-step exponential backoff ladder.
    FlakyBurst,
    /// The copy arrives with a corrupted payload; the receiver detects
    /// the checksum mismatch, discards it, and the sender retries.
    CorruptPayload,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "drop" => Some(FaultKind::Drop),
            "delay" => Some(FaultKind::Delay),
            "duplicate" => Some(FaultKind::Duplicate),
            "truncate" => Some(FaultKind::Truncate),
            "stall" => Some(FaultKind::Stall),
            "flaky-burst" => Some(FaultKind::FlakyBurst),
            "corrupt-payload" => Some(FaultKind::CorruptPayload),
            _ => None,
        }
    }
}

/// One transient-fault rule: messages matching the filters are hit with
/// probability `prob` per transmission attempt.
#[derive(Debug, Clone)]
pub struct FaultRule {
    pub kind: FaultKind,
    /// Restrict to one comm step (`None` = any step).
    pub step: Option<CommStep>,
    /// Restrict to one sending rank (`None` = any rank).
    pub rank: Option<usize>,
    /// Restrict to one fault epoch / Louvain phase (`None` = any).
    pub phase: Option<u64>,
    /// Per-attempt injection probability in `[0, 1]`.
    pub prob: f64,
    /// [`FaultKind::Stall`] only: how long the stall sleeps.
    pub stall_ms: u64,
    /// [`FaultKind::FlakyBurst`] only: consecutive attempts dropped.
    pub burst_len: u32,
}

/// A hard-crash rule: `rank` panics with [`RankCrashed`] when it reaches
/// communication operation `op` (0-based) of fault epoch `phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRule {
    pub rank: usize,
    pub phase: u64,
    pub op: u64,
}

/// A hang rule: `rank` stops responding (no heartbeats, no messages)
/// when it reaches communication operation `op` of fault epoch `phase`.
/// The watchdog on a peer rank — or the hung rank's own self-timeout in
/// single-rank jobs — eventually declares it hung via
/// [`crate::RankHung`], which the resilient driver recovers from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HangRule {
    pub rank: usize,
    pub phase: u64,
    pub op: u64,
}

/// A deterministic fault schedule, shared (immutably) by all ranks.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
    pub crashes: Vec<CrashRule>,
    pub hangs: Vec<HangRule>,
}

/// Panic payload carried out of a rank thread by an injected crash. The
/// resilient driver downcasts the propagated payload to decide whether
/// the failure is recoverable.
#[derive(Debug, Clone, Copy)]
pub struct RankCrashed {
    pub rank: usize,
    pub phase: u64,
    pub op: u64,
}

impl std::fmt::Display for RankCrashed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected crash: rank {} at comm op {} of phase {}",
            self.rank, self.op, self.phase
        )
    }
}

/// Bounded retransmission: after this many faulty attempts per logical
/// message, faults are suppressed so the run always makes progress.
pub(crate) const FAULT_MAX_ATTEMPTS: u32 = 3;

/// splitmix64 finalizer — the per-decision hash (also used by the
/// envelope checksum and the backoff jitter).
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` from a hash.
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// Parse the CLI fault-plan DSL: `;`-separated segments, each either
    /// `seed=N` or `<kind>[:key=value,...]`.
    ///
    /// Kinds: `drop`, `delay`, `duplicate`, `truncate`,
    /// `corrupt-payload` (keys `prob`, `step`, `rank`, `phase`),
    /// `stall` (adds `ms`), `flaky-burst` (adds `len`), and the
    /// op-addressed `crash` / `hang` (keys `rank` — required — `phase`,
    /// `op`). Step names are the [`CommStep`] labels. Example:
    ///
    /// `seed=42;drop:step=ghost_refresh,prob=0.2;stall:rank=0,ms=80,prob=0.1;hang:rank=1,phase=1`
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for seg in spec.split(';') {
            let seg = seg.trim();
            if seg.is_empty() {
                continue;
            }
            if let Some(v) = seg.strip_prefix("seed=") {
                plan.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
                continue;
            }
            let (head, tail) = match seg.split_once(':') {
                Some((h, t)) => (h, t),
                None => (seg, ""),
            };
            let kv = |key: &str| -> Result<Option<&str>, String> {
                for pair in tail.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
                    if k == key {
                        return Ok(Some(v));
                    }
                }
                Ok(None)
            };
            let parse_u64 = |v: &str| v.parse::<u64>().map_err(|_| format!("bad number {v:?}"));
            if head == "crash" || head == "hang" {
                let rank = kv("rank")?
                    .ok_or_else(|| format!("{head} rule {seg:?} needs rank=N"))?
                    .parse::<usize>()
                    .map_err(|_| format!("bad rank in {seg:?}"))?;
                let phase = kv("phase")?.map(parse_u64).transpose()?.unwrap_or(0);
                let op = kv("op")?.map(parse_u64).transpose()?.unwrap_or(0);
                if head == "crash" {
                    plan.crashes.push(CrashRule { rank, phase, op });
                } else {
                    plan.hangs.push(HangRule { rank, phase, op });
                }
            } else {
                let kind = FaultKind::parse(head)
                    .ok_or_else(|| format!("unknown fault kind {head:?} in {seg:?}"))?;
                let step = match kv("step")? {
                    Some(s) => Some(
                        CommStep::from_label(s)
                            .ok_or_else(|| format!("unknown comm step {s:?} in {seg:?}"))?,
                    ),
                    None => None,
                };
                let rank = kv("rank")?
                    .map(|v| v.parse::<usize>().map_err(|_| format!("bad rank {v:?}")))
                    .transpose()?;
                let phase = kv("phase")?.map(parse_u64).transpose()?;
                let prob = match kv("prob")? {
                    Some(v) => {
                        let p: f64 = v.parse().map_err(|_| format!("bad prob {v:?}"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("prob {p} outside [0, 1]"));
                        }
                        p
                    }
                    None => 1.0,
                };
                let stall_ms = match kv("ms")? {
                    Some(v) => {
                        if kind != FaultKind::Stall {
                            return Err(format!("ms= only applies to stall rules, got {seg:?}"));
                        }
                        parse_u64(v)?
                    }
                    None => 100,
                };
                let burst_len = match kv("len")? {
                    Some(v) => {
                        if kind != FaultKind::FlakyBurst {
                            return Err(format!(
                                "len= only applies to flaky-burst rules, got {seg:?}"
                            ));
                        }
                        let len = parse_u64(v)?;
                        if !(1..=16).contains(&len) {
                            return Err(format!("burst len {len} outside 1..=16"));
                        }
                        len as u32
                    }
                    None => 3,
                };
                plan.rules.push(FaultRule {
                    kind,
                    step,
                    rank,
                    phase,
                    prob,
                    stall_ms,
                    burst_len,
                });
            }
        }
        Ok(plan)
    }

    /// A copy of the plan with the first `n` crash rules removed — what
    /// the resilient driver runs on recovery attempt `n`, so that each
    /// injected crash fires exactly once across the whole recovery
    /// sequence.
    pub fn with_crashes_skipped(&self, n: usize) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            rules: self.rules.clone(),
            crashes: self.crashes.iter().skip(n).copied().collect(),
            hangs: self.hangs.clone(),
        }
    }

    /// A copy with the first `n` hang rules removed — the hang
    /// counterpart of [`FaultPlan::with_crashes_skipped`], applied by
    /// the resilient driver after each [`crate::RankHung`] recovery so
    /// every injected hang fires exactly once.
    pub fn with_hangs_skipped(&self, n: usize) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            rules: self.rules.clone(),
            crashes: self.crashes.clone(),
            hangs: self.hangs.iter().skip(n).copied().collect(),
        }
    }

    /// The transient fault (if any) to inject into transmission attempt
    /// `attempt` of logical message `msg` sent by `rank`. Deterministic:
    /// depends only on the plan and the arguments.
    pub fn decide(
        &self,
        rank: usize,
        step: CommStep,
        phase: u64,
        msg: u64,
        attempt: u32,
    ) -> Option<FaultKind> {
        for (i, r) in self.rules.iter().enumerate() {
            if r.kind == FaultKind::Stall {
                // Op-level, not message-level; see `decide_stall`.
                continue;
            }
            if r.rank.is_some_and(|x| x != rank) {
                continue;
            }
            if r.step.is_some_and(|s| s != step) {
                continue;
            }
            if r.phase.is_some_and(|p| p != phase) {
                continue;
            }
            // A flaky burst is decided once per logical message (the
            // attempt index is excluded from the hash) and then applies
            // to its first `burst_len` attempts, so the same message
            // keeps failing and the backoff ladder actually climbs.
            let burst = r.kind == FaultKind::FlakyBurst;
            if burst && attempt >= r.burst_len {
                continue;
            }
            let h = mix64(
                self.seed
                    ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (rank as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                    ^ msg.wrapping_mul(0x1656_67B1_9E37_79F9)
                    ^ if burst {
                        0
                    } else {
                        (attempt as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)
                    },
            );
            if u01(h) < r.prob {
                return Some(r.kind);
            }
        }
        None
    }

    /// The injected stall (if any) before comm op `op` of `phase` on
    /// `rank`: op-level straggler injection, decided like [`FaultPlan::
    /// decide`] but keyed on the op index. Returns the stall duration.
    pub fn decide_stall(
        &self,
        rank: usize,
        step: CommStep,
        phase: u64,
        op: u64,
    ) -> Option<std::time::Duration> {
        for (i, r) in self.rules.iter().enumerate() {
            if r.kind != FaultKind::Stall {
                continue;
            }
            if r.rank.is_some_and(|x| x != rank) {
                continue;
            }
            if r.step.is_some_and(|s| s != step) {
                continue;
            }
            if r.phase.is_some_and(|p| p != phase) {
                continue;
            }
            let h = mix64(
                self.seed
                    ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (rank as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                    ^ op.wrapping_mul(0x1656_67B1_9E37_79F9),
            );
            if u01(h) < r.prob {
                return Some(std::time::Duration::from_millis(r.stall_ms));
            }
        }
        None
    }

    /// Whether `rank` should crash at comm op `op` of fault epoch `phase`.
    pub fn should_crash(&self, rank: usize, phase: u64, op: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.rank == rank && c.phase == phase && c.op == op)
    }

    /// Whether `rank` should hang at comm op `op` of fault epoch `phase`.
    pub fn should_hang(&self, rank: usize, phase: u64, op: u64) -> bool {
        self.hangs
            .iter()
            .any(|h| h.rank == rank && h.phase == phase && h.op == op)
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.crashes.is_empty() && self.hangs.is_empty()
    }

    /// One-line human summary of what the plan injects — used by the job
    /// server to log the fault shape of a submitted job next to its
    /// recovery budgets (e.g. `"2 transient rules, 1 crash, 0 hangs"`).
    pub fn summary(&self) -> String {
        format!(
            "{} transient rule{}, {} crash{}, {} hang{}",
            self.rules.len(),
            if self.rules.len() == 1 { "" } else { "s" },
            self.crashes.len(),
            if self.crashes.len() == 1 { "" } else { "es" },
            self.hangs.len(),
            if self.hangs.len() == 1 { "" } else { "s" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_counts_by_kind() {
        let plan = FaultPlan::parse("drop:prob=0.1;crash:rank=0,phase=1,op=0").unwrap();
        assert_eq!(plan.summary(), "1 transient rule, 1 crash, 0 hangs");
        let plan = FaultPlan::parse("hang:rank=1,phase=0,op=2").unwrap();
        assert_eq!(plan.summary(), "0 transient rules, 0 crashes, 1 hang");
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "seed=42;drop:step=ghost_refresh,prob=0.2;duplicate:rank=1,prob=0.5;crash:rank=1,phase=2,op=3",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].kind, FaultKind::Drop);
        assert_eq!(plan.rules[0].step, Some(CommStep::GhostRefresh));
        assert_eq!(plan.rules[0].prob, 0.2);
        assert_eq!(plan.rules[1].rank, Some(1));
        assert_eq!(
            plan.crashes,
            vec![CrashRule {
                rank: 1,
                phase: 2,
                op: 3
            }]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("explode:prob=1").is_err());
        assert!(FaultPlan::parse("drop:step=warp_drive").is_err());
        assert!(FaultPlan::parse("drop:prob=1.5").is_err());
        assert!(FaultPlan::parse("crash:phase=1").is_err());
        assert!(FaultPlan::parse("hang:phase=1").is_err());
        assert!(FaultPlan::parse("seed=xyzzy").is_err());
        assert!(FaultPlan::parse("drop:ms=5").is_err());
        assert!(FaultPlan::parse("stall:rank=0,len=2").is_err());
        assert!(FaultPlan::parse("flaky-burst:len=0").is_err());
        assert!(FaultPlan::parse("flaky-burst:len=99").is_err());
    }

    #[test]
    fn parse_health_fault_kinds() {
        let plan = FaultPlan::parse(
            "seed=9;stall:rank=0,ms=80,prob=0.5;flaky-burst:len=4,prob=0.1;corrupt-payload:prob=0.2;hang:rank=2,phase=1,op=3",
        )
        .unwrap();
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].kind, FaultKind::Stall);
        assert_eq!(plan.rules[0].stall_ms, 80);
        assert_eq!(plan.rules[1].kind, FaultKind::FlakyBurst);
        assert_eq!(plan.rules[1].burst_len, 4);
        assert_eq!(plan.rules[2].kind, FaultKind::CorruptPayload);
        assert_eq!(
            plan.hangs,
            vec![HangRule {
                rank: 2,
                phase: 1,
                op: 3
            }]
        );
        assert!(!plan.is_empty());
    }

    #[test]
    fn hang_skipping_mirrors_crash_skipping() {
        let plan = FaultPlan::parse("hang:rank=0,phase=1;hang:rank=1,phase=3").unwrap();
        assert!(plan.should_hang(0, 1, 0));
        let after_one = plan.with_hangs_skipped(1);
        assert!(!after_one.should_hang(0, 1, 0));
        assert!(after_one.should_hang(1, 3, 0));
        assert!(plan.with_hangs_skipped(2).hangs.is_empty());
        // Crash skipping leaves hang rules alone and vice versa.
        let mixed = FaultPlan::parse("crash:rank=0,phase=0;hang:rank=1,phase=1").unwrap();
        assert!(mixed.with_crashes_skipped(1).should_hang(1, 1, 0));
        assert!(mixed.with_hangs_skipped(1).should_crash(0, 0, 0));
    }

    #[test]
    fn flaky_burst_hits_consecutive_attempts_then_clears() {
        let plan = FaultPlan::parse("seed=5;flaky-burst:len=3,prob=0.3").unwrap();
        let mut burst_msgs = 0;
        for msg in 0..300u64 {
            let first = plan.decide(0, CommStep::DeltaPush, 0, msg, 0);
            if first == Some(FaultKind::FlakyBurst) {
                burst_msgs += 1;
                // The whole burst window fails, then the message clears.
                for a in 1..3 {
                    assert_eq!(
                        plan.decide(0, CommStep::DeltaPush, 0, msg, a),
                        Some(FaultKind::FlakyBurst)
                    );
                }
                assert_eq!(plan.decide(0, CommStep::DeltaPush, 0, msg, 3), None);
            } else {
                assert_eq!(first, None);
            }
        }
        assert!((40..200).contains(&burst_msgs), "prob=0.3 hit {burst_msgs}");
    }

    #[test]
    fn stall_decisions_are_op_level_and_deterministic() {
        let plan = FaultPlan::parse("seed=11;stall:rank=1,ms=40,prob=0.5").unwrap();
        // Stall rules never fire through the message-level path.
        for msg in 0..100 {
            assert_eq!(plan.decide(1, CommStep::Other, 0, msg, 0), None);
        }
        let hits = (0..1000u64)
            .filter(|&op| plan.decide_stall(1, CommStep::Other, 0, op).is_some())
            .count();
        assert!((300..700).contains(&hits), "prob=0.5 hit {hits}/1000");
        assert_eq!(
            plan.decide_stall(1, CommStep::Other, 0, 7),
            plan.decide_stall(1, CommStep::Other, 0, 7)
        );
        assert_eq!(plan.decide_stall(0, CommStep::Other, 0, 7), None);
        if let Some(d) = plan.decide_stall(1, CommStep::Other, 0, 3) {
            assert_eq!(d, std::time::Duration::from_millis(40));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_filtered() {
        let plan = FaultPlan::parse("seed=7;drop:step=delta_push,rank=2,prob=0.5").unwrap();
        for msg in 0..200u64 {
            let a = plan.decide(2, CommStep::DeltaPush, 0, msg, 0);
            let b = plan.decide(2, CommStep::DeltaPush, 0, msg, 0);
            assert_eq!(a, b, "same inputs must give the same decision");
            assert_eq!(plan.decide(1, CommStep::DeltaPush, 0, msg, 0), None);
            assert_eq!(plan.decide(2, CommStep::GhostRefresh, 0, msg, 0), None);
        }
        let hits = (0..1000u64)
            .filter(|&m| plan.decide(2, CommStep::DeltaPush, 0, m, 0).is_some())
            .count();
        assert!((300..700).contains(&hits), "prob=0.5 hit {hits}/1000");
    }

    #[test]
    fn crash_skipping_removes_rules_in_order() {
        let plan = FaultPlan::parse("crash:rank=0,phase=1;crash:rank=1,phase=3").unwrap();
        assert!(plan.should_crash(0, 1, 0));
        let after_one = plan.with_crashes_skipped(1);
        assert!(!after_one.should_crash(0, 1, 0));
        assert!(after_one.should_crash(1, 3, 0));
        assert!(plan.with_crashes_skipped(2).crashes.is_empty());
    }
}
