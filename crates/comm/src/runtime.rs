//! Job launcher: spawns one thread per rank and hands each a [`Comm`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::unbounded;

use crate::blackboard::Blackboard;
use crate::comm::Comm;
use crate::cost::CostModel;
use crate::envelope::Mailbox;
use crate::fault::FaultPlan;
use crate::health::{HealthBoard, HealthConfig};

/// Launch-time options for a simulated job.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Communication cost model for modeled-time accounting.
    pub cost: CostModel,
    /// Thread stack size in bytes (graph workloads recurse little, but the
    /// per-rank CSR builders can use deep temporary structures).
    pub stack_size: usize,
    /// Deterministic fault-injection schedule applied to every rank.
    /// `None` (the default) is a clean run with zero fault-path work.
    pub fault: Option<Arc<FaultPlan>>,
    /// Rank-health watchdog tuning: wait deadlines, retry/backoff
    /// policy, and hang-declaration ladder (see [`HealthConfig`]).
    pub health: HealthConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            cost: CostModel::default(),
            stack_size: 8 << 20,
            fault: None,
            health: HealthConfig::default(),
        }
    }
}

/// Run `f` on `p` simulated ranks and return the per-rank results in rank
/// order. Panics (with the original message) if any rank panics; peer ranks
/// blocked in communication calls abort via poisoning instead of hanging.
pub fn run<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    run_with(p, RunConfig::default(), f)
}

/// [`run`] with explicit configuration.
pub fn run_with<R, F>(p: usize, config: RunConfig, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    assert!(p > 0, "need at least one rank");
    let poison = Arc::new(AtomicBool::new(false));
    // The payload of the rank that panicked FIRST; secondary "poisoned"
    // panics from blocked peers are discarded in its favour.
    let first_payload: parking_lot::Mutex<Option<Box<dyn std::any::Any + Send>>> =
        parking_lot::Mutex::new(None);
    let blackboard = Arc::new(Blackboard::new(p, Arc::clone(&poison)));
    let board = Arc::new(HealthBoard::new(p));
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..p).map(|_| unbounded()).unzip();
    let senders = Arc::new(senders);

    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, (rx, slot)) in receivers.into_iter().zip(results.iter_mut()).enumerate() {
            let senders = Arc::clone(&senders);
            let blackboard = Arc::clone(&blackboard);
            let board = Arc::clone(&board);
            let poison = Arc::clone(&poison);
            let fault = config.fault.clone();
            let health = config.health.clone();
            let first_payload_ref = &first_payload;
            let builder = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(config.stack_size);
            let handle = builder
                .spawn_scoped(scope, move || {
                    let mailbox = Mailbox::new(rx, Arc::clone(&poison), p);
                    let comm = Comm::new(
                        rank,
                        p,
                        senders,
                        mailbox,
                        Arc::clone(&blackboard),
                        config.cost,
                        fault,
                        health,
                        board,
                        Arc::clone(&poison),
                    );
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm)));
                    match out {
                        Ok(r) => {
                            *slot = Some(r);
                            Ok(())
                        }
                        Err(payload) => {
                            let was_first = !poison.swap(true, Ordering::SeqCst);
                            if was_first {
                                *first_payload_ref.lock() = Some(payload);
                            }
                            blackboard.poison_notify();
                            Err(())
                        }
                    }
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        let mut any_failed = false;
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                _ => any_failed = true,
            }
        }
        if any_failed {
            let payload = first_payload
                .lock()
                .take()
                .unwrap_or_else(|| Box::new("rank thread failed without recorded payload"));
            std::panic::resume_unwind(payload);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("rank finished without result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceOp;

    #[test]
    fn ranks_are_numbered_and_sized() {
        let out = run(3, |c| (c.rank(), c.size()));
        assert_eq!(out, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn single_rank_job_works() {
        let out = run(1, |c| c.all_reduce(42u64, ReduceOp::Sum));
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn p2p_ring_passes_messages() {
        let p = 4;
        let out = run(p, |c| {
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            c.send(next, 7, vec![c.rank() as u64]);
            c.recv::<u64>(prev, 7)[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn p2p_matches_by_tag_out_of_order() {
        // Rank 0 sends two differently-tagged messages; rank 1 receives them
        // in the opposite order.
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![10u32]);
                c.send(1, 2, vec![20u32]);
                vec![]
            } else {
                let b = c.recv::<u32>(0, 2);
                let a = c.recv::<u32>(0, 1);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![10, 20]);
    }

    #[test]
    fn all_reduce_sum_min_max() {
        let out = run(4, |c| {
            let v = c.rank() as u64 + 1; // 1..=4
            (
                c.all_reduce(v, ReduceOp::Sum),
                c.all_reduce(v, ReduceOp::Min),
                c.all_reduce(v, ReduceOp::Max),
            )
        });
        for r in out {
            assert_eq!(r, (10, 1, 4));
        }
    }

    #[test]
    fn all_reduce_f64() {
        let out = run(3, |c| {
            c.all_reduce(0.5 * (c.rank() as f64 + 1.0), ReduceOp::Sum)
        });
        for r in out {
            assert!((r - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exscan_is_exclusive_prefix() {
        let out = run(4, |c| c.exscan_sum((c.rank() as u64 + 1) * 10));
        assert_eq!(out, vec![0, 10, 30, 60]);
    }

    #[test]
    fn all_gather_collects_in_rank_order() {
        let out = run(3, |c| c.all_gather(format!("r{}", c.rank())));
        for v in out {
            assert_eq!(v, vec!["r0", "r1", "r2"]);
        }
    }

    #[test]
    fn broadcast_takes_root_value() {
        let out = run(4, |c| {
            let v = if c.rank() == 2 { 99u64 } else { 0 };
            c.broadcast(2, v)
        });
        assert_eq!(out, vec![99; 4]);
    }

    #[test]
    fn gather_to_root_only_root_receives() {
        let out = run(3, |c| {
            c.gather_to_root(0, vec![c.rank() as u64; c.rank() + 1])
        });
        assert_eq!(out[0], Some(vec![vec![0], vec![1, 1], vec![2, 2, 2]]));
        assert_eq!(out[1], None);
        assert_eq!(out[2], None);
    }

    #[test]
    fn all_to_all_v_routes_buffers() {
        let p = 4;
        let out = run(p, |c| {
            let bufs: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![(c.rank() * 100 + dst) as u64])
                .collect();
            c.all_to_all_v(bufs)
        });
        for (rank, received) in out.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                assert_eq!(buf, &vec![(src * 100 + rank) as u64]);
            }
        }
    }

    #[test]
    fn all_to_all_v_handles_empty_buffers() {
        let p = 3;
        let out = run(p, |c| {
            // Only rank 0 sends anything, and only to rank 2.
            let mut bufs: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
            if c.rank() == 0 {
                bufs[2] = vec![5, 6];
            }
            c.all_to_all_v(bufs)
        });
        assert_eq!(out[2][0], vec![5, 6]);
        assert!(out[1].iter().all(|b| b.is_empty()));
    }

    #[test]
    fn repeated_collectives_do_not_cross_rounds() {
        let out = run(4, |c| {
            let mut acc = 0u64;
            for i in 0..50u64 {
                acc = acc.wrapping_add(c.all_reduce(i + c.rank() as u64, ReduceOp::Sum));
                c.barrier();
            }
            acc
        });
        let expected: u64 = (0..50u64).map(|i| 4 * i + 6).sum();
        assert_eq!(out, vec![expected; 4]);
    }

    #[test]
    fn stats_count_traffic() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![1u64, 2, 3]);
            } else {
                let _ = c.recv::<u64>(0, 3);
            }
            c.barrier();
            c.stats().snapshot()
        });
        assert_eq!(out[0].p2p_messages, 1);
        assert_eq!(out[0].p2p_bytes, 24);
        assert_eq!(out[1].p2p_messages, 0);
        assert_eq!(out[0].collective_calls, 1);
        assert!(out[0].modeled_seconds > 0.0);
    }

    #[test]
    #[should_panic(expected = "deliberate rank failure")]
    fn rank_panic_propagates_without_deadlock() {
        run(3, |c| {
            if c.rank() == 1 {
                panic!("deliberate rank failure");
            }
            // Other ranks block in a barrier rank 1 never reaches; they must
            // be released by poisoning rather than hanging forever.
            c.barrier();
        });
    }

    #[test]
    fn custom_cost_model_drives_modeled_time() {
        use crate::cost::CostModel;
        let free = run_with(
            2,
            RunConfig {
                cost: CostModel::free(),
                ..Default::default()
            },
            |c| {
                c.send((c.rank() + 1) % 2, 1, vec![0u64; 1000]);
                let _ = c.recv::<u64>((c.rank() + 1) % 2, 1);
                c.barrier();
                c.stats().modeled_seconds()
            },
        );
        assert_eq!(free, vec![0.0, 0.0]);
        let slow = run_with(
            2,
            RunConfig {
                cost: CostModel {
                    alpha: 1.0,
                    beta: 0.0,
                },
                ..Default::default()
            },
            |c| {
                c.send((c.rank() + 1) % 2, 1, vec![0u64; 1000]);
                let _ = c.recv::<u64>((c.rank() + 1) % 2, 1);
                c.stats().modeled_seconds()
            },
        );
        // One p2p message at α=1s.
        assert_eq!(slow, vec![1.0, 1.0]);
    }

    #[test]
    fn concurrent_jobs_are_isolated() {
        // Two simulated jobs running at once must not cross wires.
        let h1 = std::thread::spawn(|| run(3, |c| c.all_reduce(c.rank() as u64, ReduceOp::Sum)));
        let h2 = std::thread::spawn(|| run(4, |c| c.all_reduce(1u64, ReduceOp::Sum)));
        assert_eq!(h1.join().unwrap(), vec![3, 3, 3]);
        assert_eq!(h2.join().unwrap(), vec![4, 4, 4, 4]);
    }

    #[test]
    fn all_gather_of_heterogeneous_struct() {
        #[derive(Clone, Debug, PartialEq)]
        struct Info {
            rank: usize,
            label: String,
        }
        let out = run(3, |c| {
            c.all_gather(Info {
                rank: c.rank(),
                label: format!("r{}", c.rank()),
            })
        });
        for v in out {
            assert_eq!(v.len(), 3);
            assert_eq!(
                v[2],
                Info {
                    rank: 2,
                    label: "r2".into()
                }
            );
        }
    }

    #[test]
    fn exscan_f64() {
        let out = run(3, |c| c.exscan_sum(0.5 * (c.rank() as f64 + 1.0)));
        assert_eq!(out, vec![0.0, 0.5, 1.5]);
    }

    #[test]
    fn large_payload_roundtrip() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 2, (0..100_000u64).collect());
                0
            } else {
                let v = c.recv::<u64>(0, 2);
                v.iter().sum::<u64>()
            }
        });
        assert_eq!(out[1], (0..100_000u64).sum::<u64>());
    }

    #[test]
    fn neighbor_all_to_all_on_a_ring() {
        let p = 4;
        let out = run(p, |c| {
            let left = (c.rank() + p - 1) % p;
            let right = (c.rank() + 1) % p;
            let neighbors = vec![left, right];
            let bufs = vec![vec![c.rank() as u64 * 10], vec![c.rank() as u64 * 10 + 1]];
            c.neighbor_all_to_all_v(&neighbors, bufs)
        });
        // Rank 1 hears from 0 (its right-buffer: 0*10+1) and 2 (left: 20).
        assert_eq!(out[1], vec![vec![1], vec![20]]);
        assert_eq!(out[0], vec![vec![31], vec![10]]);
    }

    #[test]
    fn neighbor_all_to_all_with_empty_topology() {
        let out = run(3, |c| c.neighbor_all_to_all_v::<u64>(&[], Vec::new()));
        assert!(out.iter().all(|v| v.is_empty()));
    }

    #[test]
    fn neighbor_exchange_charges_fewer_messages_than_full() {
        let p = 4;
        let out = run(p, |c| {
            // Full all-to-all…
            let full: Vec<Vec<u64>> = (0..p).map(|_| vec![1]).collect();
            let _ = c.all_to_all_v(full);
            let after_full = c.stats().p2p_messages();
            // …vs a single-neighbor exchange.
            let nbr = [(c.rank() + 1) % p, (c.rank() + p - 1) % p];
            let _ = c.neighbor_all_to_all_v(&nbr, vec![vec![1u64], vec![2u64]]);
            let after_nbr = c.stats().p2p_messages();
            (after_full, after_nbr - after_full)
        });
        for (full, nbr) in out {
            assert_eq!(full, 3);
            assert_eq!(nbr, 2);
        }
    }

    #[test]
    fn buffered_same_stream_messages_keep_arrival_order() {
        // Regression: rank 0 floods rank 1 with many same-tag messages of
        // alternating types while rank 1 is busy buffering them behind an
        // unrelated receive; they must still be delivered in send order.
        let out = run(3, |c| {
            if c.rank() == 0 {
                for i in 0..50u64 {
                    c.send(1, 5, vec![i]); // u64 stream
                    c.send(1, 5, vec![i as f64]); // f64 stream, same tag
                }
                c.send(1, 6, vec![1u8]);
                vec![]
            } else if c.rank() == 1 {
                // First wait on rank 2 so rank 0's burst lands in `pending`.
                let _ = c.recv::<u8>(2, 9);
                let _ = c.recv::<u8>(0, 6);
                let mut vals = Vec::new();
                for _ in 0..50 {
                    vals.push(c.recv::<u64>(0, 5)[0]);
                    let f = c.recv::<f64>(0, 5)[0];
                    assert_eq!(f, *vals.last().unwrap() as f64);
                }
                vals
            } else {
                std::thread::sleep(std::time::Duration::from_millis(30));
                c.send(1, 9, vec![0u8]);
                vec![]
            }
        });
        assert_eq!(out[1], (0..50u64).collect::<Vec<_>>());
    }

    #[test]
    fn transient_faults_are_survived_with_identical_results() {
        use crate::fault::FaultPlan;
        let plan = Arc::new(
            FaultPlan::parse(
                "seed=3;drop:prob=0.1;duplicate:prob=0.1;truncate:prob=0.05;delay:prob=0.02",
            )
            .unwrap(),
        );
        let p = 4;
        let work = |c: &Comm| {
            let bufs: Vec<Vec<u64>> = (0..p)
                .map(|d| vec![(c.rank() * 100 + d) as u64; 3])
                .collect();
            let got = c.all_to_all_v(bufs);
            let sum: u64 = got.iter().flatten().sum();
            c.send((c.rank() + 1) % p, 11, vec![sum]);
            let prev = c.recv::<u64>((c.rank() + p - 1) % p, 11)[0];
            c.all_reduce(sum + prev, crate::reduce::ReduceOp::Sum)
        };
        let clean = run(p, work);
        let faulty_cfg = RunConfig {
            fault: Some(Arc::clone(&plan)),
            ..Default::default()
        };
        let faulty = run_with(p, faulty_cfg.clone(), work);
        assert_eq!(clean, faulty, "faults must be invisible to callers");

        // Same plan, same seed ⇒ the same injected faults, down to the
        // per-rank counters.
        let counters = |cfg: RunConfig| {
            run_with(p, cfg, |c| {
                work(c);
                c.stats().snapshot()
            })
        };
        let a = counters(faulty_cfg.clone());
        let b = counters(faulty_cfg);
        assert_eq!(a, b, "fault injection must be deterministic");
        let hits: u64 = a
            .iter()
            .map(|s| s.fault_drops + s.fault_duplicates + s.fault_truncations + s.fault_delays)
            .sum();
        assert!(hits > 0, "the plan should have injected something");
        let retries: u64 = a.iter().map(|s| s.fault_retries).sum();
        let lossy: u64 = a.iter().map(|s| s.fault_drops + s.fault_truncations).sum();
        assert_eq!(retries, lossy, "every drop/truncation is retried once");
    }

    #[test]
    fn injected_crash_propagates_typed_payload() {
        use crate::fault::{FaultPlan, RankCrashed};
        let plan = Arc::new(FaultPlan::parse("crash:rank=1,phase=0,op=2").unwrap());
        let res = std::panic::catch_unwind(|| {
            run_with(
                2,
                RunConfig {
                    fault: Some(plan),
                    ..Default::default()
                },
                |c| {
                    for _ in 0..4 {
                        c.barrier();
                    }
                },
            )
        });
        let payload = res.unwrap_err();
        let crash = payload
            .downcast_ref::<RankCrashed>()
            .expect("crash payload must survive propagation");
        assert_eq!((crash.rank, crash.phase, crash.op), (1, 0, 2));
    }

    #[test]
    fn injected_hang_is_declared_hung_by_a_peer() {
        use crate::fault::FaultPlan;
        use crate::health::{HealthConfig, RankHung};
        let plan = Arc::new(FaultPlan::parse("hang:rank=1,phase=0,op=2").unwrap());
        let health = HealthConfig {
            deadline: std::time::Duration::from_millis(50),
            max_retries: 1,
            ..HealthConfig::default()
        };
        let res = std::panic::catch_unwind(|| {
            run_with(
                2,
                RunConfig {
                    fault: Some(plan),
                    health,
                    ..Default::default()
                },
                |c| {
                    for _ in 0..4 {
                        c.barrier();
                    }
                },
            )
        });
        let payload = res.unwrap_err();
        let hung = payload
            .downcast_ref::<RankHung>()
            .expect("hang payload must survive propagation");
        assert_eq!(hung.rank, 1, "the injected rank is the one declared hung");
        assert_eq!((hung.phase, hung.op), (0, 2));
    }

    #[test]
    fn injected_hang_self_reports_in_single_rank_job() {
        use crate::fault::FaultPlan;
        use crate::health::{HealthConfig, RankHung};
        let plan = Arc::new(FaultPlan::parse("hang:rank=0,phase=0,op=1").unwrap());
        let health = HealthConfig {
            deadline: std::time::Duration::from_millis(30),
            max_retries: 1,
            ..HealthConfig::default()
        };
        let res = std::panic::catch_unwind(|| {
            run_with(
                1,
                RunConfig {
                    fault: Some(plan),
                    health,
                    ..Default::default()
                },
                |c| {
                    c.barrier();
                    c.barrier();
                },
            )
        });
        let payload = res.unwrap_err();
        let hung = payload
            .downcast_ref::<RankHung>()
            .expect("self-timeout must produce a typed RankHung");
        // No peer exists; the hung rank declares itself.
        assert_eq!((hung.rank, hung.detector), (0, 0));
    }

    #[test]
    fn stall_is_survived_as_a_straggler_not_a_hang() {
        use crate::fault::FaultPlan;
        use crate::health::HealthConfig;
        let work = |c: &Comm| {
            let mut acc = 0u64;
            for i in 0..3u64 {
                acc += c.all_reduce(i + c.rank() as u64, ReduceOp::Sum);
            }
            acc
        };
        let clean = run(2, work);
        // Rank 1 stalls 150 ms before every op while the peer's deadline
        // is 40 ms: the watchdog must classify it as a live straggler
        // (heartbeats keep flowing) and extend, never declare it hung.
        let plan = Arc::new(FaultPlan::parse("stall:rank=1,ms=150,prob=1").unwrap());
        let health = HealthConfig {
            deadline: std::time::Duration::from_millis(40),
            max_retries: 1,
            ..HealthConfig::default()
        };
        let out = run_with(
            2,
            RunConfig {
                fault: Some(plan),
                health,
                ..Default::default()
            },
            |c| {
                let acc = work(c);
                (acc, c.stats().snapshot())
            },
        );
        assert_eq!(vec![out[0].0, out[1].0], clean);
        let stalls: u64 = out.iter().map(|(_, s)| s.fault_stalls).sum();
        let stragglers: u64 = out.iter().map(|(_, s)| s.wd_stragglers).sum();
        assert!(stalls > 0, "the stall rule should have fired");
        assert!(
            stragglers > 0,
            "the peer's watchdog should have recorded straggler extensions"
        );
    }

    #[test]
    fn corrupt_payload_and_flaky_burst_are_survived() {
        use crate::fault::FaultPlan;
        let plan = Arc::new(
            FaultPlan::parse("seed=12;corrupt-payload:prob=0.15;flaky-burst:prob=0.1,len=2")
                .unwrap(),
        );
        let p = 4;
        let work = |c: &Comm| {
            let bufs: Vec<Vec<u64>> = (0..p)
                .map(|d| vec![(c.rank() * 10 + d) as u64; 4])
                .collect();
            let got = c.all_to_all_v(bufs);
            c.all_reduce(got.iter().flatten().sum::<u64>(), ReduceOp::Sum)
        };
        let clean = run(p, work);
        let faulty = run_with(
            p,
            RunConfig {
                fault: Some(Arc::clone(&plan)),
                ..Default::default()
            },
            |c| {
                let out = work(c);
                (out, c.stats().snapshot())
            },
        );
        for (rank, (out, _)) in faulty.iter().enumerate() {
            assert_eq!(*out, clean[rank], "faults must be invisible to callers");
        }
        let corruptions: u64 = faulty.iter().map(|(_, s)| s.fault_corruptions).sum();
        let rejects: u64 = faulty.iter().map(|(_, s)| s.checksum_rejects).sum();
        let bursts: u64 = faulty.iter().map(|(_, s)| s.fault_bursts).sum();
        let retries: u64 = faulty.iter().map(|(_, s)| s.fault_retries).sum();
        assert!(corruptions > 0, "the corrupt-payload rule should fire");
        assert_eq!(
            corruptions, rejects,
            "every injected corruption is caught by the receiver checksum"
        );
        assert!(bursts > 0, "the flaky-burst rule should fire");
        assert_eq!(
            retries,
            corruptions + bursts,
            "every corruption/burst drop is retried"
        );
        let step_retries: u64 = faulty
            .iter()
            .map(|(_, s)| s.step_retries.iter().sum::<u64>())
            .sum();
        assert_eq!(
            step_retries, retries,
            "retries reconcile with the per-step histogram"
        );
    }

    #[test]
    fn disabled_watchdog_times_out_with_a_plain_string() {
        use crate::health::HealthConfig;
        let res = std::panic::catch_unwind(|| {
            run_with(
                2,
                RunConfig {
                    health: HealthConfig {
                        deadline: std::time::Duration::from_millis(60),
                        ..HealthConfig::disabled()
                    },
                    ..Default::default()
                },
                |c| {
                    if c.rank() == 0 {
                        // Rank 1 never sends: rank 0's receive must hit the
                        // legacy hard deadline.
                        let _ = c.recv::<u64>(1, 5);
                    } else {
                        std::thread::sleep(std::time::Duration::from_millis(400));
                    }
                },
            )
        });
        let payload = res.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("receive timed out"),
            "disabled watchdog keeps the legacy string panic, got {msg:?}"
        );
    }

    #[test]
    fn mixed_p2p_and_collectives() {
        let p = 4;
        let out = run(p, |c| {
            // Shift a token around the ring, then verify with an all-reduce.
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            let mut token = c.rank() as u64;
            for _ in 0..p {
                c.send(next, 9, vec![token]);
                token = c.recv::<u64>(prev, 9)[0];
            }
            assert_eq!(token, c.rank() as u64);
            c.all_reduce(token, ReduceOp::Sum)
        });
        assert_eq!(out, vec![6; 4]);
    }
}
