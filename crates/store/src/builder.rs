//! Streaming slab construction with bounded memory.
//!
//! [`SlabBuilder`] is an [`EdgeSink`]: generators and file parsers emit
//! edges into it one at a time, it buffers at most `chunk_edges` triples
//! in RAM, and [`SlabBuilder::finish`] performs an external merge sort to
//! produce the on-disk CSR. Peak memory is `O(n + chunk_edges)` — the
//! per-vertex arrays (degree counts, offsets, halo) plus one chunk —
//! never `O(m)`.
//!
//! # Bit-identity with the in-memory path
//!
//! The result is **bit-identical** to `Csr::from_edge_list` over the same
//! edge stream. That hinges on reproducing `EdgeList::dedup_sum`'s f64
//! accumulation order:
//!
//! * `dedup_sum` canonicalizes each edge to `(min, max)` and adds weights
//!   per key *in raw emission order*.
//! * The builder canonicalizes at push, **stably** sorts each chunk (so
//!   equal keys keep emission order within a chunk), spills chunks
//!   chronologically, and k-way merges with the run index as tie-break —
//!   so equal keys pop in global emission order and their weights sum in
//!   the same sequence.
//! * Forward arcs `(a, b)` with `a ≤ b` leave the dedup merge already
//!   sorted by `(src, dst)`; reverse arcs `(b, a)` get their own external
//!   sort (keys are unique after dedup), and the final two-stream merge
//!   emits arcs in exactly the order `Csr::from_arcs` sorts into.

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use louvain_graph::ingest::{check_weight, IngestError, IngestPolicy, RepairStats};
use louvain_graph::sink::EdgeSink;
use louvain_graph::{VertexId, Weight};

use crate::err::StoreError;
use crate::layout::{
    align_up, pindex_samples, Fnv1a, SectionDesc, SlabHeader, DEFAULT_INDEX_STRIDE, HEADER_BYTES,
    SECTION_ALIGN, SECTION_COUNT,
};

/// Tuning knobs for [`SlabBuilder`].
#[derive(Debug, Clone)]
pub struct SlabOptions {
    /// Canonical triples buffered before a sorted run is spilled to disk.
    /// Peak builder RSS scales with this (24 bytes per buffered triple).
    pub chunk_edges: usize,
    /// `pindex` sampling stride (vertices per sample).
    pub index_stride: u64,
    /// How duplicate pairs and self-loops are treated.
    pub policy: IngestPolicy,
    /// Where spill runs live; defaults to `std::env::temp_dir()`.
    pub tmp_dir: Option<PathBuf>,
}

impl Default for SlabOptions {
    fn default() -> Self {
        Self {
            chunk_edges: 1 << 20,
            index_stride: DEFAULT_INDEX_STRIDE,
            policy: IngestPolicy::Lenient,
            tmp_dir: None,
        }
    }
}

/// What [`SlabBuilder::finish`] wrote.
#[derive(Debug, Clone, Copy)]
pub struct SlabSummary {
    pub num_vertices: u64,
    /// Deduplicated undirected edges (self-loops count once).
    pub num_edges: u64,
    /// Directed arcs stored (`2·edges − loops`).
    pub num_arcs: u64,
    /// Raw edges accepted by the sink before dedup.
    pub edges_in: u64,
    /// Total slab file size.
    pub file_bytes: u64,
    /// Non-zero only under [`IngestPolicy::Repair`].
    pub repair: RepairStats,
}

static BUILD_ID: AtomicU64 = AtomicU64::new(0);

const RECORD_BYTES: usize = 24;

/// Streaming, bounded-memory slab writer. See the module docs for the
/// external-sort design and the bit-identity argument.
pub struct SlabBuilder {
    n: u64,
    opts: SlabOptions,
    chunk: Vec<(VertexId, VertexId, Weight)>,
    runs: Vec<PathBuf>,
    tmp: Option<PathBuf>,
    edges_in: u64,
    loops_dropped: u64,
}

impl SlabBuilder {
    pub fn new(num_vertices: u64, opts: SlabOptions) -> Self {
        assert!(opts.chunk_edges > 0, "chunk_edges must be positive");
        assert!(opts.index_stride > 0, "index_stride must be positive");
        Self {
            n: num_vertices,
            opts,
            chunk: Vec::new(),
            runs: Vec::new(),
            tmp: None,
            edges_in: 0,
            loops_dropped: 0,
        }
    }

    pub fn num_vertices(&self) -> u64 {
        self.n
    }

    /// Edges accepted so far.
    pub fn edges_in(&self) -> u64 {
        self.edges_in
    }

    fn tmp_dir(&mut self) -> io::Result<PathBuf> {
        if let Some(dir) = &self.tmp {
            return Ok(dir.clone());
        }
        let base = self.opts.tmp_dir.clone().unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "louvain-slab-{}-{}",
            std::process::id(),
            BUILD_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        self.tmp = Some(dir.clone());
        Ok(dir)
    }

    fn spill(&mut self) -> io::Result<()> {
        if self.chunk.is_empty() {
            return Ok(());
        }
        // Stable sort: equal canonical keys keep their emission order
        // within the chunk (see the bit-identity argument above).
        self.chunk.sort_by_key(|x| (x.0, x.1));
        let dir = self.tmp_dir()?;
        let path = dir.join(format!("run-{:06}.tmp", self.runs.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for &(a, b, wt) in &self.chunk {
            write_record(&mut w, a, b, wt)?;
        }
        w.flush()?;
        self.runs.push(path);
        self.chunk.clear();
        Ok(())
    }

    /// Dedup-merge all runs, count arc degrees, and split into a forward
    /// stream (already in `(src, dst)` order) plus externally sorted
    /// reverse runs. Returns `(dedup_path, reverse_runs, counts,
    /// num_edges, num_arcs, dup_extra)`.
    #[allow(clippy::type_complexity)]
    fn dedup_pass(
        &mut self,
    ) -> Result<(PathBuf, Vec<PathBuf>, Vec<u64>, u64, u64, u64), StoreError> {
        let dir = self.tmp_dir()?;
        let dedup_path = dir.join("dedup.tmp");
        let mut out = BufWriter::new(File::create(&dedup_path)?);
        let mut counts = vec![0u64; self.n as usize];
        let mut num_edges = 0u64;
        let mut num_arcs = 0u64;
        let mut dup_extra = 0u64;

        let mut rev_chunk: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        let mut rev_runs: Vec<PathBuf> = Vec::new();
        let spill_rev = |chunk: &mut Vec<(VertexId, VertexId, Weight)>,
                         runs: &mut Vec<PathBuf>|
         -> io::Result<()> {
            if chunk.is_empty() {
                return Ok(());
            }
            // Keys are unique after dedup, so an unstable sort is fine.
            chunk.sort_unstable_by_key(|&(s, d, _)| (s, d));
            let path = dir.join(format!("rev-{:06}.tmp", runs.len()));
            let mut w = BufWriter::new(File::create(&path)?);
            for &(s, d, wt) in chunk.iter() {
                write_record(&mut w, s, d, wt)?;
            }
            w.flush()?;
            runs.push(path);
            chunk.clear();
            Ok(())
        };

        let mut merge = KWayMerge::open(&self.runs)?;
        let mut pending: Option<(VertexId, VertexId, Weight, u64)> = None;
        loop {
            let next = merge.next()?;
            match (&mut pending, next) {
                (Some((pa, pb, pw, copies)), Some((a, b, w))) if *pa == a && *pb == b => {
                    if self.opts.policy == IngestPolicy::Strict {
                        return Err(IngestError::DuplicateEdge {
                            u: a,
                            v: b,
                            line: 0,
                        }
                        .into());
                    }
                    *pw += w;
                    *copies += 1;
                }
                (slot, next) => {
                    if let Some((a, b, w, copies)) = slot.take() {
                        write_record(&mut out, a, b, w)?;
                        counts[a as usize] += 1;
                        num_arcs += 1;
                        if a != b {
                            counts[b as usize] += 1;
                            num_arcs += 1;
                            rev_chunk.push((b, a, w));
                            if rev_chunk.len() >= self.opts.chunk_edges {
                                spill_rev(&mut rev_chunk, &mut rev_runs)?;
                            }
                        }
                        num_edges += 1;
                        dup_extra += copies - 1;
                    }
                    match next {
                        Some((a, b, w)) => pending = Some((a, b, w, 1)),
                        None => break,
                    }
                }
            }
        }
        out.flush()?;
        spill_rev(&mut rev_chunk, &mut rev_runs)?;
        Ok((dedup_path, rev_runs, counts, num_edges, num_arcs, dup_extra))
    }

    /// Run the external merge and write the slab to `path`. Consumes the
    /// builder; spill files are removed on exit (including the error
    /// paths, via `Drop`).
    pub fn finish(mut self, path: &Path) -> Result<SlabSummary, StoreError> {
        self.spill()?;
        let (dedup_path, rev_runs, counts, num_edges, num_arcs, dup_extra) = self.dedup_pass()?;

        // Prefix-sum degrees into CSR offsets.
        let n = self.n as usize;
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + counts[v];
        }
        drop(counts);
        debug_assert_eq!(offsets[n], num_arcs);

        // Packed section layout.
        let stride = self.opts.index_stride;
        let samples = pindex_samples(self.n, stride);
        let lens: [u64; SECTION_COUNT] = [
            (self.n + 1) * 8,
            num_arcs * 8,
            num_arcs * 8,
            self.n * 8,
            samples * 8,
        ];
        let mut sections = [SectionDesc::default(); SECTION_COUNT];
        let mut cursor = HEADER_BYTES;
        for (i, s) in sections.iter_mut().enumerate() {
            s.offset = cursor;
            s.len = lens[i];
            cursor = align_up(cursor + lens[i], SECTION_ALIGN);
        }

        let mut out = SectionedWriter::create(path)?;
        out.write_all(&[0u8; HEADER_BYTES as usize])?; // placeholder header

        // Section 0: offsets.
        out.begin(sections[0].offset)?;
        for chunk in offsets.chunks(8192) {
            let bytes: Vec<u8> = chunk.iter().flat_map(|&o| o.to_le_bytes()).collect();
            out.write_section(&bytes)?;
        }
        sections[0].checksum = out.end();

        // Section 1: targets, streamed from the forward/reverse merge.
        // Weights ride along into a temp file (the weights section starts
        // only after the last target byte), and the halo accumulates in
        // emitted-row order — the same order `Csr::weighted_degree` sums.
        let dir = self.tmp_dir()?;
        let weights_path = dir.join("weights.tmp");
        let mut weights_tmp = BufWriter::new(File::create(&weights_path)?);
        // -0.0 is iterator-Sum's identity for floats, so the halo is
        // bit-identical to `Csr::weighted_degree` even for empty rows.
        let mut halo = vec![-0.0f64; n];
        out.begin(sections[1].offset)?;
        {
            let mut fwd = RunReader::open(&dedup_path)?;
            let mut rev = KWayMerge::open(&rev_runs)?;
            let mut fwd_cur = fwd.next()?;
            let mut rev_cur = rev.next()?;
            let mut written = 0u64;
            loop {
                let take_fwd = match (&fwd_cur, &rev_cur) {
                    (Some(f), Some(r)) => (f.0, f.1) < (r.0, r.1),
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let (src, dst, w) = if take_fwd {
                    let rec = fwd_cur.take().unwrap();
                    fwd_cur = fwd.next()?;
                    rec
                } else {
                    let rec = rev_cur.take().unwrap();
                    rev_cur = rev.next()?;
                    rec
                };
                out.write_section(&dst.to_le_bytes())?;
                weights_tmp.write_all(&w.to_le_bytes())?;
                halo[src as usize] += w;
                written += 1;
            }
            debug_assert_eq!(written, num_arcs);
        }
        sections[1].checksum = out.end();
        weights_tmp.flush()?;
        drop(weights_tmp);

        // Section 2: weights, copied from the temp file.
        out.begin(sections[2].offset)?;
        {
            let mut src = BufReader::new(File::open(&weights_path)?);
            let mut buf = [0u8; 64 * 1024];
            loop {
                let got = src.read(&mut buf)?;
                if got == 0 {
                    break;
                }
                out.write_section(&buf[..got])?;
            }
        }
        sections[2].checksum = out.end();

        // Section 3: halo (weighted degrees).
        out.begin(sections[3].offset)?;
        for chunk in halo.chunks(8192) {
            let bytes: Vec<u8> = chunk.iter().flat_map(|&h| h.to_le_bytes()).collect();
            out.write_section(&bytes)?;
        }
        sections[3].checksum = out.end();
        drop(halo);

        // Section 4: pindex (sampled offsets).
        out.begin(sections[4].offset)?;
        {
            let bytes: Vec<u8> = (0..samples)
                .flat_map(|i| offsets[(i * stride) as usize].to_le_bytes())
                .collect();
            out.write_section(&bytes)?;
        }
        sections[4].checksum = out.end();

        // Patch the real header in.
        let header = SlabHeader {
            num_vertices: self.n,
            num_arcs,
            num_edges,
            index_stride: stride,
            sections,
        };
        let file_bytes = out.patch_header(&header.encode())?;

        let repair = if self.opts.policy == IngestPolicy::Repair {
            RepairStats {
                duplicates_merged: dup_extra,
                self_loops_dropped: self.loops_dropped,
            }
        } else {
            RepairStats::default()
        };
        repair.publish();
        louvain_obs::gauge_set("mem.peak_rss_bytes", louvain_obs::peak_rss_bytes() as f64);

        Ok(SlabSummary {
            num_vertices: self.n,
            num_edges,
            num_arcs,
            edges_in: self.edges_in,
            file_bytes,
            repair,
        })
    }
}

impl EdgeSink for SlabBuilder {
    fn edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), IngestError> {
        if u >= self.n || v >= self.n {
            return Err(IngestError::OutOfRange {
                u,
                v,
                num_vertices: self.n,
            });
        }
        check_weight(w, 0)?;
        if u == v {
            match self.opts.policy {
                IngestPolicy::Strict => return Err(IngestError::SelfLoop { v, line: 0 }),
                IngestPolicy::Repair => {
                    self.loops_dropped += 1;
                    return Ok(());
                }
                IngestPolicy::Lenient => {}
            }
        }
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        self.chunk.push((a, b, w));
        self.edges_in += 1;
        if self.chunk.len() >= self.opts.chunk_edges {
            self.spill()?;
        }
        Ok(())
    }
}

impl Drop for SlabBuilder {
    fn drop(&mut self) {
        if let Some(dir) = &self.tmp {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn write_record(w: &mut impl Write, a: u64, b: u64, wt: f64) -> io::Result<()> {
    let mut rec = [0u8; RECORD_BYTES];
    rec[0..8].copy_from_slice(&a.to_le_bytes());
    rec[8..16].copy_from_slice(&b.to_le_bytes());
    rec[16..24].copy_from_slice(&wt.to_le_bytes());
    w.write_all(&rec)
}

/// Sequential reader over one spill run.
struct RunReader {
    inner: BufReader<File>,
}

impl RunReader {
    fn open(path: &Path) -> io::Result<Self> {
        Ok(Self {
            inner: BufReader::new(File::open(path)?),
        })
    }

    fn next(&mut self) -> io::Result<Option<(u64, u64, f64)>> {
        let mut rec = [0u8; RECORD_BYTES];
        match self.inner.read_exact(&mut rec) {
            Ok(()) => Ok(Some((
                u64::from_le_bytes(rec[0..8].try_into().unwrap()),
                u64::from_le_bytes(rec[8..16].try_into().unwrap()),
                f64::from_le_bytes(rec[16..24].try_into().unwrap()),
            ))),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// K-way merge of sorted runs, ordered by `(a, b, run_index)`. The run
/// index is the chronological spill order, so records with equal keys
/// pop in global emission order.
struct KWayMerge {
    readers: Vec<RunReader>,
    heap: BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>>,
    cur: Vec<Option<(u64, u64, f64)>>,
}

impl KWayMerge {
    fn open(paths: &[PathBuf]) -> io::Result<Self> {
        let mut readers = Vec::with_capacity(paths.len());
        let mut heap = BinaryHeap::with_capacity(paths.len());
        let mut cur = Vec::with_capacity(paths.len());
        for (i, p) in paths.iter().enumerate() {
            let mut r = RunReader::open(p)?;
            let rec = r.next()?;
            if let Some((a, b, _)) = rec {
                heap.push(std::cmp::Reverse((a, b, i)));
            }
            readers.push(r);
            cur.push(rec);
        }
        Ok(Self { readers, heap, cur })
    }

    fn next(&mut self) -> io::Result<Option<(u64, u64, f64)>> {
        let Some(std::cmp::Reverse((_, _, i))) = self.heap.pop() else {
            return Ok(None);
        };
        let rec = self.cur[i].take().expect("heap entry without a record");
        let refill = self.readers[i].next()?;
        if let Some((a, b, _)) = refill {
            self.heap.push(std::cmp::Reverse((a, b, i)));
        }
        self.cur[i] = refill;
        Ok(Some(rec))
    }
}

/// Sequential slab writer: tracks the absolute position, pads to section
/// offsets, and hashes each section as it streams through.
struct SectionedWriter {
    inner: BufWriter<File>,
    pos: u64,
    hash: Fnv1a,
}

impl SectionedWriter {
    fn create(path: &Path) -> io::Result<Self> {
        Ok(Self {
            inner: BufWriter::new(File::create(path)?),
            pos: 0,
            hash: Fnv1a::default(),
        })
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Pad with zeros up to `offset` and reset the section hash.
    fn begin(&mut self, offset: u64) -> io::Result<()> {
        debug_assert!(offset >= self.pos, "sections must be written in order");
        let pad = (offset - self.pos) as usize;
        self.write_all(&vec![0u8; pad])?;
        self.hash = Fnv1a::default();
        Ok(())
    }

    fn write_section(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.write_all(bytes)
    }

    fn end(&mut self) -> u64 {
        self.hash.finish()
    }

    /// Flush, rewrite the header at offset 0, and return the file length.
    fn patch_header(mut self, header: &[u8]) -> io::Result<u64> {
        let len = self.pos;
        self.inner.flush()?;
        let mut file = self.inner.into_inner().map_err(|e| e.into_error())?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(header)?;
        file.sync_all()?;
        Ok(len)
    }
}
