//! Read-only memory mapping with a portable fallback.
//!
//! On Unix this wraps raw `mmap`/`munmap` (linked through std's libc, so
//! no external crate is needed). Elsewhere it reads the file into a
//! `u64`-backed buffer, which guarantees the same 8-byte base alignment
//! the zero-copy section views rely on.

use std::fs::File;
use std::io;

/// An immutable byte view of an entire file, 8-byte aligned at its base.
#[derive(Debug)]
pub struct Mapping {
    inner: Inner,
}

#[cfg(unix)]
#[derive(Debug)]
enum Inner {
    Mapped {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    Empty,
}

#[cfg(not(unix))]
#[derive(Debug)]
enum Inner {
    Owned { buf: Vec<u64>, len: usize },
    Empty,
}

// The mapping is read-only and never mutated after creation.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Mapping {
    /// Map (or read) the whole of `file`.
    #[cfg(unix)]
    pub fn of(file: &File) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(Self {
                inner: Inner::Empty,
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            inner: Inner::Mapped { ptr, len },
        })
    }

    /// Map (or read) the whole of `file`.
    #[cfg(not(unix))]
    pub fn of(file: &File) -> io::Result<Self> {
        use std::io::Read;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(Self {
                inner: Inner::Empty,
            });
        }
        let mut buf = vec![0u64; len.div_ceil(8)];
        let bytes =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, buf.len() * 8) };
        let mut reader = file;
        reader.read_exact(&mut bytes[..len])?;
        Ok(Self {
            inner: Inner::Owned { buf, len },
        })
    }

    /// The file contents. Base pointer is page-aligned (Unix) or
    /// 8-byte aligned (fallback).
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            #[cfg(not(unix))]
            Inner::Owned { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
            },
            Inner::Empty => &[],
        }
    }

    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    #[allow(dead_code)] // pairs with len(); exercised in tests
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("louvain-mmap-test-{}", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = Mapping::of(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        assert_eq!(map.bytes().as_ptr() as usize % 8, 0, "base not 8-aligned");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("louvain-mmap-empty-{}", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let map = Mapping::of(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
