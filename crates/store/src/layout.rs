//! Byte-exact slab layout: header, section table, alignment, checksums.
//!
//! A slab file is a fixed 192-byte header followed by five sections, each
//! aligned to [`SECTION_ALIGN`] bytes and individually checksummed:
//!
//! | # | section   | contents                                   | bytes        |
//! |---|-----------|--------------------------------------------|--------------|
//! | 0 | `offsets` | CSR row offsets, `u64`                     | `(n+1) * 8`  |
//! | 1 | `targets` | arc destinations (global ids), `u64`       | `arcs * 8`   |
//! | 2 | `weights` | arc weights, `f64`                         | `arcs * 8`   |
//! | 3 | `halo`    | per-vertex weighted degrees, `f64`         | `n * 8`      |
//! | 4 | `pindex`  | `offsets` sampled every `index_stride`     | `samples * 8`|
//!
//! All integers and floats are little-endian. The header layout is
//!
//! ```text
//! 0x00  magic            u64   signature + version byte (low byte)
//! 0x08  num_vertices     u64
//! 0x10  num_arcs         u64   directed arcs (2·edges − loops)
//! 0x18  num_edges        u64   undirected edges (loops count once)
//! 0x20  index_stride     u64   pindex sampling stride
//! 0x28  section_count    u64   always 5
//! 0x30  5 × (offset u64, len u64, checksum u64)   section table
//! 0xA8  zero padding to 192 bytes
//! ```
//!
//! The `halo` section makes every vertex's weighted degree available
//! without reading its row — a rank loading only its byte ranges can look
//! up ghost-vertex degrees locally instead of exchanging them. The
//! `pindex` section lets a rank locate edge-balanced partition boundaries
//! with a windowed binary search instead of reading the whole `offsets`
//! section (see `slab::load_rank`).

use crate::err::StoreError;

/// File magic: 7-byte signature `LVSLABC` plus the version byte `'1'`.
pub const MAGIC: u64 = 0x4C56_534C_4142_4331;
/// Signature part of the magic (version byte masked off).
pub const MAGIC_SIGNATURE: u64 = MAGIC & !0xFF;
/// Current format version byte (the low byte of [`MAGIC`]).
pub const FORMAT_VERSION: u8 = (MAGIC & 0xFF) as u8;
/// Every section offset is a multiple of this (and of the page-aligned
/// mmap base), so zero-copy `u64`/`f64` views are always aligned.
pub const SECTION_ALIGN: u64 = 64;
/// Fixed header size — itself a multiple of [`SECTION_ALIGN`].
pub const HEADER_BYTES: u64 = 192;
/// Number of sections in format version 1.
pub const SECTION_COUNT: usize = 5;
/// Default `pindex` sampling stride (vertices per sample).
pub const DEFAULT_INDEX_STRIDE: u64 = 4096;

/// Section names, in file order (also the section-table order).
pub const SECTION_NAMES: [&str; SECTION_COUNT] =
    ["offsets", "targets", "weights", "halo", "pindex"];

pub const SEC_OFFSETS: usize = 0;
pub const SEC_TARGETS: usize = 1;
pub const SEC_WEIGHTS: usize = 2;
pub const SEC_HALO: usize = 3;
pub const SEC_PINDEX: usize = 4;

/// One section-table entry: where the section lives and what it hashes to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionDesc {
    pub offset: u64,
    pub len: u64,
    pub checksum: u64,
}

/// Decoded slab header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlabHeader {
    pub num_vertices: u64,
    pub num_arcs: u64,
    pub num_edges: u64,
    pub index_stride: u64,
    pub sections: [SectionDesc; SECTION_COUNT],
}

impl SlabHeader {
    /// Serialize to the fixed 192-byte on-disk form.
    pub fn encode(&self) -> [u8; HEADER_BYTES as usize] {
        let mut buf = [0u8; HEADER_BYTES as usize];
        let mut pos = 0usize;
        let mut put = |buf: &mut [u8], v: u64| {
            buf[pos..pos + 8].copy_from_slice(&v.to_le_bytes());
            pos += 8;
        };
        put(&mut buf, MAGIC);
        put(&mut buf, self.num_vertices);
        put(&mut buf, self.num_arcs);
        put(&mut buf, self.num_edges);
        put(&mut buf, self.index_stride);
        put(&mut buf, SECTION_COUNT as u64);
        for s in &self.sections {
            put(&mut buf, s.offset);
            put(&mut buf, s.len);
            put(&mut buf, s.checksum);
        }
        buf
    }

    /// Parse and validate the fixed-size prefix of a slab file. Checks
    /// magic, version, section count, and alignment — but not bounds or
    /// checksums, which need the rest of the file.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if (bytes.len() as u64) < HEADER_BYTES {
            return Err(StoreError::Truncated {
                what: "header",
                need: HEADER_BYTES,
                have: bytes.len() as u64,
            });
        }
        let mut pos = 0usize;
        let mut get = || {
            let v = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            pos += 8;
            v
        };
        let magic = get();
        if magic & !0xFF != MAGIC_SIGNATURE {
            return Err(StoreError::BadMagic { found: magic });
        }
        if magic != MAGIC {
            return Err(StoreError::WrongVersion {
                found: (magic & 0xFF) as u8,
            });
        }
        let num_vertices = get();
        let num_arcs = get();
        let num_edges = get();
        let index_stride = get();
        let section_count = get();
        if section_count != SECTION_COUNT as u64 {
            return Err(StoreError::Corrupt {
                what: format!("section count {section_count}, expected {SECTION_COUNT}"),
            });
        }
        if index_stride == 0 {
            return Err(StoreError::Corrupt {
                what: "index stride is zero".into(),
            });
        }
        let mut sections = [SectionDesc::default(); SECTION_COUNT];
        for (i, s) in sections.iter_mut().enumerate() {
            s.offset = get();
            s.len = get();
            s.checksum = get();
            if s.offset % SECTION_ALIGN != 0 {
                return Err(StoreError::MisalignedSection {
                    section: SECTION_NAMES[i],
                    offset: s.offset,
                });
            }
        }
        Ok(Self {
            num_vertices,
            num_arcs,
            num_edges,
            index_stride,
            sections,
        })
    }

    /// The expected byte length of each section given the header counts.
    pub fn expected_section_lens(&self) -> [u64; SECTION_COUNT] {
        [
            (self.num_vertices + 1) * 8,
            self.num_arcs * 8,
            self.num_arcs * 8,
            self.num_vertices * 8,
            pindex_samples(self.num_vertices, self.index_stride) * 8,
        ]
    }

    /// Cross-check the section table against the counts and the file
    /// length: expected lengths, in-bounds extents, and the canonical
    /// packed layout (each section directly after the previous, aligned).
    pub fn validate_extents(&self, file_len: u64) -> Result<(), StoreError> {
        let expected = self.expected_section_lens();
        let mut cursor = HEADER_BYTES;
        for i in 0..SECTION_COUNT {
            let s = &self.sections[i];
            if s.len != expected[i] {
                return Err(StoreError::Corrupt {
                    what: format!(
                        "section {} has length {}, expected {} from the header counts",
                        SECTION_NAMES[i], s.len, expected[i]
                    ),
                });
            }
            if s.offset != cursor {
                return Err(StoreError::Corrupt {
                    what: format!(
                        "section {} at offset {}, expected {} (packed layout)",
                        SECTION_NAMES[i], s.offset, cursor
                    ),
                });
            }
            let end = s.offset.checked_add(s.len).ok_or(StoreError::Corrupt {
                what: format!("section {} extent overflows", SECTION_NAMES[i]),
            })?;
            if end > file_len {
                return Err(StoreError::Truncated {
                    what: SECTION_NAMES[i],
                    need: end,
                    have: file_len,
                });
            }
            cursor = align_up(end, SECTION_ALIGN);
        }
        Ok(())
    }
}

/// Number of `pindex` samples: `offsets[i * stride]` for every sample
/// index with `i * stride <= n` (the final offset `offsets[n]` is also in
/// the header as `num_arcs`).
pub fn pindex_samples(num_vertices: u64, stride: u64) -> u64 {
    num_vertices / stride + 1
}

/// Round `v` up to the next multiple of `align` (a power of two).
pub fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

/// FNV-1a over little-endian 64-bit words. Section lengths are always a
/// multiple of 8, so hashing words instead of bytes is both well-defined
/// and ~8x cheaper on the multi-hundred-megabyte sections of large slabs.
pub fn fnv1a_words(bytes: &[u8]) -> u64 {
    debug_assert_eq!(bytes.len() % 8, 0, "sections are 8-byte multiples");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in bytes.chunks_exact(8) {
        h ^= u64::from_le_bytes(chunk.try_into().unwrap());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Streaming form of [`fnv1a_words`] for writers that hash as they go.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    pub fn update(&mut self, bytes: &[u8]) {
        debug_assert_eq!(bytes.len() % 8, 0);
        for chunk in bytes.chunks_exact(8) {
            self.0 ^= u64::from_le_bytes(chunk.try_into().unwrap());
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> SlabHeader {
        let mut h = SlabHeader {
            num_vertices: 10,
            num_arcs: 40,
            num_edges: 21,
            index_stride: DEFAULT_INDEX_STRIDE,
            sections: [SectionDesc::default(); SECTION_COUNT],
        };
        let lens = h.expected_section_lens();
        let mut cursor = HEADER_BYTES;
        for (i, &len) in lens.iter().enumerate() {
            h.sections[i] = SectionDesc {
                offset: cursor,
                len,
                checksum: 0x1111 * i as u64,
            };
            cursor = align_up(cursor + len, SECTION_ALIGN);
        }
        h
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = header();
        let decoded = SlabHeader::decode(&h.encode()).unwrap();
        assert_eq!(h, decoded);
    }

    #[test]
    fn magic_split_is_consistent() {
        assert_eq!(MAGIC_SIGNATURE | FORMAT_VERSION as u64, MAGIC);
        assert_eq!(FORMAT_VERSION, b'1');
    }

    #[test]
    fn short_header_is_truncated() {
        assert!(matches!(
            SlabHeader::decode(&[0u8; 16]),
            Err(StoreError::Truncated { what: "header", .. })
        ));
    }

    #[test]
    fn foreign_magic_is_bad_magic() {
        let mut bytes = header().encode();
        bytes[..8].copy_from_slice(&0xdead_beefu64.to_le_bytes());
        assert!(matches!(
            SlabHeader::decode(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn same_signature_other_version_is_wrong_version() {
        let mut bytes = header().encode();
        bytes[..8].copy_from_slice(&(MAGIC_SIGNATURE | b'2' as u64).to_le_bytes());
        assert!(matches!(
            SlabHeader::decode(&bytes),
            Err(StoreError::WrongVersion { found: b'2' })
        ));
    }

    #[test]
    fn unaligned_section_offset_rejected() {
        let mut h = header();
        h.sections[2].offset += 8;
        assert!(matches!(
            SlabHeader::decode(&h.encode()),
            Err(StoreError::MisalignedSection {
                section: "weights",
                ..
            })
        ));
    }

    #[test]
    fn extent_validation_catches_truncation_and_drift() {
        let h = header();
        let full = h.sections[SECTION_COUNT - 1].offset + h.sections[SECTION_COUNT - 1].len;
        assert!(h.validate_extents(full).is_ok());
        assert!(matches!(
            h.validate_extents(full - 8),
            Err(StoreError::Truncated { .. })
        ));
        let mut drifted = h.clone();
        drifted.sections[1].len += 8;
        assert!(matches!(
            drifted.validate_extents(full + 64),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
    }

    #[test]
    fn streaming_hash_matches_one_shot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(4096).collect();
        let mut h = Fnv1a::default();
        for chunk in data.chunks(40) {
            h.update(chunk);
        }
        // 4096 % 40 != 0 — chunks(40) yields a 16-byte tail, still a
        // multiple of 8.
        assert_eq!(h.finish(), fnv1a_words(&data));
    }

    #[test]
    fn pindex_sample_count() {
        assert_eq!(pindex_samples(0, 4096), 1);
        assert_eq!(pindex_samples(4095, 4096), 1);
        assert_eq!(pindex_samples(4096, 4096), 2);
        assert_eq!(pindex_samples(10_000, 4096), 3);
    }
}
