//! `louvain-store`: out-of-core slab storage for distributed Louvain.
//!
//! A *slab* is a versioned, checksummed on-disk CSR (see [`layout`] for
//! the byte-exact format). It decouples graph size from RAM in both
//! directions:
//!
//! * **Writing** — [`SlabBuilder`] is an `EdgeSink`; the streamed
//!   generator paths (`rmat_stream`, `ssca2_stream`, ...) and file
//!   parsers emit edges into it with `O(n + chunk)` peak memory, and an
//!   external merge sort produces a CSR **bit-identical** to
//!   `Csr::from_edge_list` over the same stream.
//! * **Reading** — [`Slab::open`] memory-maps the whole file with
//!   zero-copy section views; [`load_rank`] reads only one rank's byte
//!   ranges (the paper's MPI-I/O pattern), reconstructing the exact
//!   `LocalGraph` that `LocalGraph::scatter` would have produced.

pub mod builder;
pub mod err;
pub mod layout;
mod mmap;
pub mod slab;

pub use builder::{SlabBuilder, SlabOptions, SlabSummary};
pub use err::StoreError;
pub use layout::{
    SectionDesc, SlabHeader, DEFAULT_INDEX_STRIDE, FORMAT_VERSION, HEADER_BYTES, MAGIC,
    MAGIC_SIGNATURE, SECTION_ALIGN, SECTION_NAMES,
};
pub use slab::{load_rank, peek_header, RankSlice, Slab};

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_graph::csr::Csr;
    use louvain_graph::dist::LocalGraph;
    use louvain_graph::edgelist::EdgeList;
    use louvain_graph::gen::{
        lfr, lfr_stream, rmat, rmat_stream, ssca2, ssca2_stream, LfrParams, RmatParams, Ssca2Params,
    };
    use louvain_graph::ingest::{IngestError, IngestPolicy};
    use louvain_graph::partition::VertexPartition;
    use louvain_graph::sink::EdgeSink;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static TEST_ID: AtomicU64 = AtomicU64::new(0);

    /// A unique temp path, removed by `TempPath::drop`.
    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            Self(std::env::temp_dir().join(format!(
                "louvain-store-test-{}-{}-{tag}.slab",
                std::process::id(),
                TEST_ID.fetch_add(1, Ordering::Relaxed)
            )))
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn small_opts() -> SlabOptions {
        SlabOptions {
            // Tiny chunks force multi-run external merges in every test.
            chunk_edges: 64,
            index_stride: 8,
            ..SlabOptions::default()
        }
    }

    fn build_slab(
        n: u64,
        stream: impl FnOnce(&mut SlabBuilder) -> Result<(), IngestError>,
        opts: SlabOptions,
        path: &TempPath,
    ) -> SlabSummary {
        let mut b = SlabBuilder::new(n, opts);
        stream(&mut b).unwrap();
        b.finish(&path.0).unwrap()
    }

    #[test]
    fn rmat_slab_is_bit_identical_to_in_memory_csr() {
        let p = RmatParams::social(10, 8, 42);
        let expected = rmat(p).graph;
        let path = TempPath::new("rmat");
        let summary = build_slab(
            expected.num_vertices() as u64,
            |b| rmat_stream(p, b),
            small_opts(),
            &path,
        );
        let slab = Slab::open(&path.0).unwrap();
        assert_eq!(slab.num_vertices() as usize, expected.num_vertices());
        assert_eq!(slab.num_arcs() as usize, expected.num_arcs());
        assert_eq!(slab.num_edges() as usize, expected.num_edges());
        assert_eq!(summary.num_arcs as usize, expected.num_arcs());
        let roundtrip = slab.to_csr();
        // PartialEq would accept -0.0 == 0.0; compare bit patterns too.
        assert_eq!(roundtrip, expected);
        assert!(roundtrip
            .weights()
            .iter()
            .zip(expected.weights())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // The halo section is the weighted-degree table, bit for bit.
        for v in 0..expected.num_vertices() {
            assert_eq!(
                slab.halo()[v].to_bits(),
                expected.weighted_degree(v as u64).to_bits(),
                "halo[{v}]"
            );
        }
    }

    #[test]
    fn ssca2_slab_round_trips() {
        let p = Ssca2Params::paper(2_000, 5);
        let expected = ssca2(p).graph;
        let path = TempPath::new("ssca2");
        build_slab(
            expected.num_vertices() as u64,
            |b| ssca2_stream(p, b).map(|_| ()),
            small_opts(),
            &path,
        );
        assert_eq!(Slab::open(&path.0).unwrap().to_csr(), expected);
    }

    #[test]
    fn single_chunk_and_multi_chunk_builds_are_identical_files() {
        let p = LfrParams::small(600, 3);
        let big = TempPath::new("one-chunk");
        let small = TempPath::new("many-chunks");
        let n = 600;
        build_slab(
            n,
            |b| lfr_stream(p, b).map(|_| ()),
            SlabOptions::default(),
            &big,
        );
        build_slab(n, |b| lfr_stream(p, b).map(|_| ()), small_opts(), &small);
        // index_stride differs between the two options, so compare the
        // graph payload sections rather than whole files.
        let a = Slab::open(&big.0).unwrap();
        let b = Slab::open(&small.0).unwrap();
        assert_eq!(a.offsets(), b.offsets());
        assert_eq!(a.targets(), b.targets());
        assert!(a
            .weights()
            .iter()
            .zip(b.weights())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn partition_matches_balanced_edges() {
        let p = RmatParams::social(9, 6, 7);
        let g = rmat(p).graph;
        let path = TempPath::new("partition");
        build_slab(
            g.num_vertices() as u64,
            |b| rmat_stream(p, b),
            small_opts(),
            &path,
        );
        let slab = Slab::open(&path.0).unwrap();
        for ranks in [1, 2, 3, 8, 17] {
            assert_eq!(
                slab.partition(ranks),
                VertexPartition::balanced_edges(&g, ranks),
                "p={ranks}"
            );
        }
    }

    #[test]
    fn mapped_local_graphs_match_scatter() {
        let p = LfrParams::small(500, 9);
        let g = lfr(p).graph;
        let path = TempPath::new("scatter");
        build_slab(500, |b| lfr_stream(p, b).map(|_| ()), small_opts(), &path);
        let slab = Slab::open(&path.0).unwrap();
        for ranks in [1, 2, 8] {
            let part = slab.partition(ranks);
            let scattered = LocalGraph::scatter(&g, &part);
            for (rank, expected) in scattered.iter().enumerate() {
                let got = slab.local_graph(&part, rank);
                assert_eq!(
                    got.csr_parts(),
                    expected.csr_parts(),
                    "p={ranks} rank {rank}"
                );
            }
        }
    }

    #[test]
    fn ranged_loads_match_scatter_and_read_less() {
        let p = RmatParams::social(9, 8, 3);
        let g = rmat(p).graph;
        let path = TempPath::new("ranged");
        build_slab(
            g.num_vertices() as u64,
            |b| rmat_stream(p, b),
            small_opts(),
            &path,
        );
        let slab = Slab::open(&path.0).unwrap();
        for ranks in [1, 2, 8] {
            let part = slab.partition(ranks);
            let scattered = LocalGraph::scatter(&g, &part);
            for (rank, expected) in scattered.iter().enumerate() {
                let slice = load_rank(&path.0, rank, ranks).unwrap();
                assert_eq!(slice.local.partition(), &part, "p={ranks} rank {rank}");
                assert_eq!(
                    slice.local.csr_parts(),
                    expected.csr_parts(),
                    "p={ranks} rank {rank}"
                );
                assert_eq!(slice.halo.len() as u64, slab.num_vertices());
                if ranks > 1 {
                    assert!(
                        slice.bytes_read < slab.mapped_bytes(),
                        "p={ranks} rank {rank}: ranged load read the whole file"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_graph_slab() {
        let path = TempPath::new("empty");
        let summary = build_slab(5, |_| Ok(()), small_opts(), &path);
        assert_eq!(summary.num_edges, 0);
        let slab = Slab::open(&path.0).unwrap();
        assert_eq!(slab.num_arcs(), 0);
        assert_eq!(slab.offsets(), &[0; 6]);
        assert_eq!(slab.partition(2), VertexPartition::balanced_vertices(5, 2));
        let g = slab.to_csr();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_arcs(), 0);
        let slice = load_rank(&path.0, 1, 2).unwrap();
        assert_eq!(slice.local.num_local_arcs(), 0);
    }

    #[test]
    fn self_loops_and_duplicates_follow_lenient_semantics() {
        // Same stream the EdgeList/dedup_sum path would see.
        let mut el = EdgeList::new(4);
        let edges = [(0, 1, 1.0), (1, 0, 2.0), (2, 2, 3.0), (1, 3, 0.5)];
        let path = TempPath::new("lenient");
        let summary = build_slab(
            4,
            |b| {
                for &(u, v, w) in &edges {
                    b.edge(u, v, w)?;
                }
                Ok(())
            },
            small_opts(),
            &path,
        );
        for &(u, v, w) in &edges {
            el.push(u, v, w);
        }
        let expected = Csr::from_edge_list(el);
        assert_eq!(Slab::open(&path.0).unwrap().to_csr(), expected);
        assert_eq!(summary.num_edges, 3);
        assert_eq!(summary.edges_in, 4);
        assert!(!summary.repair.any());
    }

    #[test]
    fn strict_policy_rejects_loops_and_duplicates() {
        let opts = SlabOptions {
            policy: IngestPolicy::Strict,
            ..small_opts()
        };
        let mut b = SlabBuilder::new(4, opts.clone());
        assert!(matches!(
            b.edge(2, 2, 1.0),
            Err(IngestError::SelfLoop { v: 2, .. })
        ));
        drop(b);

        let path = TempPath::new("strict-dup");
        let mut b = SlabBuilder::new(4, opts);
        b.edge(0, 1, 1.0).unwrap();
        b.edge(1, 0, 1.0).unwrap(); // same undirected pair
        let err = b.finish(&path.0).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Ingest(IngestError::DuplicateEdge { u: 0, v: 1, .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn repair_policy_merges_and_drops_with_stats() {
        let path = TempPath::new("repair");
        let summary = build_slab(
            4,
            |b| {
                b.edge(0, 1, 1.0)?;
                b.edge(1, 0, 2.0)?;
                b.edge(0, 1, 0.5)?;
                b.edge(2, 2, 9.0)?;
                b.edge(1, 3, 1.0)?;
                Ok(())
            },
            SlabOptions {
                policy: IngestPolicy::Repair,
                ..small_opts()
            },
            &path,
        );
        assert_eq!(summary.repair.duplicates_merged, 2);
        assert_eq!(summary.repair.self_loops_dropped, 1);
        assert_eq!(summary.num_edges, 2);
        let g = Slab::open(&path.0).unwrap().to_csr();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.self_loop(2), 0.0);
        let w01: f64 = g.neighbors(0).map(|(_, w)| w).sum();
        assert_eq!(w01, 3.5);
    }

    #[test]
    fn out_of_range_and_bad_weights_are_typed_errors() {
        let mut b = SlabBuilder::new(3, small_opts());
        assert!(matches!(
            b.edge(0, 3, 1.0),
            Err(IngestError::OutOfRange { .. })
        ));
        assert!(matches!(
            b.edge(0, 1, f64::NAN),
            Err(IngestError::BadWeight { .. })
        ));
    }

    // --- corruption coverage: every defect is its own typed error ---

    fn valid_slab_bytes(path: &TempPath) -> Vec<u8> {
        let p = LfrParams::small(120, 1);
        build_slab(120, |b| lfr_stream(p, b).map(|_| ()), small_opts(), path);
        std::fs::read(&path.0).unwrap()
    }

    #[test]
    fn truncated_file_is_truncated_error() {
        let path = TempPath::new("trunc");
        let bytes = valid_slab_bytes(&path);
        std::fs::write(&path.0, &bytes[..100]).unwrap();
        assert!(matches!(
            Slab::open(&path.0),
            Err(StoreError::Truncated { what: "header", .. })
        ));
        std::fs::write(&path.0, &bytes[..bytes.len() - 16]).unwrap();
        assert!(matches!(
            Slab::open(&path.0),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            load_rank(&path.0, 0, 2),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_magic_is_bad_magic_error() {
        let path = TempPath::new("magic");
        let mut bytes = valid_slab_bytes(&path);
        bytes[..8].copy_from_slice(&0x1122_3344_5566_7788u64.to_le_bytes());
        std::fs::write(&path.0, &bytes).unwrap();
        assert!(matches!(
            Slab::open(&path.0),
            Err(StoreError::BadMagic { .. })
        ));
        assert!(matches!(
            load_rank(&path.0, 0, 2),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_is_wrong_version_error() {
        let path = TempPath::new("version");
        let mut bytes = valid_slab_bytes(&path);
        bytes[..8].copy_from_slice(&(layout::MAGIC_SIGNATURE | b'9' as u64).to_le_bytes());
        std::fs::write(&path.0, &bytes).unwrap();
        assert!(matches!(
            Slab::open(&path.0),
            Err(StoreError::WrongVersion { found: b'9' })
        ));
    }

    #[test]
    fn flipped_payload_bit_is_checksum_mismatch() {
        let path = TempPath::new("checksum");
        let mut bytes = valid_slab_bytes(&path);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path.0, &bytes).unwrap();
        assert!(matches!(
            Slab::open(&path.0),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_halo_fails_ranged_load_too() {
        let path = TempPath::new("halo-checksum");
        let mut bytes = valid_slab_bytes(&path);
        let header = layout::SlabHeader::decode(&bytes).unwrap();
        let halo = &header.sections[layout::SEC_HALO];
        bytes[(halo.offset + halo.len / 2) as usize] ^= 0x01;
        std::fs::write(&path.0, &bytes).unwrap();
        assert!(matches!(
            load_rank(&path.0, 0, 2),
            Err(StoreError::ChecksumMismatch {
                section: "halo",
                ..
            })
        ));
    }

    #[test]
    fn misaligned_section_is_misaligned_error() {
        let path = TempPath::new("misaligned");
        let mut bytes = valid_slab_bytes(&path);
        // Section table starts at 0x30; nudge section 1's offset by 8.
        let off_pos = 0x30 + 24; // section 1's offset field
        let old = u64::from_le_bytes(bytes[off_pos..off_pos + 8].try_into().unwrap());
        bytes[off_pos..off_pos + 8].copy_from_slice(&(old + 8).to_le_bytes());
        std::fs::write(&path.0, &bytes).unwrap();
        assert!(matches!(
            Slab::open(&path.0),
            Err(StoreError::MisalignedSection {
                section: "targets",
                ..
            })
        ));
    }

    #[test]
    fn inconsistent_section_length_is_corrupt() {
        let path = TempPath::new("badlen");
        let mut bytes = valid_slab_bytes(&path);
        let len_pos = 0x30 + 8; // section 0's len field
        let old = u64::from_le_bytes(bytes[len_pos..len_pos + 8].try_into().unwrap());
        bytes[len_pos..len_pos + 8].copy_from_slice(&(old + 8).to_le_bytes());
        std::fs::write(&path.0, &bytes).unwrap();
        assert!(matches!(
            Slab::open(&path.0),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
