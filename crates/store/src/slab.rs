//! Reading slabs: whole-file mmap views and per-rank byte-range loads.
//!
//! Two load paths, mirroring the paper's MPI-I/O usage:
//!
//! * [`Slab::open`] maps the entire file read-only and exposes zero-copy
//!   `u64`/`f64` views of every section. All five checksums are
//!   validated up front.
//! * [`load_rank`] reads only the byte ranges one rank needs: the header,
//!   the small `pindex` and `halo` sections (checksummed), the rank's
//!   window of `offsets`, and its `[lo, hi)` extent of `targets` and
//!   `weights`. The big sections are *not* checksummed on this path —
//!   a rank reads a strict subset of their bytes — which is the
//!   documented trade-off for O(local) I/O.
//!
//! Both paths produce `LocalGraph`s bit-identical to
//! `LocalGraph::scatter` over the in-memory CSR.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;

use louvain_graph::csr::Csr;
use louvain_graph::dist::LocalGraph;
use louvain_graph::partition::VertexPartition;
use louvain_graph::{VertexId, Weight};

use crate::err::StoreError;
use crate::layout::{
    fnv1a_words, SlabHeader, HEADER_BYTES, SECTION_NAMES, SEC_HALO, SEC_OFFSETS, SEC_PINDEX,
    SEC_TARGETS, SEC_WEIGHTS,
};
use crate::mmap::Mapping;

// The zero-copy section views reinterpret little-endian file bytes
// in place.
#[cfg(target_endian = "big")]
compile_error!("the slab store requires a little-endian target");

/// A fully mapped, fully validated slab file.
#[derive(Debug)]
pub struct Slab {
    map: Mapping,
    header: SlabHeader,
}

impl Slab {
    /// Map `path` and validate the header, section table, and **all**
    /// section checksums.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let map = Mapping::of(&file)?;
        let header = SlabHeader::decode(map.bytes())?;
        header.validate_extents(map.len() as u64)?;
        for (name, s) in SECTION_NAMES.iter().zip(&header.sections) {
            let bytes = &map.bytes()[s.offset as usize..(s.offset + s.len) as usize];
            let found = fnv1a_words(bytes);
            if found != s.checksum {
                return Err(StoreError::ChecksumMismatch {
                    section: name,
                    expect: s.checksum,
                    found,
                });
            }
        }
        Ok(Self { map, header })
    }

    pub fn num_vertices(&self) -> u64 {
        self.header.num_vertices
    }

    pub fn num_arcs(&self) -> u64 {
        self.header.num_arcs
    }

    pub fn num_edges(&self) -> u64 {
        self.header.num_edges
    }

    pub fn index_stride(&self) -> u64 {
        self.header.index_stride
    }

    /// Total bytes backed by the mapping (the whole file).
    pub fn mapped_bytes(&self) -> u64 {
        self.map.len() as u64
    }

    fn view_u64(&self, section: usize) -> &[u64] {
        let s = &self.header.sections[section];
        let bytes = &self.map.bytes()[s.offset as usize..(s.offset + s.len) as usize];
        debug_assert_eq!(bytes.as_ptr() as usize % 8, 0, "section view misaligned");
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u64, bytes.len() / 8) }
    }

    fn view_f64(&self, section: usize) -> &[f64] {
        let s = &self.header.sections[section];
        let bytes = &self.map.bytes()[s.offset as usize..(s.offset + s.len) as usize];
        debug_assert_eq!(bytes.as_ptr() as usize % 8, 0, "section view misaligned");
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, bytes.len() / 8) }
    }

    /// CSR row offsets (`n + 1` entries), zero-copy.
    pub fn offsets(&self) -> &[u64] {
        self.view_u64(SEC_OFFSETS)
    }

    /// Arc destinations (global ids), zero-copy.
    pub fn targets(&self) -> &[u64] {
        self.view_u64(SEC_TARGETS)
    }

    /// Arc weights, zero-copy.
    pub fn weights(&self) -> &[f64] {
        self.view_f64(SEC_WEIGHTS)
    }

    /// Per-vertex weighted degrees (the ghost-halo section), zero-copy.
    pub fn halo(&self) -> &[f64] {
        self.view_f64(SEC_HALO)
    }

    /// Sampled offsets (`offsets[i * stride]`), zero-copy.
    pub fn pindex(&self) -> &[u64] {
        self.view_u64(SEC_PINDEX)
    }

    /// Copy the slab into an in-memory [`Csr`].
    pub fn to_csr(&self) -> Csr {
        Csr::from_raw_parts(
            self.offsets().iter().map(|&o| o as usize).collect(),
            self.targets().to_vec(),
            self.weights().to_vec(),
        )
    }

    /// Edge-balanced partition boundaries, identical to
    /// `VertexPartition::balanced_edges` over the in-memory CSR.
    pub fn partition(&self, p: usize) -> VertexPartition {
        assert!(p > 0);
        if self.num_arcs() == 0 {
            return VertexPartition::balanced_vertices(self.num_vertices(), p);
        }
        let offsets = self.offsets();
        let mut starts = Vec::with_capacity(p + 1);
        starts.push(0);
        for r in 1..p as u64 {
            starts.push(start_for_target(offsets, self.num_arcs() * r / p as u64));
        }
        starts.push(self.num_vertices());
        VertexPartition::from_starts(starts)
    }

    /// Build one rank's piece from the mapped sections — bit-identical
    /// to `LocalGraph::scatter(&self.to_csr(), part)[rank]`, without the
    /// full-graph copy.
    pub fn local_graph(&self, part: &VertexPartition, rank: usize) -> LocalGraph {
        assert_eq!(part.num_vertices(), self.num_vertices());
        let range = part.range(rank);
        let offsets = self.offsets();
        let lo = offsets[range.start as usize] as usize;
        let hi = offsets[range.end as usize] as usize;
        let local_offsets: Vec<usize> = offsets[range.start as usize..=range.end as usize]
            .iter()
            .map(|&o| o as usize - lo)
            .collect();
        LocalGraph::from_csr_parts(
            part.clone(),
            rank,
            local_offsets,
            self.targets()[lo..hi].to_vec(),
            self.weights()[lo..hi].to_vec(),
        )
    }
}

/// The sequential `balanced_edges_from_degrees` walk, restated over the
/// offsets array: boundary `r` is the first `v` with `offsets[v] >=
/// total*r/p`. `offsets[n] = total >= target` bounds the result by `n`.
fn start_for_target(offsets: &[u64], target: u64) -> u64 {
    offsets.partition_point(|&o| o < target) as u64
}

/// Read and validate only the header: magic, version, geometry, and the
/// section table against the file length — without mapping the file or
/// touching any section bytes. This is what `run --ranged` and `info`
/// use to report a slab's shape cheaply; checksums are *not* verified.
pub fn peek_header(path: &Path) -> Result<SlabHeader, StoreError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len < HEADER_BYTES {
        return Err(StoreError::Truncated {
            what: "header",
            need: HEADER_BYTES,
            have: file_len,
        });
    }
    let mut head = [0u8; HEADER_BYTES as usize];
    file.read_exact(&mut head)?;
    let header = SlabHeader::decode(&head)?;
    header.validate_extents(file_len)?;
    Ok(header)
}

/// One rank's worth of a slab, loaded through byte-range reads.
#[derive(Debug)]
pub struct RankSlice {
    /// This rank's CSR piece (global destination ids), with the full
    /// ownership table — exactly what `LocalGraph::scatter` hands out.
    pub local: LocalGraph,
    /// Weighted degrees of **all** vertices (the ghost-halo section), so
    /// ghost degrees resolve without communication.
    pub halo: Vec<Weight>,
    /// Bytes actually read from the file for this rank.
    pub bytes_read: u64,
}

/// Byte-range loader used by ranked runs: each rank calls this with its
/// own `(rank, p)` and reads only the extents it owns (plus the small
/// `pindex`/`halo` sections). Partition boundaries come from a windowed
/// binary search over `pindex`, so no rank ever reads the full `offsets`
/// section.
pub fn load_rank(path: &Path, rank: usize, p: usize) -> Result<RankSlice, StoreError> {
    assert!(p > 0 && rank < p, "rank {rank} out of range for p={p}");
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut bytes_read = 0u64;

    let mut head = [0u8; HEADER_BYTES as usize];
    if file_len < HEADER_BYTES {
        return Err(StoreError::Truncated {
            what: "header",
            need: HEADER_BYTES,
            have: file_len,
        });
    }
    file.read_exact(&mut head)?;
    bytes_read += HEADER_BYTES;
    let header = SlabHeader::decode(&head)?;
    header.validate_extents(file_len)?;
    let n = header.num_vertices;
    let stride = header.index_stride;

    // Small sections are read whole and checksummed even on this path.
    let pindex = read_u64s_checked(&mut file, &header, SEC_PINDEX, &mut bytes_read)?;
    let halo_raw = read_u64s_checked(&mut file, &header, SEC_HALO, &mut bytes_read)?;
    let halo: Vec<f64> = halo_raw.iter().map(|&b| f64::from_bits(b)).collect();
    drop(halo_raw);

    // Partition boundaries via windowed binary search: pindex narrows
    // each target to one stride of `offsets`, which is then read from
    // disk. All ranks compute the same table (static knowledge).
    let offsets_off = header.sections[SEC_OFFSETS].offset;
    let mut read_offsets = |first: u64, count: u64| -> Result<Vec<u64>, StoreError> {
        let mut buf = vec![0u8; (count * 8) as usize];
        file.seek(SeekFrom::Start(offsets_off + first * 8))?;
        file.read_exact(&mut buf)?;
        bytes_read += count * 8;
        Ok(buf
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    };
    let part = if header.num_arcs == 0 {
        VertexPartition::balanced_vertices(n, p)
    } else {
        let mut starts: Vec<VertexId> = Vec::with_capacity(p + 1);
        starts.push(0);
        for r in 1..p as u64 {
            let target = header.num_arcs * r / p as u64;
            // First sample >= target bounds the answer's window.
            let i = pindex.partition_point(|&s| s < target) as u64;
            let win_first = i.saturating_sub(1) * stride;
            let win_last = (i * stride).min(n); // inclusive
            let window = read_offsets(win_first, win_last - win_first + 1)?;
            let v = if i == 0 {
                // pindex[0] = offsets[0] = 0 >= target, so target == 0.
                0
            } else {
                win_first + window.partition_point(|&o| o < target) as u64
            };
            starts.push(v);
        }
        starts.push(n);
        VertexPartition::from_starts(starts)
    };

    // This rank's offset window, rebased to local.
    let range = part.range(rank);
    let window = read_offsets(range.start, range.end - range.start + 1)?;
    let lo = window[0];
    let hi = *window.last().unwrap();
    let local_offsets: Vec<usize> = window.iter().map(|&o| (o - lo) as usize).collect();

    // The [lo, hi) extents of targets and weights.
    let mut read_arc_extent = |section: usize| -> Result<Vec<u64>, StoreError> {
        let off = header.sections[section].offset;
        let count = hi - lo;
        let mut buf = vec![0u8; (count * 8) as usize];
        file.seek(SeekFrom::Start(off + lo * 8))?;
        file.read_exact(&mut buf)?;
        bytes_read += count * 8;
        Ok(buf
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    };
    let dests = read_arc_extent(SEC_TARGETS)?;
    let weights: Vec<f64> = read_arc_extent(SEC_WEIGHTS)?
        .iter()
        .map(|&b| f64::from_bits(b))
        .collect();

    let local = LocalGraph::from_csr_parts(part, rank, local_offsets, dests, weights);
    Ok(RankSlice {
        local,
        halo,
        bytes_read,
    })
}

/// Read one whole section as `u64` words and validate its checksum.
fn read_u64s_checked(
    file: &mut File,
    header: &SlabHeader,
    section: usize,
    bytes_read: &mut u64,
) -> Result<Vec<u64>, StoreError> {
    let s = &header.sections[section];
    let mut buf = vec![0u8; s.len as usize];
    file.seek(SeekFrom::Start(s.offset))?;
    read_exact_or_truncated(file, &mut buf, SECTION_NAMES[section])?;
    *bytes_read += s.len;
    let found = fnv1a_words(&buf);
    if found != s.checksum {
        return Err(StoreError::ChecksumMismatch {
            section: SECTION_NAMES[section],
            expect: s.checksum,
            found,
        });
    }
    Ok(buf
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

fn read_exact_or_truncated(
    file: &mut File,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), StoreError> {
    file.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Truncated {
                what,
                need: buf.len() as u64,
                have: 0,
            }
        } else {
            StoreError::Io(e)
        }
    })
}
