//! Typed slab-store errors.
//!
//! Mirrors the checkpoint-validation philosophy of `louvain-resil`: every
//! way a slab file can be wrong is a distinct variant, so callers (and the
//! CLI) can report *what* is corrupt, not just "invalid data".

use std::fmt;
use std::io;

use louvain_graph::ingest::IngestError;

/// Why a slab file could not be built, opened, or range-loaded.
#[derive(Debug)]
pub enum StoreError {
    /// The file ends before a section (or the header) does.
    Truncated {
        what: &'static str,
        need: u64,
        have: u64,
    },
    /// The leading magic does not carry the slab signature.
    BadMagic {
        found: u64,
    },
    /// Signature recognized but the format version byte is not ours.
    WrongVersion {
        found: u8,
    },
    /// A section's stored checksum does not match its bytes.
    ChecksumMismatch {
        section: &'static str,
        expect: u64,
        found: u64,
    },
    /// A section offset violates the 64-byte alignment rule.
    MisalignedSection {
        section: &'static str,
        offset: u64,
    },
    /// Internally inconsistent metadata (section lengths vs. counts,
    /// overlapping sections, bad section count, ...).
    Corrupt {
        what: String,
    },
    /// An edge failed ingestion validation while streaming into a builder.
    Ingest(IngestError),
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated { what, need, have } => {
                write!(f, "truncated slab file: {what} needs {need} bytes, have {have}")
            }
            StoreError::BadMagic { found } => {
                write!(f, "bad magic: {found:#018x} is not a slab file")
            }
            StoreError::WrongVersion { found } => {
                write!(f, "unsupported slab format version {found:#04x}")
            }
            StoreError::ChecksumMismatch {
                section,
                expect,
                found,
            } => write!(
                f,
                "checksum mismatch in section {section}: header says {expect:#018x}, bytes hash to {found:#018x}"
            ),
            StoreError::MisalignedSection { section, offset } => {
                write!(f, "section {section} at offset {offset} violates 64-byte alignment")
            }
            StoreError::Corrupt { what } => write!(f, "corrupt slab: {what}"),
            StoreError::Ingest(e) => write!(f, "ingest error: {e}"),
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<IngestError> for StoreError {
    fn from(e: IngestError) -> Self {
        match e {
            IngestError::Io(inner) => StoreError::Io(inner),
            other => StoreError::Ingest(other),
        }
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_defect() {
        let cases: Vec<(StoreError, &str)> = vec![
            (
                StoreError::Truncated {
                    what: "header",
                    need: 192,
                    have: 10,
                },
                "truncated",
            ),
            (StoreError::BadMagic { found: 0xdead }, "bad magic"),
            (StoreError::WrongVersion { found: 9 }, "version"),
            (
                StoreError::ChecksumMismatch {
                    section: "targets",
                    expect: 1,
                    found: 2,
                },
                "checksum mismatch",
            ),
            (
                StoreError::MisalignedSection {
                    section: "weights",
                    offset: 7,
                },
                "alignment",
            ),
            (
                StoreError::Corrupt {
                    what: "overlapping sections".into(),
                },
                "corrupt",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn converts_to_io_invalid_data() {
        let e: io::Error = StoreError::BadMagic { found: 0 }.into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        let passthrough: io::Error =
            StoreError::Io(io::Error::new(io::ErrorKind::NotFound, "gone")).into();
        assert_eq!(passthrough.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn ingest_io_unwraps_to_io() {
        let inner = IngestError::Io(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(matches!(StoreError::from(inner), StoreError::Io(_)));
        let typed = IngestError::SelfLoop { v: 3, line: 0 };
        assert!(matches!(StoreError::from(typed), StoreError::Ingest(_)));
    }
}
