//! `lens crit` — cross-rank critical-path analysis over the causal
//! profiling sections of a [`RunArtifact`].
//!
//! A traced run carries two causal sections in its [`RunReport`]:
//!
//! - `phase_profile`: per-(rank, phase) wall attribution derived from the
//!   span tree (compute / transfer / wait / rebuild, summing to the
//!   phase-span wall by construction), and
//! - `messages`: Lamport-matched send/recv edges with wire bytes and the
//!   α-β modeled cost of each edge.
//!
//! From these we reconstruct the happens-before DAG. Nodes are
//! (rank, phase) cells; within a rank, phase `k` happens-before phase
//! `k+1`; across ranks, the end-of-phase reduction is an all-to-all
//! barrier, so every rank's phase `k` happens-before every rank's phase
//! `k+1` (the message edges realize a subset of these barrier edges — we
//! use them for blame refinement, the barrier for path structure). The
//! longest path through that DAG is computed by dynamic programming:
//! because each frontier is all-to-all, `longest(k) = longest(k-1) +
//! max_rank(total_ns[k])`, and backtracking the per-phase argmax yields
//! the slowest-rank chain.
//!
//! On top of the path we report:
//!
//! - per-phase wall attribution along the critical path and its
//!   aggregate compute/transfer/wait/rebuild fractions (they sum to 1
//!   because each cell's buckets sum to its total),
//! - straggler blame: the rank spending the most *self* time (compute +
//!   transfer + rebuild, excluding blocked wait — wait is victim time: a
//!   rank stalled behind a straggler must not inherit the blame),
//!   refined by message evidence (the receiver whose incoming edges show
//!   the most delivery latency in excess of the α-β model — in the
//!   simulated clocks, excess latency means the message folded late
//!   because the receiver's clock had run ahead),
//! - an α-β fit: least-squares of `modeled_ns` against `bytes` over all
//!   message edges, compared to the generating [`CostModel::aries`]
//!   constants. The recovered constants must land within
//!   [`FIT_TOLERANCE`] (5%) of the model — slack that covers the
//!   per-edge u64-nanosecond truncation of the traced clocks — which CI
//!   asserts on the committed bench artifact,
//! - a byte reconciliation between the matched message edges and the
//!   run's p2p traffic counters (exact on clean runs, where every
//!   logical p2p message is traced at both endpoints),
//! - and, given a baseline artifact, a wait-fraction regression gate:
//!   the run fails when its blocked-wait share of traced wall exceeds
//!   the baseline's by more than an absolute `wait_tol` slack.
//!
//! Rendering is deterministic (fixed float precision, `BTreeMap`
//! ordering, no clocks): same artifacts in, byte-identical report out.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use louvain_comm::CostModel;
use louvain_obs::{MessageEdge, PhaseProfileRow, RunArtifact, RunReport};

/// Relative tolerance for the recovered α and β against the generating
/// model constants. The traced `modeled_ns` values are u64-truncated
/// nanoseconds of an exactly linear model, so the fit is near-exact;
/// 5% leaves room for truncation and tiny-sample runs.
pub const FIT_TOLERANCE: f64 = 0.05;

/// Default absolute slack allowed on the wait fraction versus a
/// baseline before `crit` fails the gate (`--wait-tol`).
pub const DEFAULT_WAIT_TOL: f64 = 0.25;

/// One step of the slowest-rank chain: the cell that carried phase
/// `phase` on the critical path.
#[derive(Debug, Clone, Copy)]
pub struct ChainStep {
    pub phase: u64,
    pub rank: usize,
    pub cell: PhaseProfileRow,
}

/// Least-squares α-β recovery from the message edges.
#[derive(Debug, Clone, Copy)]
pub struct AlphaBetaFit {
    /// Edges the fit used.
    pub edges: usize,
    /// Recovered latency term, seconds.
    pub alpha_seconds: f64,
    /// Recovered inverse bandwidth, seconds per byte.
    pub beta_seconds_per_byte: f64,
    /// Relative error of α against the generating model.
    pub alpha_rel_err: f64,
    /// Relative error of β against the generating model.
    pub beta_rel_err: f64,
}

impl AlphaBetaFit {
    /// Both constants within [`FIT_TOLERANCE`] of the model.
    pub fn within_tolerance(&self) -> bool {
        self.alpha_rel_err.abs() <= FIT_TOLERANCE && self.beta_rel_err.abs() <= FIT_TOLERANCE
    }
}

/// Crit analysis of one traced run.
#[derive(Debug, Clone)]
pub struct RunCrit {
    pub label: String,
    pub ranks: usize,
    /// Slowest-rank chain, one entry per phase in phase order.
    pub chain: Vec<ChainStep>,
    /// Critical-path length: sum of the chain cells' totals.
    pub critical_path_ns: u64,
    /// Whole-run wall from the report, for the path/wall ratio.
    pub wall_ns: u64,
    /// (compute, transfer, wait, rebuild) sums along the chain.
    pub path_breakdown_ns: [u64; 4],
    /// Rank with the most self time (compute + transfer + rebuild,
    /// excluding blocked wait) and its share of all-rank self time.
    /// Wait is victim time: a rank blocked behind a straggler must not
    /// inherit the blame, so the straggler is whoever spends the most
    /// non-wait wall.
    pub blame_rank: usize,
    pub blame_share: f64,
    /// Receiver whose incoming edges show the most delivery latency in
    /// excess of the α-β model, and that excess (`None` when no edge
    /// exceeds the model). Excess latency means the message folded late
    /// because the receiver's clock had run ahead (busy or stalled).
    pub message_blame: Option<(usize, u64)>,
    /// α-β recovery (`None` when the edges are degenerate — fewer than
    /// two distinct message sizes).
    pub fit: Option<AlphaBetaFit>,
    /// Total bytes over matched message edges vs the run's p2p byte
    /// counters (equal on clean runs).
    pub edge_bytes: u64,
    pub p2p_bytes: u64,
    /// Blocked-wait share of traced wall across all cells.
    pub wait_fraction: f64,
    /// Baseline wait fraction when the baseline had this label.
    pub baseline_wait_fraction: Option<f64>,
    /// Wait-gate verdict: `None` = no baseline to gate against.
    pub wait_gate_ok: Option<bool>,
}

impl RunCrit {
    /// (compute, transfer, wait, rebuild) as fractions of the critical
    /// path. Sums to 1 whenever the path is non-empty, because each
    /// cell's four buckets sum to its total by construction.
    pub fn path_fractions(&self) -> [f64; 4] {
        let t = self.critical_path_ns;
        if t == 0 {
            return [0.0; 4];
        }
        self.path_breakdown_ns.map(|v| v as f64 / t as f64)
    }
}

/// The full crit report: analyzed runs plus the labels skipped for
/// lacking causal sections.
#[derive(Debug, Clone)]
pub struct CritReport {
    pub artifact: String,
    pub runs: Vec<RunCrit>,
    /// Labels present in the artifact but not analyzable (no message
    /// events / phase profile).
    pub skipped: Vec<String>,
}

impl CritReport {
    /// Gate verdict: every gated run within its wait tolerance. Runs
    /// without a baseline counterpart do not fail the gate.
    pub fn passed(&self) -> bool {
        self.runs.iter().all(|r| r.wait_gate_ok.unwrap_or(true))
    }

    /// Deterministic human rendering (byte-identical across invocations
    /// on the same inputs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "crit: {} ({} analyzed, {} skipped)",
            self.artifact,
            self.runs.len(),
            self.skipped.len()
        );
        for label in &self.skipped {
            let _ = writeln!(out, "  skipped {label}: no causal trace sections");
        }
        for r in &self.runs {
            let _ = writeln!(out);
            let _ = writeln!(out, "{}  ranks={}", r.label, r.ranks);
            let ratio = if r.wall_ns > 0 {
                100.0 * r.critical_path_ns as f64 / r.wall_ns as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  critical path: {:.3}ms of {:.3}ms wall ({:.1}%)",
                r.critical_path_ns as f64 / 1e6,
                r.wall_ns as f64 / 1e6,
                ratio
            );
            let [fc, ft, fw, fb] = r.path_fractions();
            let _ = writeln!(
                out,
                "  attribution: compute {:.1}% transfer {:.1}% wait {:.1}% rebuild {:.1}%",
                100.0 * fc,
                100.0 * ft,
                100.0 * fw,
                100.0 * fb
            );
            let _ = writeln!(out, "  slowest-rank chain:");
            for s in &r.chain {
                let _ = writeln!(
                    out,
                    "    phase {:>2}: rank {:>2}  total {:>10.3}ms  compute {:.3} transfer {:.3} wait {:.3} rebuild {:.3}",
                    s.phase,
                    s.rank,
                    s.cell.total_ns as f64 / 1e6,
                    s.cell.compute_ns as f64 / 1e6,
                    s.cell.transfer_ns as f64 / 1e6,
                    s.cell.wait_ns as f64 / 1e6,
                    s.cell.rebuild_ns as f64 / 1e6,
                );
            }
            let _ = write!(
                out,
                "  straggler blame: rank {} ({:.1}% of self time)",
                r.blame_rank,
                100.0 * r.blame_share
            );
            match r.message_blame {
                Some((rank, excess)) => {
                    let _ = writeln!(
                        out,
                        "; message excess blames rank {} ({:.3}ms over model)",
                        rank,
                        excess as f64 / 1e6
                    );
                }
                None => {
                    let _ = writeln!(out, "; no message edge exceeded the model");
                }
            }
            match &r.fit {
                Some(f) => {
                    let _ = writeln!(
                        out,
                        "  alpha-beta fit over {} edges: alpha={:.4e} s ({:+.2}% vs model) beta={:.4e} s/B ({:+.2}% vs model){}",
                        f.edges,
                        f.alpha_seconds,
                        100.0 * f.alpha_rel_err,
                        f.beta_seconds_per_byte,
                        100.0 * f.beta_rel_err,
                        if f.within_tolerance() {
                            ""
                        } else {
                            "  OUTSIDE TOLERANCE"
                        }
                    );
                }
                None => {
                    let _ = writeln!(out, "  alpha-beta fit: skipped (degenerate message sizes)");
                }
            }
            let _ = writeln!(
                out,
                "  messages: {} bytes traced, {} bytes in p2p counters ({})",
                r.edge_bytes,
                r.p2p_bytes,
                if r.edge_bytes == r.p2p_bytes {
                    "exact match"
                } else {
                    "MISMATCH"
                }
            );
            match (r.baseline_wait_fraction, r.wait_gate_ok) {
                (Some(base), Some(ok)) => {
                    let _ = writeln!(
                        out,
                        "  wait fraction: {:.4} (baseline {:.4}) {}",
                        r.wait_fraction,
                        base,
                        if ok { "OK" } else { "REGRESSION" }
                    );
                }
                _ => {
                    let _ = writeln!(out, "  wait fraction: {:.4} (no baseline)", r.wait_fraction);
                }
            }
        }
        if !self.runs.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "crit gate: {}",
                if self.passed() { "PASS" } else { "FAIL" }
            );
        }
        out
    }
}

/// Blocked-wait share of traced wall across every (rank, phase) cell.
fn wait_fraction(rows: &[PhaseProfileRow]) -> f64 {
    let total: u64 = rows.iter().map(|r| r.total_ns).sum();
    let wait: u64 = rows.iter().map(|r| r.wait_ns).sum();
    if total == 0 {
        0.0
    } else {
        wait as f64 / total as f64
    }
}

/// Longest path through the barrier-coupled phase DAG: pick the slowest
/// rank per phase, in phase order.
fn slowest_chain(rows: &[PhaseProfileRow]) -> Vec<ChainStep> {
    let mut by_phase: BTreeMap<u64, ChainStep> = BTreeMap::new();
    for row in rows {
        let step = ChainStep {
            phase: row.phase,
            rank: row.rank,
            cell: *row,
        };
        by_phase
            .entry(row.phase)
            .and_modify(|cur| {
                // Ties break toward the lower rank for determinism.
                if row.total_ns > cur.cell.total_ns
                    || (row.total_ns == cur.cell.total_ns && row.rank < cur.rank)
                {
                    *cur = step;
                }
            })
            .or_insert(step);
    }
    by_phase.into_values().collect()
}

/// Least-squares line through (bytes, modeled_ns), reported in seconds
/// and seconds-per-byte against [`CostModel::aries`].
fn fit_alpha_beta(edges: &[MessageEdge]) -> Option<AlphaBetaFit> {
    let n = edges.len() as f64;
    if edges.len() < 2 {
        return None;
    }
    let sx: f64 = edges.iter().map(|e| e.bytes as f64).sum();
    let sy: f64 = edges.iter().map(|e| e.modeled_ns as f64).sum();
    let sxx: f64 = edges.iter().map(|e| (e.bytes as f64).powi(2)).sum();
    let sxy: f64 = edges
        .iter()
        .map(|e| e.bytes as f64 * e.modeled_ns as f64)
        .sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return None; // every edge the same size: slope unobservable
    }
    let beta_ns = (n * sxy - sx * sy) / denom;
    let alpha_ns = (sy - beta_ns * sx) / n;
    let model = CostModel::aries();
    let alpha_seconds = alpha_ns * 1e-9;
    let beta_seconds_per_byte = beta_ns * 1e-9;
    Some(AlphaBetaFit {
        edges: edges.len(),
        alpha_seconds,
        beta_seconds_per_byte,
        alpha_rel_err: (alpha_seconds - model.alpha) / model.alpha,
        beta_rel_err: (beta_seconds_per_byte - model.beta) / model.beta,
    })
}

/// Receiver whose incoming edges show the most delivery latency in
/// excess of the α-β model — the message-level straggler. In the
/// simulated clocks `recv_ts = max(receiver_clock, send_ts + modeled)`,
/// so any excess over the model means the *receiver* was behind on
/// folding the delivery (busy or stalled); the sender's own delay shows
/// up in a late `send_ts`, not in the edge latency.
fn message_blame(edges: &[MessageEdge]) -> Option<(usize, u64)> {
    let mut excess: BTreeMap<usize, u64> = BTreeMap::new();
    for e in edges {
        let latency = e.recv_ts_ns.saturating_sub(e.send_ts_ns);
        let over = latency.saturating_sub(e.modeled_ns);
        if over > 0 {
            *excess.entry(e.dst).or_insert(0) += over;
        }
    }
    // Max excess; ties break toward the lower rank (BTreeMap order).
    excess
        .into_iter()
        .max_by_key(|&(rank, ns)| (ns, usize::MAX - rank))
}

fn analyze_run(
    label: &str,
    report: &RunReport,
    baseline: Option<&RunReport>,
    wait_tol: f64,
) -> RunCrit {
    let chain = slowest_chain(&report.phase_profile);
    let critical_path_ns: u64 = chain.iter().map(|s| s.cell.total_ns).sum();
    let mut path_breakdown_ns = [0u64; 4];
    for s in &chain {
        path_breakdown_ns[0] += s.cell.compute_ns;
        path_breakdown_ns[1] += s.cell.transfer_ns;
        path_breakdown_ns[2] += s.cell.wait_ns;
        path_breakdown_ns[3] += s.cell.rebuild_ns;
    }
    // Straggler blame goes by *self* time across every cell, not chain
    // membership: a rank blocked waiting on the straggler can carry the
    // longest per-phase wall (its wait absorbs the stall) and would
    // steal the blame if wait counted.
    let mut per_rank_self: BTreeMap<usize, u64> = BTreeMap::new();
    let mut total_self: u64 = 0;
    for row in &report.phase_profile {
        let self_ns = row.compute_ns + row.transfer_ns + row.rebuild_ns;
        *per_rank_self.entry(row.rank).or_insert(0) += self_ns;
        total_self += self_ns;
    }
    let (blame_rank, blame_ns) = per_rank_self
        .into_iter()
        .max_by_key(|&(rank, ns)| (ns, usize::MAX - rank))
        .unwrap_or((0, 0));
    let blame_share = if total_self > 0 {
        blame_ns as f64 / total_self as f64
    } else {
        0.0
    };
    let edge_bytes: u64 = report.messages.iter().map(|e| e.bytes).sum();
    let p2p_bytes: u64 = report.per_rank.iter().map(|r| r.p2p_bytes).sum();
    let frac = wait_fraction(&report.phase_profile);
    let baseline_wait_fraction = baseline.map(|b| wait_fraction(&b.phase_profile));
    let wait_gate_ok = baseline_wait_fraction.map(|base| frac <= base + wait_tol);
    RunCrit {
        label: label.to_string(),
        ranks: report.ranks,
        chain,
        critical_path_ns,
        wall_ns: (report.wall_seconds * 1e9) as u64,
        path_breakdown_ns,
        blame_rank,
        blame_share,
        message_blame: message_blame(&report.messages),
        fit: fit_alpha_beta(&report.messages),
        edge_bytes,
        p2p_bytes,
        wait_fraction: frac,
        baseline_wait_fraction,
        wait_gate_ok,
    }
}

/// Analyze every causally-traced run of `artifact`, gating wait
/// fractions against `baseline` (matched by label) when given.
///
/// Errors when **no** run carries the causal sections — legacy
/// artifacts written before the profiling layer degrade with a clear
/// message instead of an empty report.
pub fn crit(
    artifact: &RunArtifact,
    baseline: Option<&RunArtifact>,
    wait_tol: f64,
) -> Result<CritReport, String> {
    let base_by_label: BTreeMap<&str, &RunReport> = baseline
        .map(|b| {
            b.runs
                .iter()
                .map(|e| (e.label.as_str(), &e.report))
                .collect()
        })
        .unwrap_or_default();
    let mut runs = Vec::new();
    let mut skipped = Vec::new();
    for entry in &artifact.runs {
        let r = &entry.report;
        if r.messages.is_empty() || r.phase_profile.is_empty() {
            skipped.push(entry.label.clone());
            continue;
        }
        runs.push(analyze_run(
            &entry.label,
            r,
            base_by_label.get(entry.label.as_str()).copied(),
            wait_tol,
        ));
    }
    if runs.is_empty() {
        return Err(format!(
            "artifact `{}` has no runs with message events: it predates the \
             causal profiling layer (re-run the bench with tracing to produce \
             phase_profile and messages sections)",
            artifact.name
        ));
    }
    Ok(CritReport {
        artifact: artifact.name.clone(),
        runs,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_obs::{RankTotals, RunEntry};

    fn cell(rank: usize, phase: u64, c: u64, t: u64, w: u64, b: u64) -> PhaseProfileRow {
        PhaseProfileRow {
            rank,
            phase,
            compute_ns: c,
            transfer_ns: t,
            wait_ns: w,
            rebuild_ns: b,
            total_ns: c + t + w + b,
        }
    }

    fn edge(src: usize, dst: usize, bytes: u64, latency_ns: u64) -> MessageEdge {
        let model = CostModel::aries();
        MessageEdge {
            src,
            dst,
            step: "ghost_refresh".into(),
            lamport: 1,
            bytes,
            send_ts_ns: 1_000,
            recv_ts_ns: 1_000 + latency_ns,
            modeled_ns: (model.p2p(bytes) * 1e9) as u64,
        }
    }

    fn traced_entry(label: &str) -> RunEntry {
        let phase_profile = vec![
            cell(0, 0, 700, 100, 50, 150),
            cell(1, 0, 900, 100, 200, 100), // slowest in phase 0
            cell(0, 1, 400, 50, 25, 25),    // slowest in phase 1
            cell(1, 1, 300, 50, 25, 25),
        ];
        let messages = vec![
            edge(0, 1, 64, 2_000),
            // Rank 1 folds this delivery far beyond the model: the
            // receiver-side excess has to blame rank 1.
            edge(0, 1, 4_096, 9_000_000),
            edge(1, 0, 1_024, 2_000),
        ];
        let p2p_bytes: u64 = messages.iter().map(|e| e.bytes).sum();
        RunEntry {
            label: label.into(),
            report: RunReport {
                graph: "g".into(),
                ranks: 2,
                variant: "delta".into(),
                wall_seconds: 2.0e-6,
                per_rank: vec![RankTotals {
                    rank: 0,
                    p2p_messages: 3,
                    p2p_bytes,
                    collective_calls: 0,
                    collective_bytes: 0,
                    modeled_comm_seconds: 0.0,
                    step_messages: vec![0; 6],
                    step_bytes: vec![0; 6],
                    wait_ns: 0,
                    events_recorded: 0,
                    events_dropped: 0,
                }],
                phase_profile,
                messages,
                ..Default::default()
            },
            telemetry: Vec::new(),
        }
    }

    fn traced_artifact() -> RunArtifact {
        RunArtifact {
            name: "crit-test".into(),
            description: String::new(),
            runs: vec![traced_entry("g/p2/delta")],
        }
    }

    #[test]
    fn critical_path_sums_slowest_rank_per_phase() {
        let report = crit(&traced_artifact(), None, DEFAULT_WAIT_TOL).unwrap();
        let r = &report.runs[0];
        // phase 0: rank 1 (1300ns) + phase 1: rank 0 (500ns)
        assert_eq!(r.critical_path_ns, 1_300 + 500);
        assert_eq!(r.chain.len(), 2);
        assert_eq!(r.chain[0].rank, 1);
        assert_eq!(r.chain[1].rank, 0);
        // The chain total must be at least every rank's own phase time.
        for row in &traced_entry("x").report.phase_profile {
            assert!(r.critical_path_ns >= row.total_ns);
        }
        // Critical path cannot exceed wall (2.0e-6 s = 2000ns > 1800ns).
        assert!(r.critical_path_ns <= r.wall_ns);
    }

    #[test]
    fn path_fractions_sum_to_one() {
        let report = crit(&traced_artifact(), None, DEFAULT_WAIT_TOL).unwrap();
        let sum: f64 = report.runs[0].path_fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum {sum}");
    }

    #[test]
    fn blame_prefers_rank_with_most_self_time_and_message_excess() {
        let report = crit(&traced_artifact(), None, DEFAULT_WAIT_TOL).unwrap();
        let r = &report.runs[0];
        // Self time excludes wait: rank 0 = 700+100+150 + 400+50+25 =
        // 1425ns, rank 1 = 900+100+100 + 300+50+25 = 1475ns.
        assert_eq!(r.blame_rank, 1, "rank 1 carries 1475 of 2900ns self");
        assert!((r.blame_share - 1475.0 / 2900.0).abs() < 1e-9);
        let (msg_rank, excess) = r.message_blame.expect("rank 1 folds late");
        assert_eq!(msg_rank, 1);
        assert!(excess > 1_000_000);
    }

    #[test]
    fn blame_ignores_victim_wait_time() {
        // Rank 0 waits out a straggling rank 1: rank 0's wall dominates
        // every phase (so it owns the whole chain), but all of it is
        // blocked wait — the blame must land on rank 1, whose transfer
        // time is where the stall actually lives.
        let mut a = traced_artifact();
        a.runs[0].report.phase_profile = vec![
            cell(0, 0, 100, 50, 9_000, 0),
            cell(1, 0, 200, 5_000, 100, 0),
            cell(0, 1, 50, 25, 4_000, 0),
            cell(1, 1, 100, 2_000, 50, 0),
        ];
        let report = crit(&a, None, DEFAULT_WAIT_TOL).unwrap();
        let r = &report.runs[0];
        assert!(r.chain.iter().all(|s| s.rank == 0), "rank 0 owns the chain");
        assert_eq!(r.blame_rank, 1, "blame must skip rank 0's victim wait");
    }

    #[test]
    fn alpha_beta_fit_recovers_model_constants() {
        let report = crit(&traced_artifact(), None, DEFAULT_WAIT_TOL).unwrap();
        let fit = report.runs[0].fit.expect("three distinct sizes");
        assert!(
            fit.within_tolerance(),
            "alpha {:+.3}% beta {:+.3}%",
            100.0 * fit.alpha_rel_err,
            100.0 * fit.beta_rel_err
        );
    }

    #[test]
    fn edge_bytes_reconcile_with_p2p_counters() {
        let report = crit(&traced_artifact(), None, DEFAULT_WAIT_TOL).unwrap();
        let r = &report.runs[0];
        assert_eq!(r.edge_bytes, r.p2p_bytes);
        assert!(report.render().contains("exact match"));
    }

    #[test]
    fn wait_gate_fails_on_regression_within_slack_passes() {
        let base = traced_artifact();
        let mut cur = traced_artifact();
        // Inflate waits: shift most of rank 1's compute into wait.
        for row in &mut cur.runs[0].report.phase_profile {
            row.wait_ns += row.compute_ns;
            row.compute_ns = 0;
        }
        let strict = crit(&cur, Some(&base), 0.05).unwrap();
        assert!(!strict.passed(), "wait fraction jumped far beyond 5% slack");
        assert!(strict.render().contains("REGRESSION"));
        let loose = crit(&cur, Some(&base), 10.0).unwrap();
        assert!(loose.passed());
        let same = crit(&base, Some(&base), DEFAULT_WAIT_TOL).unwrap();
        assert!(same.passed());
    }

    #[test]
    fn legacy_artifact_without_messages_errors() {
        let mut a = traced_artifact();
        a.runs[0].report.messages.clear();
        let err = crit(&a, None, DEFAULT_WAIT_TOL).unwrap_err();
        assert!(err.contains("no runs with message events"), "{err}");
    }

    #[test]
    fn untraced_runs_are_skipped_not_fatal() {
        let mut a = traced_artifact();
        let mut legacy = traced_entry("g/p4/legacy");
        legacy.report.messages.clear();
        a.runs.push(legacy);
        let report = crit(&a, None, DEFAULT_WAIT_TOL).unwrap();
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.skipped, vec!["g/p4/legacy".to_string()]);
        assert!(report.render().contains("skipped g/p4/legacy"));
    }

    #[test]
    fn render_is_deterministic() {
        let a = traced_artifact();
        let r1 = crit(&a, Some(&a), DEFAULT_WAIT_TOL).unwrap().render();
        let r2 = crit(&a, Some(&a), DEFAULT_WAIT_TOL).unwrap().render();
        assert_eq!(r1, r2, "crit rendering must be byte-identical");
        assert!(r1.contains("crit gate: PASS"));
    }
}
