//! # louvain-lens — run-artifact analytics
//!
//! Turns [`RunArtifact`]s (and every legacy bench shape that converts
//! into them) into human summaries, deterministic diffs, and a CI
//! regression verdict:
//!
//! - [`show`]: per-run summary plus a sparkline convergence table when
//!   the run carries telemetry.
//! - [`diff`]: match runs by label across two artifacts and compute
//!   wall / bytes / modularity / iterations-to-converge deltas, with
//!   noise thresholds separating signal (deterministic byte and
//!   modularity counts) from jitter (wall time).
//! - [`gate`]: nonzero-exit regression verdict for CI, against a
//!   committed baseline artifact.
//! - [`crit`]: cross-rank critical-path analysis over the causal
//!   profiling sections (phase profiles + Lamport-matched message
//!   edges) — per-phase wall attribution, straggler blame, an α-β
//!   model fit, and a wait-fraction regression gate (see [`crit`]).
//!
//! Every rendering path is deterministic — fixed float precision, label
//! ordering via `BTreeMap`, no clocks — so diffing the same two
//! artifacts twice is byte-identical (asserted in tests; the property
//! CI relies on to keep verdicts reproducible).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use louvain_obs::{RunArtifact, RunEntry, TelemetryRow};

mod crit;
pub use crit::{
    crit, AlphaBetaFit, ChainStep, CritReport, RunCrit, DEFAULT_WAIT_TOL, FIT_TOLERANCE,
};
mod ops;
pub use ops::{parse_event_log, render_event, render_tail, render_top, PromMetrics};

/// Noise thresholds separating regression signal from run-to-run
/// jitter. Wall time on a shared CI box is noisy, so it gets both a
/// generous relative tolerance and an absolute floor; byte counts and
/// modularity are deterministic for a fixed seed, so their tolerances
/// only allow for intentional drift.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Relative wall-time growth allowed (0.75 = fail above 1.75x).
    pub wall_tol: f64,
    /// Absolute wall-time growth (seconds) below which wall deltas are
    /// never flagged, whatever the ratio.
    pub wall_floor_seconds: f64,
    /// Relative total-byte growth allowed.
    pub bytes_tol: f64,
    /// Absolute modularity drop allowed.
    pub modularity_drop: f64,
    /// Relative growth allowed in iterations-to-converge (plus a fixed
    /// slack of 2 iterations).
    pub iters_tol: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            wall_tol: 0.75,
            wall_floor_seconds: 0.005,
            bytes_tol: 0.10,
            modularity_drop: 0.01,
            iters_tol: 0.50,
        }
    }
}

// ---------------------------------------------------------------------------
// show
// ---------------------------------------------------------------------------

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Map a series onto sparkline glyphs (min → `▁`, max → `█`).
fn sparkline(values: &[f64]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    values
        .iter()
        .map(|&v| {
            if hi > lo {
                let t = (v - lo) / (hi - lo);
                SPARKS[((t * 7.0).round() as usize).min(7)]
            } else {
                SPARKS[3]
            }
        })
        .collect()
}

fn convergence_table(rows: &[TelemetryRow]) -> String {
    let mut out = String::new();
    let qs: Vec<f64> = rows.iter().map(|r| r.modularity).collect();
    let _ = writeln!(
        out,
        "  convergence: {}  (modularity per iteration)",
        sparkline(&qs)
    );
    let _ = writeln!(
        out,
        "  {:>5} {:>4} {:>12} {:>12} {:>8} {:>7} {:>7} {:>10}",
        "phase", "iter", "q", "dq", "moves", "active", "comms", "ghost B"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "  {:>5} {:>4} {:>12.6} {:>12.6} {:>8} {:>6.1}% {:>7} {:>10}",
            r.phase,
            r.iteration,
            r.modularity,
            r.delta_q,
            r.moves,
            100.0 * r.active_fraction(),
            r.communities,
            r.ghost_bytes_total(),
        );
    }
    out
}

/// Storage-footprint line built from the `mem.*` gauges (absent on
/// artifacts predating them). Heap CSR bytes and mmap-resident bytes
/// are summed across ranks (`GaugeStat::sum` — each rank sets its gauge
/// once per run); peak RSS is process-wide, so ranks all observe the
/// same value and `max` is the honest aggregate.
fn memory_line(r: &louvain_obs::RunReport) -> Option<String> {
    let csr = r.metrics.gauges.get("mem.csr_bytes");
    let mapped = r.metrics.gauges.get("mem.mapped_bytes");
    let rss = r.metrics.gauges.get("mem.peak_rss_bytes");
    if csr.is_none() && mapped.is_none() && rss.is_none() {
        return None;
    }
    let csr_b = csr.map(|g| g.sum).unwrap_or(0.0);
    let mapped_b = mapped.map(|g| g.sum).unwrap_or(0.0);
    let mut line = format!(
        "memory: csr={} B  mapped={} B",
        csr_b as u64, mapped_b as u64
    );
    if r.edges > 0 {
        let _ = write!(
            line,
            "  bytes/edge={:.1}",
            (csr_b + mapped_b) / r.edges as f64
        );
    }
    if let Some(g) = rss {
        let _ = write!(line, "  peak_rss={:.1} MiB", g.max / (1024.0 * 1024.0));
    }
    Some(line)
}

/// Serve-ops line for runs carrying the daemon's `serve.*` metrics
/// (the `serve/daemon` summary row of the serving benchmark): queue
/// high-water from the gauge's max, shed count, and the cache hit rate.
fn serve_ops_line(r: &louvain_obs::RunReport) -> Option<String> {
    let has_serve = r.metrics.counters.keys().any(|k| k.starts_with("serve."))
        || r.metrics.gauges.keys().any(|k| k.starts_with("serve."));
    if !has_serve {
        return None;
    }
    let counter = |name: &str| r.metrics.counters.get(name).copied().unwrap_or(0);
    let mut line = format!(
        "serve ops: accepted={} completed={} shed={}",
        counter("serve.jobs_accepted"),
        counter("serve.jobs_completed"),
        counter("serve.jobs_rejected"),
    );
    if let Some(g) = r.metrics.gauges.get("serve.queue_depth") {
        let _ = write!(line, "  queue_high_water={}", g.max as u64);
    }
    let hits = counter("serve.cache_hits");
    let misses = counter("serve.cache_misses");
    if hits + misses > 0 {
        let _ = write!(
            line,
            "  cache_hit_rate={:.1}%",
            100.0 * hits as f64 / (hits + misses) as f64
        );
    }
    Some(line)
}

/// Human summary of an artifact: one block per run, with a sparkline
/// convergence table for traced runs.
pub fn show(artifact: &RunArtifact) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "artifact: {} ({} runs)",
        artifact.name,
        artifact.runs.len()
    );
    if !artifact.description.is_empty() {
        let _ = writeln!(out, "  {}", artifact.description);
    }
    for entry in &artifact.runs {
        let r = &entry.report;
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{}  [{}]  q={:.6}  phases={} iters={}  wall={:.1}ms  bytes={}",
            entry.label,
            r.variant,
            r.modularity,
            r.phases,
            r.iterations,
            r.wall_seconds * 1000.0,
            r.total_bytes,
        );
        if r.recoveries > 0 || r.resumed_from_phase.is_some() {
            let _ = writeln!(
                out,
                "  resilience: recoveries={} resumed_from_phase={}",
                r.recoveries,
                r.resumed_from_phase
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        if r.health.any() {
            let _ = writeln!(
                out,
                "  health: wd_timeouts={} wd_stragglers={} checksum_rejects={} hung_events={}",
                r.health.wd_timeouts,
                r.health.wd_stragglers,
                r.health.checksum_rejects,
                r.health.hung_events.len(),
            );
        }
        if let Some(mem) = memory_line(r) {
            let _ = writeln!(out, "  {mem}");
        }
        if let Some(ops) = serve_ops_line(r) {
            let _ = writeln!(out, "  {ops}");
        }
        if let Some(h) = r.metrics.histograms.get("rank.total_bytes") {
            let (p50, p95, p99) = h.quantile_summary();
            let _ = writeln!(
                out,
                "  rank imbalance (total bytes): p50<={p50} p95<={p95} p99<={p99}"
            );
        }
        if let Some(h) = r.metrics.histograms.get("serve.job_latency_ms") {
            let (p50, p95, p99) = h.quantile_summary();
            let _ = writeln!(
                out,
                "  job latency (ms): p50<={p50} p95<={p95} p99<={p99} over {} jobs",
                h.count
            );
        }
        if !entry.telemetry.is_empty() {
            out.push_str(&convergence_table(&entry.telemetry));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/// Deltas for one label present in both artifacts.
#[derive(Debug, Clone)]
pub struct RunDelta {
    pub label: String,
    pub wall_a: f64,
    pub wall_b: f64,
    pub bytes_a: u64,
    pub bytes_b: u64,
    pub modularity_a: f64,
    pub modularity_b: f64,
    pub iters_a: u64,
    pub iters_b: u64,
    /// Threshold-crossing regressions for this run (empty = within
    /// noise).
    pub regressions: Vec<String>,
}

/// The full diff of two artifacts.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    pub matched: Vec<RunDelta>,
    /// Labels only in the first (baseline) artifact.
    pub only_a: Vec<String>,
    /// Labels only in the second artifact.
    pub only_b: Vec<String>,
}

impl DiffReport {
    /// All regressions, prefixed with their run label.
    pub fn regressions(&self) -> Vec<String> {
        self.matched
            .iter()
            .flat_map(|d| d.regressions.iter().map(|r| format!("{}: {r}", d.label)))
            .collect()
    }

    /// Deterministic human rendering (byte-identical across
    /// invocations on the same inputs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diff: {} matched, {} only-baseline, {} only-current",
            self.matched.len(),
            self.only_a.len(),
            self.only_b.len()
        );
        let _ = writeln!(
            out,
            "{:<28} {:>16} {:>20} {:>20} {:>12}",
            "label", "wall ms", "bytes", "modularity", "iters"
        );
        for d in &self.matched {
            let _ = writeln!(
                out,
                "{:<28} {:>7.1}→{:<8.1} {:>9}→{:<10} {:>9.6}→{:<10.6} {:>5}→{:<6}",
                d.label,
                d.wall_a * 1000.0,
                d.wall_b * 1000.0,
                d.bytes_a,
                d.bytes_b,
                d.modularity_a,
                d.modularity_b,
                d.iters_a,
                d.iters_b,
            );
            for r in &d.regressions {
                let _ = writeln!(out, "  REGRESSION: {r}");
            }
        }
        for l in &self.only_a {
            let _ = writeln!(out, "only in baseline: {l}");
        }
        for l in &self.only_b {
            let _ = writeln!(out, "only in current:  {l}");
        }
        out
    }
}

fn by_label(a: &RunArtifact) -> BTreeMap<String, RunEntry> {
    // First entry wins on duplicate labels (legacy files may repeat).
    let mut map = BTreeMap::new();
    for e in &a.runs {
        map.entry(e.label.clone()).or_insert_with(|| e.clone());
    }
    map
}

/// Diff `current` against `baseline`, matching runs by label.
pub fn diff(baseline: &RunArtifact, current: &RunArtifact, t: &Thresholds) -> DiffReport {
    let a = by_label(baseline);
    let b = by_label(current);
    let mut report = DiffReport::default();
    for (label, ea) in &a {
        let Some(eb) = b.get(label) else {
            report.only_a.push(label.clone());
            continue;
        };
        let (ra, rb) = (&ea.report, &eb.report);
        let mut regressions = Vec::new();
        let wall_grew = rb.wall_seconds - ra.wall_seconds;
        if rb.wall_seconds > ra.wall_seconds * (1.0 + t.wall_tol)
            && wall_grew > t.wall_floor_seconds
        {
            regressions.push(format!(
                "wall {:.1}ms → {:.1}ms exceeds {:.0}% tolerance",
                ra.wall_seconds * 1000.0,
                rb.wall_seconds * 1000.0,
                t.wall_tol * 100.0
            ));
        }
        if ra.total_bytes > 0 && rb.total_bytes as f64 > ra.total_bytes as f64 * (1.0 + t.bytes_tol)
        {
            regressions.push(format!(
                "total bytes {} → {} exceeds {:.0}% tolerance",
                ra.total_bytes,
                rb.total_bytes,
                t.bytes_tol * 100.0
            ));
        }
        if rb.modularity < ra.modularity - t.modularity_drop {
            regressions.push(format!(
                "modularity {:.6} → {:.6} drops more than {:.3}",
                ra.modularity, rb.modularity, t.modularity_drop
            ));
        }
        if ra.iterations > 0
            && rb.iterations as f64 > ra.iterations as f64 * (1.0 + t.iters_tol) + 2.0
        {
            regressions.push(format!(
                "iterations to converge {} → {} exceeds {:.0}% tolerance",
                ra.iterations,
                rb.iterations,
                t.iters_tol * 100.0
            ));
        }
        report.matched.push(RunDelta {
            label: label.clone(),
            wall_a: ra.wall_seconds,
            wall_b: rb.wall_seconds,
            bytes_a: ra.total_bytes,
            bytes_b: rb.total_bytes,
            modularity_a: ra.modularity,
            modularity_b: rb.modularity,
            iters_a: ra.iterations,
            iters_b: rb.iterations,
            regressions,
        });
    }
    for label in b.keys() {
        if !a.contains_key(label) {
            report.only_b.push(label.clone());
        }
    }
    report
}

// ---------------------------------------------------------------------------
// gate
// ---------------------------------------------------------------------------

/// CI verdict: every baseline run must match within thresholds, and no
/// baseline run may silently disappear from the current artifact.
#[derive(Debug, Clone)]
pub struct GateResult {
    pub checked: usize,
    pub failures: Vec<String>,
}

impl GateResult {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            let _ = writeln!(out, "gate: PASS ({} runs within thresholds)", self.checked);
        } else {
            let _ = writeln!(
                out,
                "gate: FAIL ({} regressions across {} runs)",
                self.failures.len(),
                self.checked
            );
            for f in &self.failures {
                let _ = writeln!(out, "  {f}");
            }
        }
        out
    }
}

/// Gate `current` against `baseline`: regressions and missing baseline
/// runs fail; runs only in `current` are allowed (new coverage).
pub fn gate(baseline: &RunArtifact, current: &RunArtifact, t: &Thresholds) -> GateResult {
    gate_with_skips(baseline, current, t, &[])
}

/// [`gate`], but runs whose label starts with any prefix in `skips`
/// are excluded from the verdict entirely (neither regressions nor
/// missing-run failures). This keeps informational rows — e.g. the
/// machine-dependent weak-scaling sweeps in `BENCH_PR8.json` — inside
/// the committed artifact without letting their wall-time jitter gate
/// CI.
pub fn gate_with_skips(
    baseline: &RunArtifact,
    current: &RunArtifact,
    t: &Thresholds,
    skips: &[&str],
) -> GateResult {
    let skipped = |label: &str| skips.iter().any(|s| label.starts_with(s));
    let d = diff(baseline, current, t);
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for m in &d.matched {
        if skipped(&m.label) {
            continue;
        }
        checked += 1;
        failures.extend(m.regressions.iter().map(|r| format!("{}: {r}", m.label)));
    }
    for l in &d.only_a {
        if skipped(l) {
            continue;
        }
        failures.push(format!("{l}: present in baseline but missing from current"));
    }
    GateResult { checked, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_obs::RunReport;

    fn entry(label: &str, wall: f64, bytes: u64, q: f64, iters: u64) -> RunEntry {
        RunEntry {
            label: label.into(),
            report: RunReport {
                graph: label.split('/').next().unwrap_or("g").into(),
                ranks: 2,
                variant: "delta".into(),
                modularity: q,
                iterations: iters,
                wall_seconds: wall,
                total_bytes: bytes,
                ..Default::default()
            },
            telemetry: Vec::new(),
        }
    }

    fn artifact(entries: Vec<RunEntry>) -> RunArtifact {
        RunArtifact {
            name: "test".into(),
            description: String::new(),
            runs: entries,
        }
    }

    #[test]
    fn identical_artifacts_pass_the_gate() {
        let a = artifact(vec![entry("g/p2/delta", 0.2, 10_000, 0.8, 12)]);
        let g = gate(&a, &a, &Thresholds::default());
        assert!(g.passed(), "{:?}", g.failures);
        assert_eq!(g.checked, 1);
    }

    #[test]
    fn two_x_wall_regression_fails_the_gate() {
        let base = artifact(vec![entry("g/p2/delta", 0.2, 10_000, 0.8, 12)]);
        let cur = artifact(vec![entry("g/p2/delta", 0.4, 10_000, 0.8, 12)]);
        let g = gate(&base, &cur, &Thresholds::default());
        assert!(!g.passed());
        assert!(g.failures[0].contains("wall"), "{:?}", g.failures);
    }

    #[test]
    fn wall_floor_suppresses_tiny_absolute_jitter() {
        // 3ms → 7ms is >2x but under the absolute floor: noise, not signal.
        let base = artifact(vec![entry("g/p2/delta", 0.003, 10_000, 0.8, 12)]);
        let cur = artifact(vec![entry("g/p2/delta", 0.007, 10_000, 0.8, 12)]);
        assert!(gate(&base, &cur, &Thresholds::default()).passed());
    }

    #[test]
    fn byte_modularity_and_iteration_regressions_fail() {
        let base = artifact(vec![entry("g/p2/delta", 0.2, 10_000, 0.8, 12)]);
        let bytes = artifact(vec![entry("g/p2/delta", 0.2, 12_000, 0.8, 12)]);
        let quality = artifact(vec![entry("g/p2/delta", 0.2, 10_000, 0.77, 12)]);
        let iters = artifact(vec![entry("g/p2/delta", 0.2, 10_000, 0.8, 25)]);
        let t = Thresholds::default();
        assert!(gate(&base, &bytes, &t).failures[0].contains("bytes"));
        assert!(gate(&base, &quality, &t).failures[0].contains("modularity"));
        assert!(gate(&base, &iters, &t).failures[0].contains("iterations"));
    }

    #[test]
    fn missing_baseline_run_fails_new_runs_allowed() {
        let base = artifact(vec![
            entry("g/p2/delta", 0.2, 10_000, 0.8, 12),
            entry("g/p4/delta", 0.2, 10_000, 0.8, 12),
        ]);
        let cur = artifact(vec![
            entry("g/p2/delta", 0.2, 10_000, 0.8, 12),
            entry("g/p8/delta", 0.2, 10_000, 0.8, 12),
        ]);
        let g = gate(&base, &cur, &Thresholds::default());
        assert_eq!(g.failures.len(), 1);
        assert!(g.failures[0].contains("missing from current"));
    }

    #[test]
    fn diff_render_is_deterministic() {
        let base = artifact(vec![
            entry("g/p2/delta", 0.2, 10_000, 0.8, 12),
            entry("g/p4/full", 0.1, 20_000, 0.81, 14),
        ]);
        let cur = artifact(vec![entry("g/p2/delta", 0.5, 9_000, 0.8, 12)]);
        let r1 = diff(&base, &cur, &Thresholds::default()).render();
        let r2 = diff(&base, &cur, &Thresholds::default()).render();
        assert_eq!(r1, r2, "diff rendering must be byte-identical");
        assert!(r1.contains("only in baseline: g/p4/full"));
    }

    #[test]
    fn skip_label_prefixes_are_excluded_from_the_verdict() {
        let base = artifact(vec![
            entry("g/p2/delta", 0.2, 10_000, 0.8, 12),
            entry("weak/rmat17/p8", 0.2, 10_000, 0.8, 12),
        ]);
        // The weak-scaling row regresses on wall AND goes missing in a
        // second artifact — neither may gate when its prefix is skipped.
        let cur = artifact(vec![
            entry("g/p2/delta", 0.2, 10_000, 0.8, 12),
            entry("weak/rmat17/p8", 0.9, 10_000, 0.8, 12),
        ]);
        let t = Thresholds::default();
        assert!(!gate(&base, &cur, &t).passed(), "unskipped: must fail");
        let g = gate_with_skips(&base, &cur, &t, &["weak/"]);
        assert!(g.passed(), "{:?}", g.failures);
        assert_eq!(g.checked, 1, "skipped rows must not count as checked");

        let missing = artifact(vec![entry("g/p2/delta", 0.2, 10_000, 0.8, 12)]);
        assert!(gate_with_skips(&base, &missing, &t, &["weak/"]).passed());
        assert!(!gate(&base, &missing, &t).passed());
    }

    #[test]
    fn show_renders_memory_line_from_gauges() {
        use louvain_obs::MetricsRegistry;
        let mut e = entry("g/p2/delta", 0.2, 10_000, 0.8, 12);
        e.report.edges = 1_000;
        let reg = MetricsRegistry::default();
        reg.gauge_set("mem.csr_bytes", 48_000.0);
        reg.gauge_set("mem.mapped_bytes", 16_000.0);
        reg.gauge_set("mem.peak_rss_bytes", 8.0 * 1024.0 * 1024.0);
        e.report.metrics = reg.snapshot();
        let text = show(&artifact(vec![e]));
        assert!(
            text.contains("memory: csr=48000 B  mapped=16000 B"),
            "{text}"
        );
        assert!(text.contains("bytes/edge=64.0"), "{text}");
        assert!(text.contains("peak_rss=8.0 MiB"), "{text}");

        // Artifacts without the gauges (pre-PR7) render no memory line.
        let plain = show(&artifact(vec![entry("g/p2/delta", 0.2, 10_000, 0.8, 12)]));
        assert!(!plain.contains("memory:"), "{plain}");
    }

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        assert_eq!(sparkline(&[0.3, 0.3]), "▄▄");
    }

    #[test]
    fn show_includes_convergence_table_when_traced() {
        let mut e = entry("g/p2/delta", 0.2, 10_000, 0.8, 2);
        e.telemetry = vec![
            TelemetryRow {
                phase: 0,
                iteration: 0,
                modularity: 0.4,
                delta_q: 0.0,
                moves: 100,
                active: 200,
                vertices: 200,
                communities: 150,
                community_sizes: Default::default(),
                ghost_bytes_per_rank: vec![64, 32],
            },
            TelemetryRow {
                phase: 0,
                iteration: 1,
                modularity: 0.6,
                delta_q: 0.2,
                moves: 10,
                active: 50,
                vertices: 200,
                communities: 60,
                community_sizes: Default::default(),
                ghost_bytes_per_rank: vec![8, 8],
            },
        ];
        let text = show(&artifact(vec![e]));
        assert!(text.contains("convergence: ▁█"));
        assert!(text.contains("25.0%"), "{text}");
        assert!(text.contains("96"), "ghost byte total:\n{text}");
    }
}
