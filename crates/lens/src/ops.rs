//! Live-daemon views: the `lens top` dashboard over Prometheus
//! exposition text and the `lens tail` pretty-printer over the
//! daemon's JSONL event log.
//!
//! Both renderers are pure functions over already-fetched text, so the
//! binary owns all I/O (TCP fetch, file read, `--watch` polling) and
//! the rendering stays deterministic and unit-testable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use louvain_obs::{Json, OpEvent};

/// One metric from parsed exposition text; series with labels (the
/// histogram buckets) keep their label set in the key.
pub type PromMetrics = BTreeMap<String, f64>;

fn get(m: &PromMetrics, name: &str) -> Option<f64> {
    m.get(name).copied()
}

fn count(m: &PromMetrics, name: &str) -> u64 {
    get(m, name).unwrap_or(0.0) as u64
}

/// Render the `lens top` dashboard from parsed Prometheus text (the
/// output of [`louvain_obs::parse_prometheus_text`] over a
/// `metrics-text` response, a `GET /metrics` body, or a saved file).
pub fn render_top(m: &PromMetrics) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "queue depth {:>4}   running {:>4}",
        count(m, "serve_queue_depth"),
        count(m, "serve_jobs_running"),
    );
    let _ = writeln!(
        out,
        "jobs: accepted {}  completed {}  rejected {}  cancelled {}  \
         quarantined {}  resumed {}",
        count(m, "serve_jobs_accepted_total"),
        count(m, "serve_jobs_completed_total"),
        count(m, "serve_jobs_rejected_total"),
        count(m, "serve_jobs_cancelled_total"),
        count(m, "serve_jobs_quarantined_total"),
        count(m, "serve_jobs_resumed_total"),
    );
    let hits = count(m, "serve_cache_hits_total");
    let misses = count(m, "serve_cache_misses_total");
    if hits + misses > 0 {
        let _ = writeln!(
            out,
            "cache: hits {}  misses {}  hit rate {:.1}%",
            hits,
            misses,
            100.0 * hits as f64 / (hits + misses) as f64,
        );
    }
    if let Some(n) = get(m, "serve_job_latency_ms_count").filter(|&n| n > 0.0) {
        let _ = writeln!(
            out,
            "job latency (ms): p50<={} p95<={} p99<={}  over {} jobs",
            count(m, "serve_job_latency_ms_p50"),
            count(m, "serve_job_latency_ms_p95"),
            count(m, "serve_job_latency_ms_p99"),
            n as u64,
        );
    }
    // Anything beyond the serve plane rides along summarised, so `top`
    // against a full-snapshot daemon shows how much else is live.
    let other = m
        .keys()
        .filter(|k| !k.starts_with("serve_") && !k.contains('{'))
        .count();
    if other > 0 {
        let _ = writeln!(out, "({other} non-serve series exported)");
    }
    out
}

/// Parse a JSONL event log (or any prefix of one) into typed events.
/// A torn final line — the one a `kill -9` can leave — is tolerated;
/// any other malformed line is an error with its line number.
pub fn parse_event_log(text: &str) -> Result<Vec<OpEvent>, String> {
    let mut events = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(line)
            .map_err(|e| format!("line {}: {e:?}", i + 1))
            .and_then(|doc| OpEvent::from_json(&doc).map_err(|e| format!("line {}: {e}", i + 1)));
        match parsed {
            Ok(ev) => events.push(ev),
            Err(e) if i + 1 == lines.len() => {
                // The log is flushed per event, so only the very last
                // line can be mid-write when the process died.
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(events)
}

/// Render one event as an aligned human line:
/// `   seq  unix_ms  kind            job       key=value ...`.
pub fn render_event(ev: &OpEvent) -> String {
    let mut line = format!(
        "{:>6}  {:>13}  {:<15} {:<12}",
        ev.seq,
        ev.unix_ms,
        ev.kind.as_str(),
        ev.job.as_deref().unwrap_or("-"),
    );
    for (k, v) in &ev.fields {
        let v = match v {
            Json::Str(s) => s.clone(),
            other => other.to_string_compact(),
        };
        let _ = write!(line, " {k}={v}");
    }
    line
}

/// The `lens tail` body: every event passing the optional kind/job
/// filters, one rendered line each. Filters use the snake_case wire
/// names ([`louvain_obs::OpKind::as_str`]).
pub fn render_tail(events: &[OpEvent], kind: Option<&str>, job: Option<&str>) -> String {
    let mut out = String::new();
    for ev in events {
        if kind.is_some_and(|k| ev.kind.as_str() != k) {
            continue;
        }
        if job.is_some_and(|j| ev.job.as_deref() != Some(j)) {
            continue;
        }
        out.push_str(&render_event(ev));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_obs::OpKind;

    fn ev(seq: u64, kind: OpKind, job: Option<&str>) -> OpEvent {
        OpEvent {
            seq,
            unix_ms: 1000 + seq,
            kind,
            job: job.map(str::to_string),
            fields: vec![("reason".to_string(), Json::str("queue_full"))],
        }
    }

    #[test]
    fn top_renders_counts_and_hit_rate() {
        let mut m = PromMetrics::new();
        m.insert("serve_queue_depth".into(), 3.0);
        m.insert("serve_jobs_running".into(), 2.0);
        m.insert("serve_jobs_accepted_total".into(), 10.0);
        m.insert("serve_jobs_completed_total".into(), 7.0);
        m.insert("serve_cache_hits_total".into(), 3.0);
        m.insert("serve_cache_misses_total".into(), 1.0);
        m.insert("serve_job_latency_ms_count".into(), 7.0);
        m.insert("serve_job_latency_ms_p50".into(), 511.0);
        m.insert("serve_job_latency_ms_p95".into(), 2047.0);
        m.insert("serve_job_latency_ms_p99".into(), 2047.0);
        let text = render_top(&m);
        assert!(text.contains("queue depth    3   running    2"), "{text}");
        assert!(text.contains("hit rate 75.0%"), "{text}");
        assert!(text.contains("p50<=511 p95<=2047 p99<=2047"), "{text}");
        // Deterministic: same map, byte-identical render.
        assert_eq!(text, render_top(&m));
    }

    #[test]
    fn tail_round_trips_and_filters() {
        let events = vec![
            ev(1, OpKind::JobAccepted, Some("a")),
            ev(2, OpKind::JobShed, Some("b")),
            ev(3, OpKind::DrainBegin, None),
        ];
        let log: String = events
            .iter()
            .map(|e| e.to_json().to_string_compact() + "\n")
            .collect();
        let parsed = parse_event_log(&log).unwrap();
        assert_eq!(parsed, events);

        let all = render_tail(&parsed, None, None);
        assert_eq!(all.lines().count(), 3);
        assert!(all.contains("job_shed"), "{all}");
        assert!(all.contains("reason=queue_full"), "{all}");

        let shed_only = render_tail(&parsed, Some("job_shed"), None);
        assert_eq!(shed_only.lines().count(), 1);
        let job_a = render_tail(&parsed, None, Some("a"));
        assert_eq!(job_a.lines().count(), 1);
        assert!(job_a.contains("job_accepted"), "{job_a}");
    }

    #[test]
    fn torn_final_line_is_tolerated_but_interior_garbage_is_not() {
        let good = ev(1, OpKind::JobAccepted, Some("a"))
            .to_json()
            .to_string_compact();
        let torn = format!("{good}\n{{\"seq\":2,\"unix_m");
        assert_eq!(parse_event_log(&torn).unwrap().len(), 1);
        let interior = format!("not json\n{good}\n");
        assert!(parse_event_log(&interior).is_err());
    }
}
