//! The JSON-lines wire protocol `louvaind` speaks over stdin pipes and
//! TCP connections.
//!
//! Requests, one JSON object per line:
//!
//! * `{"type":"submit", "job_id":"...", "graph":"...", "ranks":2,
//!    "config":{...}, "fault_plan":"...", ...}` — answered immediately
//!   with `accepted` or `rejected` (admission control never blocks the
//!   listener), then with a `result` line once the job is terminal.
//! * `{"type":"status", "job_id":"..."}` — current lifecycle state.
//! * `{"type":"query", "job_id":"..."}` — the dendrogram (per-level
//!   assignments) of a finished job, from the result cache.
//! * `{"type":"metrics"}` — the server's `serve.*` counters.
//! * `{"type":"shutdown"}` — drain in-flight jobs to a phase-boundary
//!   checkpoint, answer `drained`, and close the session.
//!
//! Unknown or unparsable lines are answered with a typed `error` line;
//! the session stays up.

use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};

use louvain_obs::Json;

use crate::job::JobSpec;
use crate::server::{JobStatus, Server, SubmitError};

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

fn error_line(message: &str) -> Json {
    obj(vec![
        ("type", Json::str("error")),
        ("message", Json::str(message)),
    ])
}

/// Encode a terminal (or in-flight, for `status`) job state.
pub fn status_json(job_id: &str, seq: Option<u64>, status: &JobStatus) -> Json {
    let mut members = vec![("type", Json::str("result")), ("job_id", Json::str(job_id))];
    if let Some(seq) = seq {
        members.push(("seq", num(seq)));
    }
    match status {
        JobStatus::Queued => members.push(("outcome", Json::str("queued"))),
        JobStatus::Running => members.push(("outcome", Json::str("running"))),
        JobStatus::Done {
            cached,
            resumed_from_phase,
            crash_recoveries,
            hang_recoveries,
            wall_ms,
            result,
        } => {
            members.push(("outcome", Json::str("done")));
            members.push(("cached", Json::Bool(*cached)));
            members.push((
                "resumed_from_phase",
                resumed_from_phase.map_or(Json::Null, num),
            ));
            members.push(("crash_recoveries", num(*crash_recoveries)));
            members.push(("hang_recoveries", num(*hang_recoveries)));
            members.push(("wall_ms", num(*wall_ms)));
            members.push(("modularity", Json::Num(result.modularity)));
            members.push(("num_communities", num(result.num_communities as u64)));
            members.push(("phases", num(result.phases as u64)));
            members.push(("levels", num(result.levels.len() as u64)));
        }
        JobStatus::Failed { error, attempts } => {
            members.push(("outcome", Json::str("failed")));
            members.push(("error", Json::str(error.clone())));
            members.push(("attempts", num(*attempts as u64)));
        }
        JobStatus::Quarantined { error, attempts } => {
            members.push(("outcome", Json::str("quarantined")));
            members.push(("error", Json::str(error.clone())));
            members.push(("attempts", num(*attempts as u64)));
        }
        JobStatus::Cancelled { at_phase } => {
            members.push(("outcome", Json::str("cancelled")));
            members.push(("at_phase", at_phase.map_or(Json::Null, num)));
        }
    }
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_line<W: Write>(writer: &Arc<Mutex<W>>, doc: &Json) {
    let mut w = writer.lock().unwrap();
    let _ = writeln!(w, "{}", doc.to_string_compact());
    let _ = w.flush();
}

/// Serve one JSON-lines session: read requests from `reader`, write
/// responses to the shared `writer` (shared because result lines for
/// accepted jobs arrive asynchronously, from waiter threads). Returns
/// `true` when the client requested shutdown — the server is already
/// drained in that case.
pub fn serve_lines<R: BufRead, W: Write + Send + 'static>(
    server: &Server,
    reader: R,
    writer: Arc<Mutex<W>>,
) -> bool {
    let mut waiters: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut shutdown = false;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match handle_line(server, &line, &writer, &mut waiters) {
            SessionStep::Continue => {}
            SessionStep::Shutdown => {
                shutdown = true;
                break;
            }
        }
    }
    if shutdown {
        // Drain before answering so "drained" really means drained:
        // queued jobs shed, running jobs checkpointed and stopped.
        server.drain();
    }
    for h in waiters {
        let _ = h.join();
    }
    if shutdown {
        write_line(&writer, &obj(vec![("type", Json::str("drained"))]));
    }
    shutdown
}

enum SessionStep {
    Continue,
    Shutdown,
}

fn handle_line<W: Write + Send + 'static>(
    server: &Server,
    line: &str,
    writer: &Arc<Mutex<W>>,
    waiters: &mut Vec<std::thread::JoinHandle<()>>,
) -> SessionStep {
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => {
            write_line(writer, &error_line(&format!("bad request line: {e}")));
            return SessionStep::Continue;
        }
    };
    let Some(ty) = doc.get("type").and_then(Json::as_str) else {
        write_line(writer, &error_line("request has no string field `type`"));
        return SessionStep::Continue;
    };
    match ty {
        "submit" => {
            let spec = match JobSpec::from_json(&doc) {
                Ok(s) => s,
                Err(e) => {
                    write_line(writer, &error_line(&e));
                    return SessionStep::Continue;
                }
            };
            let job_id = spec.job_id.clone();
            match server.submit(spec) {
                Ok(seq) => {
                    write_line(
                        writer,
                        &obj(vec![
                            ("type", Json::str("accepted")),
                            ("job_id", Json::str(job_id.clone())),
                            ("seq", num(seq)),
                        ]),
                    );
                    let server = server.clone();
                    let writer = writer.clone();
                    waiters.push(std::thread::spawn(move || {
                        if let Some(status) = server.wait(seq) {
                            write_line(&writer, &status_json(&job_id, Some(seq), &status));
                        }
                    }));
                }
                Err(e) => {
                    let reason = match &e {
                        SubmitError::QueueFull => "queue_full".to_string(),
                        SubmitError::ShuttingDown => "shutting_down".to_string(),
                        SubmitError::Invalid(msg) => format!("invalid: {msg}"),
                    };
                    write_line(
                        writer,
                        &obj(vec![
                            ("type", Json::str("rejected")),
                            ("job_id", Json::str(job_id)),
                            ("reason", Json::str(reason)),
                        ]),
                    );
                }
            }
        }
        "status" => {
            let Some(job_id) = doc.get("job_id").and_then(Json::as_str) else {
                write_line(writer, &error_line("status needs `job_id`"));
                return SessionStep::Continue;
            };
            match server.status_by_id(job_id) {
                Some(status) => write_line(writer, &status_json(job_id, None, &status)),
                None => write_line(writer, &error_line(&format!("unknown job `{job_id}`"))),
            }
        }
        "query" => {
            let Some(job_id) = doc.get("job_id").and_then(Json::as_str) else {
                write_line(writer, &error_line("query needs `job_id`"));
                return SessionStep::Continue;
            };
            match server.query(job_id) {
                Some(result) => {
                    let levels = Json::Arr(
                        result
                            .levels
                            .iter()
                            .map(|level| Json::Arr(level.iter().map(|&c| num(c)).collect()))
                            .collect(),
                    );
                    write_line(
                        writer,
                        &obj(vec![
                            ("type", Json::str("hierarchy")),
                            ("job_id", Json::str(job_id)),
                            ("modularity", Json::Num(result.modularity)),
                            ("num_communities", num(result.num_communities as u64)),
                            ("levels", levels),
                        ]),
                    );
                }
                None => write_line(
                    writer,
                    &error_line(&format!("no finished result for job `{job_id}`")),
                ),
            }
        }
        "metrics" => {
            let snap = server.metrics_snapshot();
            let counters = Json::Obj(
                snap.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), num(*v)))
                    .collect(),
            );
            write_line(
                writer,
                &obj(vec![("type", Json::str("metrics")), ("counters", counters)]),
            );
        }
        "shutdown" => return SessionStep::Shutdown,
        other => {
            write_line(
                writer,
                &error_line(&format!("unknown request type `{other}`")),
            );
        }
    }
    SessionStep::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use louvain_graph::{binio, gen};
    use std::io::Cursor;
    use std::path::PathBuf;

    fn tiny_graph(dir: &std::path::Path) -> PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join("lfr_tiny.bin");
        if !path.exists() {
            let g = gen::lfr(gen::LfrParams::small(300, 7)).graph;
            binio::write_edge_list(&path, &g.to_edge_list()).unwrap();
        }
        path
    }

    fn session_output(server: &Server, script: &str) -> (bool, Vec<Json>) {
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let shutdown = serve_lines(server, Cursor::new(script.to_string()), writer.clone());
        let bytes = writer.lock().unwrap().clone();
        let lines = String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("every response line is JSON"))
            .collect();
        (shutdown, lines)
    }

    #[test]
    fn session_runs_submit_status_query_shutdown() {
        let root = std::env::temp_dir().join("louvain-serve-proto-test");
        let graph = tiny_graph(&root);
        let server = Server::start(ServeConfig {
            workers: 1,
            checkpoint_root: root.join("ckpt"),
            ..ServeConfig::default()
        });
        // Session 1: submit and wait — serve_lines joins the waiter
        // thread before returning, so the result line is in the output.
        let script = format!(
            r#"{{"type":"submit","job_id":"a","graph":{:?},"ranks":2,"config":{{"max_phases":3}}}}"#,
            graph.to_string_lossy()
        ) + "\n";
        let (shutdown, lines) = session_output(&server, &script);
        assert!(!shutdown);
        assert_eq!(
            lines[0].get("type").and_then(Json::as_str),
            Some("accepted")
        );
        let result = lines
            .iter()
            .find(|l| l.get("type").and_then(Json::as_str) == Some("result"))
            .expect("a result line arrives once the job is terminal");
        assert_eq!(result.get("outcome").and_then(Json::as_str), Some("done"));
        assert!(result.get("modularity").and_then(Json::as_f64).unwrap() > 0.0);

        // Session 2: query the dendrogram, then shut down.
        let script = "{\"type\":\"query\",\"job_id\":\"a\"}\n{\"type\":\"shutdown\"}\n";
        let (shutdown, lines) = session_output(&server, script);
        assert!(shutdown);
        let hierarchy = &lines[0];
        assert_eq!(
            hierarchy.get("type").and_then(Json::as_str),
            Some("hierarchy")
        );
        let levels = hierarchy.get("levels").and_then(Json::as_arr).unwrap();
        assert!(!levels.is_empty(), "dendrogram has at least one level");
        assert_eq!(levels[0].as_arr().unwrap().len(), 300);
        assert_eq!(
            lines.last().unwrap().get("type").and_then(Json::as_str),
            Some("drained")
        );

        // Follow-up session against a drained server: submits are shed.
        let (shutdown, lines) = session_output(
            &server,
            &format!(
                "{{\"type\":\"submit\",\"job_id\":\"b\",\"graph\":{:?}}}\n",
                graph.to_string_lossy()
            ),
        );
        assert!(!shutdown);
        assert_eq!(
            lines[0].get("type").and_then(Json::as_str),
            Some("rejected")
        );
        assert_eq!(
            lines[0].get("reason").and_then(Json::as_str),
            Some("shutting_down")
        );
    }

    #[test]
    fn bad_lines_get_typed_errors_and_do_not_kill_the_session() {
        let server = Server::start(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let script = "not json\n{\"no_type\":1}\n{\"type\":\"frobnicate\"}\n\
                      {\"type\":\"status\",\"job_id\":\"nope\"}\n";
        let (shutdown, lines) = session_output(&server, script);
        assert!(!shutdown);
        assert_eq!(lines.len(), 4);
        for l in &lines {
            assert_eq!(l.get("type").and_then(Json::as_str), Some("error"));
        }
        server.drain();
    }
}
