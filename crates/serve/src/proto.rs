//! The JSON-lines wire protocol `louvaind` speaks over stdin pipes and
//! TCP connections.
//!
//! Requests, one JSON object per line:
//!
//! * `{"type":"submit", "job_id":"...", "graph":"...", "ranks":2,
//!    "config":{...}, "fault_plan":"...", ...}` — answered immediately
//!   with `accepted` or `rejected` (admission control never blocks the
//!   listener), then with a `result` line once the job is terminal.
//! * `{"type":"status", "job_id":"..."}` — current lifecycle state,
//!   including queue position (queued jobs) and current
//!   phase/iteration/modularity (running jobs).
//! * `{"type":"query", "job_id":"..."}` — the dendrogram (per-level
//!   assignments) of a finished job, from the result cache.
//! * `{"type":"metrics"}` — the server's `serve.*` counters.
//! * `{"type":"metrics-text"}` — the full live snapshot rendered as
//!   Prometheus exposition text (in a `metrics_text` response line).
//! * `{"type":"watch", "job_id":"..."}` — subscribe to the job's
//!   per-(phase, iteration) progress stream: replayed + live `progress`
//!   lines, closed by the job's terminal `result` line.
//! * `{"type":"dump"}` — dump the flight recorder to disk on demand.
//! * `{"type":"shutdown"}` — drain in-flight jobs to a phase-boundary
//!   checkpoint, answer `drained`, and close the session.
//!
//! Unknown or unparsable lines are answered with a typed `error` line;
//! the session stays up. As a convenience for scrapers, a session whose
//! first line is `GET /metrics ...` is treated as a plain HTTP request:
//! it gets the Prometheus text back as an HTTP response and the session
//! closes.

use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use louvain_obs::{Json, TelemetryRow};

use crate::job::JobSpec;
use crate::server::{JobStatus, Server, SubmitError};

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

fn error_line(message: &str) -> Json {
    obj(vec![
        ("type", Json::str("error")),
        ("message", Json::str(message)),
    ])
}

/// Encode a terminal (or in-flight, for `status`) job state.
pub fn status_json(job_id: &str, seq: Option<u64>, status: &JobStatus) -> Json {
    let mut members = vec![("type", Json::str("result")), ("job_id", Json::str(job_id))];
    if let Some(seq) = seq {
        members.push(("seq", num(seq)));
    }
    match status {
        JobStatus::Queued => members.push(("outcome", Json::str("queued"))),
        JobStatus::Running => members.push(("outcome", Json::str("running"))),
        JobStatus::Done {
            cached,
            resumed_from_phase,
            crash_recoveries,
            hang_recoveries,
            wall_ms,
            result,
        } => {
            members.push(("outcome", Json::str("done")));
            members.push(("cached", Json::Bool(*cached)));
            members.push((
                "resumed_from_phase",
                resumed_from_phase.map_or(Json::Null, num),
            ));
            members.push(("crash_recoveries", num(*crash_recoveries)));
            members.push(("hang_recoveries", num(*hang_recoveries)));
            members.push(("wall_ms", num(*wall_ms)));
            members.push(("modularity", Json::Num(result.modularity)));
            members.push(("num_communities", num(result.num_communities as u64)));
            members.push(("phases", num(result.phases as u64)));
            members.push(("levels", num(result.levels.len() as u64)));
        }
        JobStatus::Failed { error, attempts } => {
            members.push(("outcome", Json::str("failed")));
            members.push(("error", Json::str(error.clone())));
            members.push(("attempts", num(*attempts as u64)));
        }
        JobStatus::Quarantined { error, attempts } => {
            members.push(("outcome", Json::str("quarantined")));
            members.push(("error", Json::str(error.clone())));
            members.push(("attempts", num(*attempts as u64)));
        }
        JobStatus::Cancelled { at_phase } => {
            members.push(("outcome", Json::str("cancelled")));
            members.push(("at_phase", at_phase.map_or(Json::Null, num)));
        }
    }
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One per-(phase, iteration) progress line for `watch` subscribers.
pub fn progress_json(job_id: &str, row: &TelemetryRow) -> Json {
    obj(vec![
        ("type", Json::str("progress")),
        ("job_id", Json::str(job_id)),
        ("phase", num(row.phase)),
        ("iteration", num(row.iteration)),
        ("modularity", Json::Num(row.modularity)),
        ("delta_q", Json::Num(row.delta_q)),
        ("moves", num(row.moves)),
        ("active", num(row.active)),
        ("vertices", num(row.vertices)),
        ("active_fraction", Json::Num(row.active_fraction())),
    ])
}

fn write_line<W: Write>(writer: &Arc<Mutex<W>>, doc: &Json) {
    let mut w = writer.lock().unwrap();
    let _ = writeln!(w, "{}", doc.to_string_compact());
    let _ = w.flush();
}

/// Answer a plain `GET /metrics` HTTP request on the JSON-lines port —
/// enough for a Prometheus scraper pointed straight at the daemon. Any
/// other path gets a 404. The session closes after one response, as
/// HTTP/1.0 clients expect.
fn serve_http_get<W: Write>(server: &Server, request_line: &str, writer: &Arc<Mutex<W>>) {
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        match server.prometheus_text() {
            Ok(text) => ("200 OK", text),
            Err(e) => ("500 Internal Server Error", format!("{e}\n")),
        }
    } else {
        ("404 Not Found", "only /metrics is served\n".to_string())
    };
    let mut w = writer.lock().unwrap();
    let _ = write!(
        w,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = w.flush();
}

/// Serve one JSON-lines session: read requests from `reader`, write
/// responses to the shared `writer` (shared because result lines for
/// accepted jobs arrive asynchronously, from waiter threads). Returns
/// `true` when the client requested shutdown — the server is already
/// drained in that case.
pub fn serve_lines<R: BufRead, W: Write + Send + 'static>(
    server: &Server,
    reader: R,
    writer: Arc<Mutex<W>>,
) -> bool {
    let mut waiters: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut shutdown = false;
    let mut first = true;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if first && line.starts_with("GET ") {
            serve_http_get(server, &line, &writer);
            return false;
        }
        first = false;
        if line.trim().is_empty() {
            continue;
        }
        match handle_line(server, &line, &writer, &mut waiters) {
            SessionStep::Continue => {}
            SessionStep::Shutdown => {
                shutdown = true;
                break;
            }
        }
    }
    if shutdown {
        // Drain before answering so "drained" really means drained:
        // queued jobs shed, running jobs checkpointed and stopped.
        server.drain();
    }
    for h in waiters {
        let _ = h.join();
    }
    if shutdown {
        write_line(&writer, &obj(vec![("type", Json::str("drained"))]));
    }
    shutdown
}

enum SessionStep {
    Continue,
    Shutdown,
}

fn handle_line<W: Write + Send + 'static>(
    server: &Server,
    line: &str,
    writer: &Arc<Mutex<W>>,
    waiters: &mut Vec<std::thread::JoinHandle<()>>,
) -> SessionStep {
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => {
            write_line(writer, &error_line(&format!("bad request line: {e}")));
            return SessionStep::Continue;
        }
    };
    let Some(ty) = doc.get("type").and_then(Json::as_str) else {
        write_line(writer, &error_line("request has no string field `type`"));
        return SessionStep::Continue;
    };
    match ty {
        "submit" => {
            let spec = match JobSpec::from_json(&doc) {
                Ok(s) => s,
                Err(e) => {
                    write_line(writer, &error_line(&e));
                    return SessionStep::Continue;
                }
            };
            let job_id = spec.job_id.clone();
            match server.submit(spec) {
                Ok(seq) => {
                    write_line(
                        writer,
                        &obj(vec![
                            ("type", Json::str("accepted")),
                            ("job_id", Json::str(job_id.clone())),
                            ("seq", num(seq)),
                        ]),
                    );
                    let server = server.clone();
                    let writer = writer.clone();
                    waiters.push(std::thread::spawn(move || {
                        if let Some(status) = server.wait(seq) {
                            write_line(&writer, &status_json(&job_id, Some(seq), &status));
                        }
                    }));
                }
                Err(e) => {
                    let reason = match &e {
                        SubmitError::QueueFull => "queue_full".to_string(),
                        SubmitError::ShuttingDown => "shutting_down".to_string(),
                        SubmitError::Invalid(msg) => format!("invalid: {msg}"),
                    };
                    write_line(
                        writer,
                        &obj(vec![
                            ("type", Json::str("rejected")),
                            ("job_id", Json::str(job_id)),
                            ("reason", Json::str(reason)),
                        ]),
                    );
                }
            }
        }
        "status" => {
            let Some(job_id) = doc.get("job_id").and_then(Json::as_str) else {
                write_line(writer, &error_line("status needs `job_id`"));
                return SessionStep::Continue;
            };
            let detail = server
                .seq_of(job_id)
                .and_then(|seq| server.status_detail(seq));
            match detail {
                Some(d) => {
                    let mut line = status_json(job_id, None, &d.status);
                    if let Json::Obj(members) = &mut line {
                        if let Some(pos) = d.queue_position {
                            members.push(("queue_position".to_string(), num(pos as u64)));
                        }
                        // Only in-flight jobs report a current position;
                        // terminal lines already carry their final
                        // modularity/phases fields.
                        if matches!(d.status, JobStatus::Running) {
                            if let Some((phase, iteration, modularity)) = d.current {
                                members.push(("phase".to_string(), num(phase)));
                                members.push(("iteration".to_string(), num(iteration)));
                                members.push(("modularity".to_string(), Json::Num(modularity)));
                            }
                        }
                    }
                    write_line(writer, &line);
                }
                None => write_line(writer, &error_line(&format!("unknown job `{job_id}`"))),
            }
        }
        "query" => {
            let Some(job_id) = doc.get("job_id").and_then(Json::as_str) else {
                write_line(writer, &error_line("query needs `job_id`"));
                return SessionStep::Continue;
            };
            match server.query(job_id) {
                Some(result) => {
                    let levels = Json::Arr(
                        result
                            .levels
                            .iter()
                            .map(|level| Json::Arr(level.iter().map(|&c| num(c)).collect()))
                            .collect(),
                    );
                    write_line(
                        writer,
                        &obj(vec![
                            ("type", Json::str("hierarchy")),
                            ("job_id", Json::str(job_id)),
                            ("modularity", Json::Num(result.modularity)),
                            ("num_communities", num(result.num_communities as u64)),
                            ("levels", levels),
                        ]),
                    );
                }
                None => write_line(
                    writer,
                    &error_line(&format!("no finished result for job `{job_id}`")),
                ),
            }
        }
        "metrics" => {
            let snap = server.metrics_snapshot();
            let counters = Json::Obj(
                snap.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), num(*v)))
                    .collect(),
            );
            write_line(
                writer,
                &obj(vec![("type", Json::str("metrics")), ("counters", counters)]),
            );
        }
        "metrics-text" => match server.prometheus_text() {
            Ok(text) => write_line(
                writer,
                &obj(vec![
                    ("type", Json::str("metrics_text")),
                    ("text", Json::str(text)),
                ]),
            ),
            Err(e) => write_line(writer, &error_line(&e)),
        },
        "watch" => {
            let Some(job_id) = doc.get("job_id").and_then(Json::as_str) else {
                write_line(writer, &error_line("watch needs `job_id`"));
                return SessionStep::Continue;
            };
            let Some(seq) = server.seq_of(job_id) else {
                write_line(writer, &error_line(&format!("unknown job `{job_id}`")));
                return SessionStep::Continue;
            };
            // Subscribe before the first status check so no row can slip
            // between the replay and the live stream.
            let Some((replay, rx)) = server.watch(seq) else {
                write_line(writer, &error_line(&format!("unknown job `{job_id}`")));
                return SessionStep::Continue;
            };
            write_line(
                writer,
                &obj(vec![
                    ("type", Json::str("watching")),
                    ("job_id", Json::str(job_id)),
                    ("seq", num(seq)),
                ]),
            );
            for row in &replay {
                write_line(writer, &progress_json(job_id, row));
            }
            loop {
                match rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(row) => write_line(writer, &progress_json(job_id, &row)),
                    Err(err) => match server.status(seq) {
                        None => break,
                        Some(JobStatus::Queued) | Some(JobStatus::Running) => {
                            // A dropped sender with the job still in
                            // flight means it is between attempts; fall
                            // back to polling on the timer.
                            if err == std::sync::mpsc::RecvTimeoutError::Disconnected {
                                std::thread::sleep(Duration::from_millis(50));
                            }
                        }
                        Some(status) => {
                            // Rows buffered ahead of the terminal
                            // transition are still in the channel: the
                            // sink pushes every row before the status
                            // flips, so draining here keeps the stream
                            // complete.
                            while let Ok(row) = rx.try_recv() {
                                write_line(writer, &progress_json(job_id, &row));
                            }
                            write_line(writer, &status_json(job_id, Some(seq), &status));
                            break;
                        }
                    },
                }
            }
        }
        "dump" => match server.dump_flight("on_demand") {
            Ok(path) => write_line(
                writer,
                &obj(vec![
                    ("type", Json::str("flight")),
                    ("path", Json::str(path.to_string_lossy().into_owned())),
                ]),
            ),
            Err(e) => write_line(writer, &error_line(&format!("flight dump failed: {e}"))),
        },
        "shutdown" => return SessionStep::Shutdown,
        other => {
            write_line(
                writer,
                &error_line(&format!("unknown request type `{other}`")),
            );
        }
    }
    SessionStep::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use louvain_graph::{binio, gen};
    use std::io::Cursor;
    use std::path::PathBuf;

    fn tiny_graph(dir: &std::path::Path) -> PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join("lfr_tiny.bin");
        if !path.exists() {
            let g = gen::lfr(gen::LfrParams::small(300, 7)).graph;
            binio::write_edge_list(&path, &g.to_edge_list()).unwrap();
        }
        path
    }

    fn session_output(server: &Server, script: &str) -> (bool, Vec<Json>) {
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let shutdown = serve_lines(server, Cursor::new(script.to_string()), writer.clone());
        let bytes = writer.lock().unwrap().clone();
        let lines = String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("every response line is JSON"))
            .collect();
        (shutdown, lines)
    }

    #[test]
    fn session_runs_submit_status_query_shutdown() {
        let root = std::env::temp_dir().join("louvain-serve-proto-test");
        let graph = tiny_graph(&root);
        let server = Server::start(ServeConfig {
            workers: 1,
            checkpoint_root: root.join("ckpt"),
            ..ServeConfig::default()
        });
        // Session 1: submit and wait — serve_lines joins the waiter
        // thread before returning, so the result line is in the output.
        let script = format!(
            r#"{{"type":"submit","job_id":"a","graph":{:?},"ranks":2,"config":{{"max_phases":3}}}}"#,
            graph.to_string_lossy()
        ) + "\n";
        let (shutdown, lines) = session_output(&server, &script);
        assert!(!shutdown);
        assert_eq!(
            lines[0].get("type").and_then(Json::as_str),
            Some("accepted")
        );
        let result = lines
            .iter()
            .find(|l| l.get("type").and_then(Json::as_str) == Some("result"))
            .expect("a result line arrives once the job is terminal");
        assert_eq!(result.get("outcome").and_then(Json::as_str), Some("done"));
        assert!(result.get("modularity").and_then(Json::as_f64).unwrap() > 0.0);

        // Session 2: query the dendrogram, then shut down.
        let script = "{\"type\":\"query\",\"job_id\":\"a\"}\n{\"type\":\"shutdown\"}\n";
        let (shutdown, lines) = session_output(&server, script);
        assert!(shutdown);
        let hierarchy = &lines[0];
        assert_eq!(
            hierarchy.get("type").and_then(Json::as_str),
            Some("hierarchy")
        );
        let levels = hierarchy.get("levels").and_then(Json::as_arr).unwrap();
        assert!(!levels.is_empty(), "dendrogram has at least one level");
        assert_eq!(levels[0].as_arr().unwrap().len(), 300);
        assert_eq!(
            lines.last().unwrap().get("type").and_then(Json::as_str),
            Some("drained")
        );

        // Follow-up session against a drained server: submits are shed.
        let (shutdown, lines) = session_output(
            &server,
            &format!(
                "{{\"type\":\"submit\",\"job_id\":\"b\",\"graph\":{:?}}}\n",
                graph.to_string_lossy()
            ),
        );
        assert!(!shutdown);
        assert_eq!(
            lines[0].get("type").and_then(Json::as_str),
            Some("rejected")
        );
        assert_eq!(
            lines[0].get("reason").and_then(Json::as_str),
            Some("shutting_down")
        );
    }

    #[test]
    fn metrics_text_and_dump_verbs_round_trip() {
        let root = std::env::temp_dir().join("louvain-serve-proto-ops-test");
        let _ = std::fs::remove_dir_all(&root);
        let server = Server::start(ServeConfig {
            workers: 0,
            checkpoint_root: root.join("ckpt"),
            ..ServeConfig::default()
        });
        let (shutdown, lines) = session_output(
            &server,
            "{\"type\":\"metrics-text\"}\n{\"type\":\"dump\"}\n",
        );
        assert!(!shutdown);
        assert_eq!(lines.len(), 2);

        assert_eq!(
            lines[0].get("type").and_then(Json::as_str),
            Some("metrics_text")
        );
        let text = lines[0].get("text").and_then(Json::as_str).unwrap();
        let parsed = louvain_obs::parse_prometheus_text(text).unwrap();
        assert!(
            parsed.keys().any(|k| k.starts_with("serve_queue_depth")),
            "exposition carries the serve gauges: {:?}",
            parsed.keys().take(8).collect::<Vec<_>>()
        );

        assert_eq!(lines[1].get("type").and_then(Json::as_str), Some("flight"));
        let path = lines[1].get("path").and_then(Json::as_str).unwrap();
        let doc = std::fs::read_to_string(path).unwrap();
        let (reason, last_seq, events) = louvain_obs::parse_flight_dump(&doc).unwrap();
        assert_eq!(reason, "on_demand");
        assert_eq!(last_seq, events.last().map(|e| e.seq).unwrap_or(0));
        server.drain();
    }

    #[test]
    fn http_get_on_the_json_port_serves_metrics() {
        let server = Server::start(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let raw = |script: &str| {
            let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
            let shutdown = serve_lines(&server, Cursor::new(script.to_string()), writer.clone());
            assert!(!shutdown, "an HTTP session never drains the server");
            let bytes = writer.lock().unwrap().clone();
            String::from_utf8(bytes).unwrap()
        };

        let response = raw("GET /metrics HTTP/1.0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        louvain_obs::parse_prometheus_text(body).unwrap();

        let response = raw("GET /nope HTTP/1.0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 404"), "{response}");

        // `GET ` only short-circuits on the *first* line: later lines
        // that merely look like HTTP still get a JSON error.
        let response = raw("{\"type\":\"metrics\"}\nGET /metrics HTTP/1.0\n");
        assert!(response.starts_with("{\"type\":\"metrics\""), "{response}");
        assert!(response.contains("bad request line"), "{response}");
        server.drain();
    }

    #[test]
    fn watch_replays_rows_and_closes_with_the_result_line() {
        let root = std::env::temp_dir().join("louvain-serve-proto-watch-test");
        let graph = tiny_graph(&root);
        let server = Server::start(ServeConfig {
            workers: 1,
            checkpoint_root: root.join("ckpt"),
            ..ServeConfig::default()
        });
        let script = format!(
            r#"{{"type":"submit","job_id":"w","graph":{:?},"ranks":2,"config":{{"max_phases":2}}}}"#,
            graph.to_string_lossy()
        ) + "\n";
        let (_, lines) = session_output(&server, &script);
        assert_eq!(
            lines.last().unwrap().get("outcome").and_then(Json::as_str),
            Some("done")
        );

        // Watching the finished job replays the full progress history,
        // then closes with its terminal result line.
        let (shutdown, lines) = session_output(&server, "{\"type\":\"watch\",\"job_id\":\"w\"}\n");
        assert!(!shutdown);
        assert_eq!(
            lines[0].get("type").and_then(Json::as_str),
            Some("watching")
        );
        let progress: Vec<_> = lines
            .iter()
            .filter(|l| l.get("type").and_then(Json::as_str) == Some("progress"))
            .collect();
        assert!(!progress.is_empty(), "a finished job has progress rows");
        for p in &progress {
            assert!(p.get("modularity").and_then(Json::as_f64).is_some());
            assert!(p.get("active_fraction").and_then(Json::as_f64).is_some());
        }
        let last = lines.last().unwrap();
        assert_eq!(last.get("type").and_then(Json::as_str), Some("result"));
        assert_eq!(last.get("outcome").and_then(Json::as_str), Some("done"));

        let (_, lines) = session_output(&server, "{\"type\":\"watch\",\"job_id\":\"nope\"}\n");
        assert_eq!(lines[0].get("type").and_then(Json::as_str), Some("error"));
        server.drain();
    }

    #[test]
    fn bad_lines_get_typed_errors_and_do_not_kill_the_session() {
        let server = Server::start(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let script = "not json\n{\"no_type\":1}\n{\"type\":\"frobnicate\"}\n\
                      {\"type\":\"status\",\"job_id\":\"nope\"}\n";
        let (shutdown, lines) = session_output(&server, script);
        assert!(!shutdown);
        assert_eq!(lines.len(), 4);
        for l in &lines {
            assert_eq!(l.get("type").and_then(Json::as_str), Some("error"));
        }
        server.drain();
    }
}
