//! The job server: admission-controlled worker pool, kill-and-resume
//! execution, quarantine ladder, and the result cache.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use louvain_comm::{FaultPlan, RunConfig};
use louvain_dist::{
    build_run_report, config_fingerprint, run_distributed_resilient_source, CheckpointOptions,
    GraphSource, ReportMeta, ResilOptions, CANCELLED_AT_PHASE,
};
use louvain_graph::{binio, Csr};
use louvain_obs::{run_label, MetricsRegistry, MetricsSnapshot, RunArtifact, RunEntry};
use louvain_resil::CheckpointStore;

use crate::cache::{graph_fingerprint, ArtifactCache, CachedResult, JobKey};
use crate::job::JobSpec;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (the in-flight cap). `0` is a valid test mode:
    /// jobs queue but never start, so admission behaviour is
    /// deterministic.
    pub workers: usize,
    /// Bounded admission queue depth; submissions past it are shed with
    /// [`SubmitError::QueueFull`].
    pub queue_depth: usize,
    /// Result-cache capacity (jobs).
    pub cache_capacity: usize,
    /// Root under which each job gets its own checkpoint directory.
    pub checkpoint_root: PathBuf,
    /// Failed attempts (across resubmissions) after which a job key is
    /// quarantined.
    pub quarantine_after: usize,
    /// Default per-job crash-recovery budget (a submission can lower or
    /// raise its own).
    pub max_crash_recoveries: usize,
    /// Default per-job hang-recovery budget.
    pub max_hang_recoveries: usize,
    /// Log job lifecycle lines to stderr.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 8,
            cache_capacity: 64,
            checkpoint_root: std::env::temp_dir().join(format!("louvaind-{}", std::process::id())),
            quarantine_after: 3,
            max_crash_recoveries: 2,
            max_hang_recoveries: 2,
            verbose: false,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — load was shed, try again later.
    QueueFull,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The spec itself is bad (unparsable fault plan, …).
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "queue_full"),
            SubmitError::ShuttingDown => write!(f, "shutting_down"),
            SubmitError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    Queued,
    Running,
    /// Finished with a result (fresh run or cache hit).
    Done {
        cached: bool,
        resumed_from_phase: Option<u64>,
        crash_recoveries: u64,
        hang_recoveries: u64,
        wall_ms: u64,
        result: Arc<CachedResult>,
    },
    /// The run failed (budget exhausted, bad graph file, …) but the job
    /// key is still below the quarantine ladder — a resubmission will
    /// try again, resuming from any checkpoint the failed run left.
    Failed {
        error: String,
        attempts: usize,
    },
    /// The poisoned-job ladder tripped: this key failed
    /// `quarantine_after` times and is refused without running until
    /// the server restarts. The daemon itself stays up.
    Quarantined {
        error: String,
        attempts: usize,
    },
    /// Cancelled: either shed from the queue at drain (`at_phase:
    /// None`) or stopped cooperatively at a phase boundary
    /// (`at_phase: Some(k)`, with the checkpoint for phases `0..k`
    /// durable for a later resume).
    Cancelled {
        at_phase: Option<u64>,
    },
}

impl JobStatus {
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

struct JobRecord {
    spec: JobSpec,
    status: JobStatus,
    cancel: Arc<AtomicBool>,
    submitted: Instant,
}

struct State {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
    /// Latest submission seq per client job id.
    by_id: HashMap<String, u64>,
    cache: ArtifactCache,
    /// Failed-attempt count per job key (the quarantine ladder).
    poisoned: HashMap<JobKey, usize>,
    running: usize,
    next_seq: u64,
    accepting: bool,
    stop_workers: bool,
}

struct Inner {
    cfg: ServeConfig,
    state: Mutex<State>,
    /// Signalled when the queue gains work or workers must stop.
    work: Condvar,
    /// Signalled on any status change (for `wait`).
    change: Condvar,
    metrics: MetricsRegistry,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Handle to a running job server. Cheap to clone; the last drop does
/// not stop the workers — call [`Server::drain`] for an orderly stop.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Start the worker pool.
    pub fn start(cfg: ServeConfig) -> Server {
        let workers = cfg.workers;
        let server = Server {
            inner: Arc::new(Inner {
                cfg,
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    jobs: HashMap::new(),
                    by_id: HashMap::new(),
                    cache: ArtifactCache::new(0),
                    poisoned: HashMap::new(),
                    running: 0,
                    next_seq: 0,
                    accepting: true,
                    stop_workers: false,
                }),
                work: Condvar::new(),
                change: Condvar::new(),
                metrics: MetricsRegistry::new(),
                handles: Mutex::new(Vec::new()),
            }),
        };
        server.inner.state.lock().unwrap().cache =
            ArtifactCache::new(server.inner.cfg.cache_capacity);
        let mut handles = server.inner.handles.lock().unwrap();
        for w in 0..workers {
            let s = server.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("louvaind-worker-{w}"))
                    .spawn(move || s.worker_loop())
                    .expect("spawn worker"),
            );
        }
        drop(handles);
        server
    }

    pub fn config(&self) -> &ServeConfig {
        &self.inner.cfg
    }

    fn log(&self, msg: &str) {
        if self.inner.cfg.verbose {
            eprintln!("louvaind: {msg}");
        }
    }

    /// Admission control: accept into the bounded queue or shed.
    /// Never blocks on a full pool — that is the point.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        if let Some(plan) = spec.fault_plan.as_deref() {
            FaultPlan::parse(plan).map_err(SubmitError::Invalid)?;
        }
        let mut st = self.inner.state.lock().unwrap();
        if !st.accepting {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.cfg.queue_depth {
            self.inner.metrics.counter_add("serve.jobs_rejected", 1);
            return Err(SubmitError::QueueFull);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.by_id.insert(spec.job_id.clone(), seq);
        let job_id = spec.job_id.clone();
        st.jobs.insert(
            seq,
            JobRecord {
                spec,
                status: JobStatus::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                submitted: Instant::now(),
            },
        );
        st.queue.push_back(seq);
        self.inner.metrics.counter_add("serve.jobs_accepted", 1);
        self.inner
            .metrics
            .gauge_set("serve.queue_depth", st.queue.len() as f64);
        drop(st);
        self.log(&format!("accepted job {job_id} as #{seq}"));
        self.inner.work.notify_one();
        Ok(seq)
    }

    pub fn status(&self, seq: u64) -> Option<JobStatus> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&seq).map(|r| r.status.clone())
    }

    /// Status of the latest submission under a client job id.
    pub fn status_by_id(&self, job_id: &str) -> Option<JobStatus> {
        let st = self.inner.state.lock().unwrap();
        let seq = st.by_id.get(job_id)?;
        st.jobs.get(seq).map(|r| r.status.clone())
    }

    /// Block until the job reaches a terminal status.
    pub fn wait(&self, seq: u64) -> Option<JobStatus> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.jobs.get(&seq) {
                None => return None,
                Some(r) if r.status.is_terminal() => return Some(r.status.clone()),
                Some(_) => st = self.inner.change.wait(st).unwrap(),
            }
        }
    }

    /// Like [`Server::wait`], bounded; `None` on timeout or unknown seq.
    pub fn wait_timeout(&self, seq: u64, dur: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + dur;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.jobs.get(&seq) {
                None => return None,
                Some(r) if r.status.is_terminal() => return Some(r.status.clone()),
                Some(_) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return None;
                    }
                    let (guard, timeout) = self.inner.change.wait_timeout(st, left).unwrap();
                    st = guard;
                    if timeout.timed_out() {
                        return None;
                    }
                }
            }
        }
    }

    /// The dendrogram + result for a client job id, when it finished.
    pub fn query(&self, job_id: &str) -> Option<Arc<CachedResult>> {
        let st = self.inner.state.lock().unwrap();
        let seq = st.by_id.get(job_id)?;
        match &st.jobs.get(seq)?.status {
            JobStatus::Done { result, .. } => Some(result.clone()),
            _ => None,
        }
    }

    /// Cancel a job: a queued one is removed immediately
    /// (`Cancelled { at_phase: None }`); a running one has its token
    /// set and stops cooperatively at the next phase boundary. Returns
    /// `false` for unknown or already-terminal jobs.
    pub fn cancel_job(&self, seq: u64) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(record) = st.jobs.get(&seq) else {
            return false;
        };
        match record.status {
            JobStatus::Queued => {
                st.queue.retain(|&q| q != seq);
                let depth = st.queue.len() as f64;
                if let Some(r) = st.jobs.get_mut(&seq) {
                    r.status = JobStatus::Cancelled { at_phase: None };
                }
                self.inner.metrics.counter_add("serve.jobs_cancelled", 1);
                self.inner.metrics.gauge_set("serve.queue_depth", depth);
                drop(st);
                self.inner.change.notify_all();
                true
            }
            JobStatus::Running => {
                record.cancel.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// Orderly shutdown: stop accepting, shed the queue, ask running
    /// jobs to stop at their next phase boundary (their checkpoints
    /// stay durable for a later resume), wait for them, then stop and
    /// join the workers.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.accepting = false;
        let shed: Vec<u64> = st.queue.drain(..).collect();
        for seq in &shed {
            if let Some(r) = st.jobs.get_mut(seq) {
                r.status = JobStatus::Cancelled { at_phase: None };
                self.inner.metrics.counter_add("serve.jobs_cancelled", 1);
            }
        }
        self.inner.metrics.gauge_set("serve.queue_depth", 0.0);
        for r in st.jobs.values() {
            if matches!(r.status, JobStatus::Running) {
                r.cancel.store(true, Ordering::SeqCst);
            }
        }
        while st.running > 0 {
            st = self.inner.change.wait(st).unwrap();
        }
        st.stop_workers = true;
        drop(st);
        self.inner.change.notify_all();
        self.inner.work.notify_all();
        let handles: Vec<_> = std::mem::take(&mut *self.inner.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        self.log("drained");
    }

    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    fn worker_loop(&self) {
        loop {
            let (seq, spec, cancel) = {
                let mut st = self.inner.state.lock().unwrap();
                loop {
                    if st.stop_workers {
                        return;
                    }
                    if let Some(seq) = st.queue.pop_front() {
                        let depth = st.queue.len() as f64;
                        self.inner.metrics.gauge_set("serve.queue_depth", depth);
                        st.running += 1;
                        let r = st.jobs.get_mut(&seq).expect("queued job has a record");
                        r.status = JobStatus::Running;
                        break (seq, r.spec.clone(), r.cancel.clone());
                    }
                    st = self.inner.work.wait(st).unwrap();
                }
            };
            let started = self.job_submitted_at(seq);
            let status = self.run_job(&spec, &cancel);
            let latency_ms = started.elapsed().as_millis() as u64;
            self.inner
                .metrics
                .hist_observe("serve.job_latency_ms", latency_ms);
            let mut st = self.inner.state.lock().unwrap();
            st.running -= 1;
            if let Some(r) = st.jobs.get_mut(&seq) {
                self.log(&format!("job {} #{seq}: {:?}", spec.job_id, kind(&status)));
                r.status = status;
            }
            drop(st);
            self.inner.change.notify_all();
        }
    }

    fn job_submitted_at(&self, seq: u64) -> Instant {
        self.inner
            .state
            .lock()
            .unwrap()
            .jobs
            .get(&seq)
            .map(|r| r.submitted)
            .unwrap_or_else(Instant::now)
    }

    /// Run one job to a terminal status. Never panics the worker: every
    /// failure becomes a structured `Failed`/`Quarantined` status.
    fn run_job(&self, spec: &JobSpec, cancel: &Arc<AtomicBool>) -> JobStatus {
        let m = &self.inner.metrics;
        let graph_fp = match graph_fingerprint(&spec.graph) {
            Ok(fp) => fp,
            Err(e) => {
                return JobStatus::Failed {
                    error: format!("cannot read graph {}: {e}", spec.graph.display()),
                    attempts: 0,
                }
            }
        };
        let key = JobKey {
            graph_fp,
            config_fp: config_fingerprint(&spec.cfg),
            ranks: spec.ranks,
        };

        // Poisoned-job ladder: a key past the threshold is refused
        // without running. The daemon never crashes on its account.
        let attempts_so_far = {
            let st = self.inner.state.lock().unwrap();
            st.poisoned.get(&key).copied().unwrap_or(0)
        };
        if attempts_so_far >= self.inner.cfg.quarantine_after {
            m.counter_add("serve.jobs_quarantined", 1);
            return JobStatus::Quarantined {
                error: format!("job key quarantined after {attempts_so_far} failed attempts"),
                attempts: attempts_so_far,
            };
        }

        // Result cache: an identical submission is answered without a run.
        if let Some(hit) = self.inner.state.lock().unwrap().cache.get(&key) {
            m.counter_add("serve.cache_hits", 1);
            m.counter_add("serve.jobs_completed", 1);
            return JobStatus::Done {
                cached: true,
                resumed_from_phase: None,
                crash_recoveries: 0,
                hang_recoveries: 0,
                wall_ms: 0,
                result: hit,
            };
        }
        m.counter_add("serve.cache_misses", 1);

        let ckpt_dir = self.inner.cfg.checkpoint_root.join(key.dir_name());
        let resil = ResilOptions {
            checkpoint: Some(CheckpointOptions::new(&ckpt_dir)),
            resume: true,
            max_recoveries: 0,
            max_crash_recoveries: Some(
                spec.max_crash_recoveries
                    .unwrap_or(self.inner.cfg.max_crash_recoveries),
            ),
            max_hang_recoveries: Some(
                spec.max_hang_recoveries
                    .unwrap_or(self.inner.cfg.max_hang_recoveries),
            ),
            cancel: Some(cancel.clone()),
            record_levels: true,
        };
        let mut runcfg = RunConfig::default();
        if let Some(plan) = spec.fault_plan.as_deref() {
            match FaultPlan::parse(plan) {
                Ok(p) if !p.is_empty() => runcfg.fault = Some(Arc::new(p)),
                Ok(_) => {}
                Err(e) => return self.record_failure(&key, format!("bad fault plan: {e}")),
            }
        }

        let outcome = match self.load_and_run(spec, runcfg, &resil) {
            Ok(v) => v,
            Err(e) => {
                if let Some(rest) = e.strip_prefix(CANCELLED_AT_PHASE) {
                    m.counter_add("serve.jobs_cancelled", 1);
                    return JobStatus::Cancelled {
                        at_phase: rest.trim().parse::<u64>().ok(),
                    };
                }
                return self.record_failure(&key, e);
            }
        };
        let (out, vertices, edges) = outcome;

        // Phase checkpoints below the newest manifest are dead weight
        // now that the run finished — retire them.
        if let Ok(store) = CheckpointStore::new(&ckpt_dir) {
            let _ = store.prune_superseded();
        }

        let graph_name = spec
            .graph
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "graph".to_string());
        let mut meta = ReportMeta::new(graph_name.clone(), vertices, edges);
        meta.variant = spec.cfg.variant.label();
        meta.threads_per_rank = spec.cfg.threads_per_rank;
        let report = build_run_report(&out, &meta);
        let artifact = RunArtifact {
            name: format!("serve:{}", spec.job_id),
            description: format!("served job on {}", spec.graph.display()),
            runs: vec![RunEntry {
                label: run_label(&graph_name, spec.ranks, "serve"),
                report,
                telemetry: Vec::new(),
            }],
        };
        let cached = CachedResult {
            key,
            modularity: out.modularity,
            num_communities: out.num_communities,
            phases: out.phases,
            assignment: out.assignment,
            levels: out.levels,
            artifact,
        };
        let result = {
            let mut st = self.inner.state.lock().unwrap();
            st.poisoned.remove(&key);
            let evicted = st.cache.insert(cached);
            if evicted > 0 {
                m.counter_add("serve.cache_evictions", evicted as u64);
            }
            st.cache.get(&key).expect("just inserted")
        };
        m.counter_add("serve.jobs_completed", 1);
        if out.resumed_from_phase.is_some() {
            m.counter_add("serve.jobs_resumed", 1);
        }
        JobStatus::Done {
            cached: false,
            resumed_from_phase: out.resumed_from_phase,
            crash_recoveries: out.crash_recoveries,
            hang_recoveries: out.hung_events.len() as u64,
            wall_ms: out.wall.as_millis() as u64,
            result,
        }
    }

    /// Bump the poison ladder for a failed key and decide Failed vs
    /// Quarantined.
    fn record_failure(&self, key: &JobKey, error: String) -> JobStatus {
        let attempts = {
            let mut st = self.inner.state.lock().unwrap();
            let e = st.poisoned.entry(*key).or_insert(0);
            *e += 1;
            *e
        };
        if attempts >= self.inner.cfg.quarantine_after {
            self.inner.metrics.counter_add("serve.jobs_quarantined", 1);
            JobStatus::Quarantined { error, attempts }
        } else {
            JobStatus::Failed { error, attempts }
        }
    }

    /// Sniff the snapshot format and run. Returns the outcome plus the
    /// input's (vertices, edges) for the report.
    fn load_and_run(
        &self,
        spec: &JobSpec,
        runcfg: RunConfig,
        resil: &ResilOptions,
    ) -> Result<(louvain_dist::DistOutcome, u64, u64), String> {
        let path = &spec.graph;
        let kind = sniff_kind(path).map_err(|e| format!("{}: {e}", path.display()))?;
        match kind {
            FileKind::Slab => {
                let h = louvain_store::peek_header(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                let out = run_distributed_resilient_source(
                    GraphSource::SlabRanged(path),
                    spec.ranks,
                    &spec.cfg,
                    runcfg,
                    resil,
                )?;
                Ok((out, h.num_vertices, h.num_edges))
            }
            FileKind::BinaryEdges => {
                let el = binio::read_edge_list(path).map_err(|e| e.to_string())?;
                let g = Csr::from_edge_list(el);
                let (nv, ne) = (g.num_vertices() as u64, g.num_edges() as u64);
                let out = run_distributed_resilient_source(
                    GraphSource::Memory(&g),
                    spec.ranks,
                    &spec.cfg,
                    runcfg,
                    resil,
                )?;
                Ok((out, nv, ne))
            }
            FileKind::Text => Err(format!(
                "{} is not an ingested snapshot (slab or binary edge list); \
                 run `louvain ingest`/`louvain generate` first",
                path.display()
            )),
        }
    }
}

fn kind(status: &JobStatus) -> &'static str {
    match status {
        JobStatus::Queued => "queued",
        JobStatus::Running => "running",
        JobStatus::Done { cached: true, .. } => "done (cached)",
        JobStatus::Done { cached: false, .. } => "done",
        JobStatus::Failed { .. } => "failed",
        JobStatus::Quarantined { .. } => "quarantined",
        JobStatus::Cancelled { .. } => "cancelled",
    }
}

enum FileKind {
    Slab,
    BinaryEdges,
    Text,
}

/// First-8-bytes magic sniff, mirroring the CLI's ingest dispatch: both
/// binary formats put a 7-byte signature above a version byte.
fn sniff_kind(path: &std::path::Path) -> std::io::Result<FileKind> {
    use std::io::Read;
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; 8];
    if f.read_exact(&mut head).is_err() {
        return Ok(FileKind::Text);
    }
    Ok(match u64::from_le_bytes(head) & !0xFF {
        louvain_store::MAGIC_SIGNATURE => FileKind::Slab,
        binio::MAGIC_SIGNATURE => FileKind::BinaryEdges,
        _ => FileKind::Text,
    })
}
