//! The job server: admission-controlled worker pool, kill-and-resume
//! execution, quarantine ladder, and the result cache.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use louvain_comm::{FaultPlan, RunConfig};
use louvain_dist::{
    build_run_report, config_fingerprint, run_distributed_resilient_source, CheckpointOptions,
    GraphSource, ReportMeta, ResilOptions, CANCELLED_AT_PHASE,
};
use louvain_graph::{binio, Csr};
use louvain_obs::{
    run_label, Json, MetricsRegistry, MetricsSnapshot, OpKind, OpsPlane, ProgressSink, RunArtifact,
    RunEntry, TelemetryRow, DEFAULT_FLIGHT_CAPACITY,
};
use louvain_resil::CheckpointStore;

use crate::cache::{graph_fingerprint, ArtifactCache, CachedResult, JobKey};
use crate::job::JobSpec;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (the in-flight cap). `0` is a valid test mode:
    /// jobs queue but never start, so admission behaviour is
    /// deterministic.
    pub workers: usize,
    /// Bounded admission queue depth; submissions past it are shed with
    /// [`SubmitError::QueueFull`].
    pub queue_depth: usize,
    /// Result-cache capacity (jobs).
    pub cache_capacity: usize,
    /// Root under which each job gets its own checkpoint directory.
    pub checkpoint_root: PathBuf,
    /// Failed attempts (across resubmissions) after which a job key is
    /// quarantined.
    pub quarantine_after: usize,
    /// Default per-job crash-recovery budget (a submission can lower or
    /// raise its own).
    pub max_crash_recoveries: usize,
    /// Default per-job hang-recovery budget.
    pub max_hang_recoveries: usize,
    /// Log job lifecycle lines to stderr.
    pub verbose: bool,
    /// Append every operational event as one JSON line to this file
    /// (rotated to `<path>.1` at `event_log_max_bytes`).
    pub event_log: Option<PathBuf>,
    /// Size bound of the event log before rotation.
    pub event_log_max_bytes: u64,
    /// Where flight-recorder dumps land; defaults to
    /// `<checkpoint_root>/flight`.
    pub flight_dir: Option<PathBuf>,
    /// Events kept in the in-memory flight ring.
    pub flight_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 8,
            cache_capacity: 64,
            checkpoint_root: std::env::temp_dir().join(format!("louvaind-{}", std::process::id())),
            quarantine_after: 3,
            max_crash_recoveries: 2,
            max_hang_recoveries: 2,
            verbose: false,
            event_log: None,
            event_log_max_bytes: 1 << 20,
            flight_dir: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

impl ServeConfig {
    /// Effective flight-dump directory.
    pub fn flight_dir(&self) -> PathBuf {
        self.flight_dir
            .clone()
            .unwrap_or_else(|| self.checkpoint_root.join("flight"))
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — load was shed, try again later.
    QueueFull,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The spec itself is bad (unparsable fault plan, …).
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "queue_full"),
            SubmitError::ShuttingDown => write!(f, "shutting_down"),
            SubmitError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    Queued,
    Running,
    /// Finished with a result (fresh run or cache hit).
    Done {
        cached: bool,
        resumed_from_phase: Option<u64>,
        crash_recoveries: u64,
        hang_recoveries: u64,
        wall_ms: u64,
        result: Arc<CachedResult>,
    },
    /// The run failed (budget exhausted, bad graph file, …) but the job
    /// key is still below the quarantine ladder — a resubmission will
    /// try again, resuming from any checkpoint the failed run left.
    Failed {
        error: String,
        attempts: usize,
    },
    /// The poisoned-job ladder tripped: this key failed
    /// `quarantine_after` times and is refused without running until
    /// the server restarts. The daemon itself stays up.
    Quarantined {
        error: String,
        attempts: usize,
    },
    /// Cancelled: either shed from the queue at drain (`at_phase:
    /// None`) or stopped cooperatively at a phase boundary
    /// (`at_phase: Some(k)`, with the checkpoint for phases `0..k`
    /// durable for a later resume).
    Cancelled {
        at_phase: Option<u64>,
    },
}

impl JobStatus {
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

/// Live per-job progress: merged telemetry rows collected as the run
/// executes (late watchers replay them), the current position, and the
/// channels of attached watchers.
#[derive(Default)]
struct JobProgress {
    /// Rows in arrival order; sorted by key when the artifact is built.
    rows: Vec<TelemetryRow>,
    /// `(phase, iteration, modularity)` of the newest row.
    current: Option<(u64, u64, f64)>,
    watchers: Vec<std::sync::mpsc::Sender<TelemetryRow>>,
}

struct JobRecord {
    spec: JobSpec,
    status: JobStatus,
    cancel: Arc<AtomicBool>,
    submitted: Instant,
    progress: Arc<Mutex<JobProgress>>,
}

/// Detailed status for the `status` verb: lifecycle plus where the job
/// sits (queue position) or is (current phase/iteration).
#[derive(Debug, Clone)]
pub struct StatusDetail {
    pub status: JobStatus,
    /// 0-based position in the admission queue, for queued jobs.
    pub queue_position: Option<usize>,
    /// `(phase, iteration, modularity)` of the newest progress row, for
    /// jobs that have produced one.
    pub current: Option<(u64, u64, f64)>,
}

/// The per-job [`ProgressSink`] handed to the resilient runner: stores
/// each merged row for replay, forwards it to live watchers, and emits
/// a `phase_completed` event when the row stream crosses a phase
/// boundary.
struct JobProgressSink {
    job_id: String,
    progress: Arc<Mutex<JobProgress>>,
    ops: Arc<OpsPlane>,
    /// Newest phase seen, plus that phase's latest (iteration count,
    /// modularity) for the `phase_completed` payload.
    last_phase: Mutex<Option<(u64, u64, f64)>>,
}

impl ProgressSink for JobProgressSink {
    fn on_row(&self, row: &TelemetryRow) {
        {
            let mut p = self.progress.lock().unwrap();
            p.rows.push(row.clone());
            p.current = Some((row.phase, row.iteration, row.modularity));
            p.watchers.retain(|w| w.send(row.clone()).is_ok());
        }
        let mut last = self.last_phase.lock().unwrap();
        match &mut *last {
            Some((phase, iterations, modularity)) if *phase == row.phase => {
                *iterations = (*iterations).max(row.iteration + 1);
                *modularity = row.modularity;
            }
            Some((phase, iterations, modularity)) if row.phase > *phase => {
                self.ops.emit(
                    OpKind::PhaseCompleted,
                    Some(&self.job_id),
                    vec![
                        ("phase", Json::Num(*phase as f64)),
                        ("iterations", Json::Num(*iterations as f64)),
                        ("modularity", Json::Num(*modularity)),
                    ],
                );
                *last = Some((row.phase, row.iteration + 1, row.modularity));
            }
            // End-of-run flush can deliver a stale phase's partial row
            // out of order; it never un-completes a phase.
            Some(_) => {}
            None => *last = Some((row.phase, row.iteration + 1, row.modularity)),
        }
    }
}

struct State {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
    /// Latest submission seq per client job id.
    by_id: HashMap<String, u64>,
    cache: ArtifactCache,
    /// Failed-attempt count per job key (the quarantine ladder).
    poisoned: HashMap<JobKey, usize>,
    running: usize,
    next_seq: u64,
    accepting: bool,
    stop_workers: bool,
}

struct Inner {
    cfg: ServeConfig,
    state: Mutex<State>,
    /// Signalled when the queue gains work or workers must stop.
    work: Condvar,
    /// Signalled on any status change (for `wait`).
    change: Condvar,
    metrics: MetricsRegistry,
    ops: Arc<OpsPlane>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Handle to a running job server. Cheap to clone; the last drop does
/// not stop the workers — call [`Server::drain`] for an orderly stop.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Start the worker pool.
    pub fn start(cfg: ServeConfig) -> Server {
        let workers = cfg.workers;
        let ops = match &cfg.event_log {
            Some(path) => OpsPlane::with_log(cfg.flight_capacity, path, cfg.event_log_max_bytes)
                .unwrap_or_else(|e| {
                    eprintln!(
                        "louvaind: cannot open event log {}: {e}; continuing without it",
                        path.display()
                    );
                    OpsPlane::new(cfg.flight_capacity)
                }),
            None => OpsPlane::new(cfg.flight_capacity),
        };
        let server = Server {
            inner: Arc::new(Inner {
                cfg,
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    jobs: HashMap::new(),
                    by_id: HashMap::new(),
                    cache: ArtifactCache::new(0),
                    poisoned: HashMap::new(),
                    running: 0,
                    next_seq: 0,
                    accepting: true,
                    stop_workers: false,
                }),
                work: Condvar::new(),
                change: Condvar::new(),
                metrics: MetricsRegistry::new(),
                ops: Arc::new(ops),
                handles: Mutex::new(Vec::new()),
            }),
        };
        {
            let mut st = server.inner.state.lock().unwrap();
            st.cache = ArtifactCache::new(server.inner.cfg.cache_capacity);
            // Initialise the gauges so a scrape of an idle daemon
            // already exposes them at zero.
            server.sync_queue_depth(&st);
            server.inner.metrics.gauge_set("serve.jobs_running", 0.0);
        }
        let mut handles = server.inner.handles.lock().unwrap();
        for w in 0..workers {
            let s = server.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("louvaind-worker-{w}"))
                    .spawn(move || s.worker_loop())
                    .expect("spawn worker"),
            );
        }
        drop(handles);
        server
    }

    pub fn config(&self) -> &ServeConfig {
        &self.inner.cfg
    }

    fn log(&self, msg: &str) {
        if self.inner.cfg.verbose {
            eprintln!("louvaind: {msg}");
        }
    }

    /// The one place the `serve.queue_depth` gauge is written: always
    /// under the state lock, always from the queue's actual length, so
    /// the gauge can never go negative or disagree with the queue —
    /// including in the drain-while-shedding race, where drain and a
    /// concurrent cancel both recompute from the now-empty queue.
    fn sync_queue_depth(&self, st: &State) {
        let depth = st.queue.len();
        debug_assert!(
            depth <= self.inner.cfg.queue_depth,
            "queue depth {depth} exceeds configured bound {}",
            self.inner.cfg.queue_depth
        );
        self.inner
            .metrics
            .gauge_set("serve.queue_depth", depth as f64);
    }

    /// Admission control: accept into the bounded queue or shed.
    /// Never blocks on a full pool — that is the point.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        if let Some(plan) = spec.fault_plan.as_deref() {
            if let Err(e) = FaultPlan::parse(plan) {
                self.inner.ops.emit(
                    OpKind::JobShed,
                    Some(&spec.job_id),
                    vec![("reason", Json::str("invalid"))],
                );
                return Err(SubmitError::Invalid(e));
            }
        }
        let mut st = self.inner.state.lock().unwrap();
        if !st.accepting {
            self.inner.ops.emit(
                OpKind::JobShed,
                Some(&spec.job_id),
                vec![("reason", Json::str("shutting_down"))],
            );
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.cfg.queue_depth {
            self.inner.metrics.counter_add("serve.jobs_rejected", 1);
            self.inner.ops.emit(
                OpKind::JobShed,
                Some(&spec.job_id),
                vec![
                    ("reason", Json::str("queue_full")),
                    ("queue_depth", Json::Num(st.queue.len() as f64)),
                ],
            );
            return Err(SubmitError::QueueFull);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.by_id.insert(spec.job_id.clone(), seq);
        let job_id = spec.job_id.clone();
        st.jobs.insert(
            seq,
            JobRecord {
                spec,
                status: JobStatus::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                submitted: Instant::now(),
                progress: Arc::new(Mutex::new(JobProgress::default())),
            },
        );
        st.queue.push_back(seq);
        self.inner.metrics.counter_add("serve.jobs_accepted", 1);
        self.sync_queue_depth(&st);
        let depth = st.queue.len();
        drop(st);
        self.inner.ops.emit(
            OpKind::JobAccepted,
            Some(&job_id),
            vec![
                ("seq", Json::Num(seq as f64)),
                ("queue_depth", Json::Num(depth as f64)),
            ],
        );
        self.log(&format!("accepted job {job_id} as #{seq}"));
        self.inner.work.notify_one();
        Ok(seq)
    }

    pub fn status(&self, seq: u64) -> Option<JobStatus> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&seq).map(|r| r.status.clone())
    }

    /// Status of the latest submission under a client job id.
    pub fn status_by_id(&self, job_id: &str) -> Option<JobStatus> {
        let st = self.inner.state.lock().unwrap();
        let seq = st.by_id.get(job_id)?;
        st.jobs.get(seq).map(|r| r.status.clone())
    }

    /// Lifecycle plus queue position / current phase for the `status`
    /// verb.
    pub fn status_detail(&self, seq: u64) -> Option<StatusDetail> {
        let st = self.inner.state.lock().unwrap();
        let r = st.jobs.get(&seq)?;
        let queue_position = st.queue.iter().position(|&q| q == seq);
        let current = r.progress.lock().unwrap().current;
        Some(StatusDetail {
            status: r.status.clone(),
            queue_position,
            current,
        })
    }

    /// Latest submission seq for a client job id.
    pub fn seq_of(&self, job_id: &str) -> Option<u64> {
        self.inner.state.lock().unwrap().by_id.get(job_id).copied()
    }

    /// Subscribe to a job's progress stream: returns the rows emitted
    /// so far (replay, in arrival order) plus a receiver for every
    /// subsequent row. The sender side lives in the job record, so the
    /// receiver disconnects only when the server drops the job — poll
    /// [`Server::status`] for terminal states rather than blocking
    /// forever on a finished job.
    pub fn watch(
        &self,
        seq: u64,
    ) -> Option<(Vec<TelemetryRow>, std::sync::mpsc::Receiver<TelemetryRow>)> {
        let st = self.inner.state.lock().unwrap();
        let r = st.jobs.get(&seq)?;
        let mut p = r.progress.lock().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        p.watchers.push(tx);
        Some((p.rows.clone(), rx))
    }

    /// The daemon's operational-event hub (event log, flight ring).
    pub fn ops(&self) -> Arc<OpsPlane> {
        Arc::clone(&self.inner.ops)
    }

    /// Dump the flight recorder (ring + a fresh metrics snapshot) to
    /// the configured flight directory.
    pub fn dump_flight(&self, reason: &str) -> std::io::Result<PathBuf> {
        self.inner.ops.dump_flight(
            &self.inner.cfg.flight_dir(),
            reason,
            &self.metrics_snapshot(),
        )
    }

    /// Block until the job reaches a terminal status.
    pub fn wait(&self, seq: u64) -> Option<JobStatus> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.jobs.get(&seq) {
                None => return None,
                Some(r) if r.status.is_terminal() => return Some(r.status.clone()),
                Some(_) => st = self.inner.change.wait(st).unwrap(),
            }
        }
    }

    /// Like [`Server::wait`], bounded; `None` on timeout or unknown seq.
    pub fn wait_timeout(&self, seq: u64, dur: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + dur;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.jobs.get(&seq) {
                None => return None,
                Some(r) if r.status.is_terminal() => return Some(r.status.clone()),
                Some(_) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return None;
                    }
                    let (guard, timeout) = self.inner.change.wait_timeout(st, left).unwrap();
                    st = guard;
                    if timeout.timed_out() {
                        return None;
                    }
                }
            }
        }
    }

    /// The dendrogram + result for a client job id, when it finished.
    pub fn query(&self, job_id: &str) -> Option<Arc<CachedResult>> {
        let st = self.inner.state.lock().unwrap();
        let seq = st.by_id.get(job_id)?;
        match &st.jobs.get(seq)?.status {
            JobStatus::Done { result, .. } => Some(result.clone()),
            _ => None,
        }
    }

    /// Cancel a job: a queued one is removed immediately
    /// (`Cancelled { at_phase: None }`); a running one has its token
    /// set and stops cooperatively at the next phase boundary. Returns
    /// `false` for unknown or already-terminal jobs.
    pub fn cancel_job(&self, seq: u64) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(record) = st.jobs.get(&seq) else {
            return false;
        };
        match record.status {
            JobStatus::Queued => {
                let job_id = record.spec.job_id.clone();
                st.queue.retain(|&q| q != seq);
                if let Some(r) = st.jobs.get_mut(&seq) {
                    r.status = JobStatus::Cancelled { at_phase: None };
                }
                self.inner.metrics.counter_add("serve.jobs_cancelled", 1);
                self.sync_queue_depth(&st);
                drop(st);
                self.inner.ops.emit(
                    OpKind::JobCancelled,
                    Some(&job_id),
                    vec![("while", Json::str("queued"))],
                );
                self.inner.change.notify_all();
                true
            }
            JobStatus::Running => {
                record.cancel.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// Orderly shutdown: stop accepting, shed the queue, ask running
    /// jobs to stop at their next phase boundary (their checkpoints
    /// stay durable for a later resume), wait for them, then stop and
    /// join the workers.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.accepting = false;
        let shed: Vec<u64> = st.queue.drain(..).collect();
        self.inner.ops.emit(
            OpKind::DrainBegin,
            None,
            vec![("shed", Json::Num(shed.len() as f64))],
        );
        for seq in &shed {
            if let Some(r) = st.jobs.get_mut(seq) {
                r.status = JobStatus::Cancelled { at_phase: None };
                self.inner.metrics.counter_add("serve.jobs_cancelled", 1);
                let job_id = r.spec.job_id.clone();
                self.inner.ops.emit(
                    OpKind::JobCancelled,
                    Some(&job_id),
                    vec![("while", Json::str("shed_at_drain"))],
                );
            }
        }
        self.sync_queue_depth(&st);
        for r in st.jobs.values() {
            if matches!(r.status, JobStatus::Running) {
                r.cancel.store(true, Ordering::SeqCst);
            }
        }
        while st.running > 0 {
            st = self.inner.change.wait(st).unwrap();
        }
        st.stop_workers = true;
        drop(st);
        self.inner.change.notify_all();
        self.inner.work.notify_all();
        let handles: Vec<_> = std::mem::take(&mut *self.inner.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        self.inner.ops.emit(OpKind::DrainEnd, None, vec![]);
        self.log("drained");
    }

    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// The live snapshot rendered as Prometheus exposition text. Every
    /// name is validated against the metric registry; an unregistered
    /// name is an error, not a silently-exported stranger.
    pub fn prometheus_text(&self) -> Result<String, String> {
        louvain_obs::prometheus_text(&self.metrics_snapshot())
    }

    fn worker_loop(&self) {
        loop {
            let (seq, spec, cancel, progress) = {
                let mut st = self.inner.state.lock().unwrap();
                loop {
                    if st.stop_workers {
                        return;
                    }
                    if let Some(seq) = st.queue.pop_front() {
                        self.sync_queue_depth(&st);
                        st.running += 1;
                        self.inner
                            .metrics
                            .gauge_set("serve.jobs_running", st.running as f64);
                        let r = st.jobs.get_mut(&seq).expect("queued job has a record");
                        r.status = JobStatus::Running;
                        break (seq, r.spec.clone(), r.cancel.clone(), r.progress.clone());
                    }
                    st = self.inner.work.wait(st).unwrap();
                }
            };
            self.inner.ops.emit(
                OpKind::JobStarted,
                Some(&spec.job_id),
                vec![("seq", Json::Num(seq as f64))],
            );
            let started = self.job_submitted_at(seq);
            let status = self.run_job(&spec, &cancel, &progress);
            let latency_ms = started.elapsed().as_millis() as u64;
            self.inner
                .metrics
                .hist_observe("serve.job_latency_ms", latency_ms);
            self.emit_terminal_event(&spec.job_id, seq, &status, latency_ms);
            let mut st = self.inner.state.lock().unwrap();
            st.running -= 1;
            self.inner
                .metrics
                .gauge_set("serve.jobs_running", st.running as f64);
            if let Some(r) = st.jobs.get_mut(&seq) {
                self.log(&format!("job {} #{seq}: {:?}", spec.job_id, kind(&status)));
                r.status = status;
            }
            drop(st);
            self.inner.change.notify_all();
        }
    }

    fn emit_terminal_event(&self, job_id: &str, seq: u64, status: &JobStatus, latency_ms: u64) {
        let ops = &self.inner.ops;
        match status {
            JobStatus::Done {
                cached,
                resumed_from_phase,
                ..
            } => {
                if let Some(phase) = resumed_from_phase {
                    ops.emit(
                        OpKind::JobResumed,
                        Some(job_id),
                        vec![("from_phase", Json::Num(*phase as f64))],
                    );
                }
                ops.emit(
                    OpKind::JobDone,
                    Some(job_id),
                    vec![
                        ("seq", Json::Num(seq as f64)),
                        ("cached", Json::Bool(*cached)),
                        ("latency_ms", Json::Num(latency_ms as f64)),
                    ],
                );
            }
            JobStatus::Failed { error, .. } => {
                ops.emit(
                    OpKind::JobFailed,
                    Some(job_id),
                    vec![("error", Json::str(error.clone()))],
                );
            }
            JobStatus::Quarantined { error, attempts } => {
                ops.emit(
                    OpKind::JobQuarantined,
                    Some(job_id),
                    vec![
                        ("error", Json::str(error.clone())),
                        ("attempts", Json::Num(*attempts as f64)),
                    ],
                );
            }
            JobStatus::Cancelled { at_phase } => {
                ops.emit(
                    OpKind::JobCancelled,
                    Some(job_id),
                    vec![(
                        "at_phase",
                        at_phase.map_or(Json::Null, |p| Json::Num(p as f64)),
                    )],
                );
            }
            JobStatus::Queued | JobStatus::Running => {}
        }
    }

    fn job_submitted_at(&self, seq: u64) -> Instant {
        self.inner
            .state
            .lock()
            .unwrap()
            .jobs
            .get(&seq)
            .map(|r| r.submitted)
            .unwrap_or_else(Instant::now)
    }

    /// Run one job to a terminal status. Never panics the worker: every
    /// failure becomes a structured `Failed`/`Quarantined` status.
    fn run_job(
        &self,
        spec: &JobSpec,
        cancel: &Arc<AtomicBool>,
        progress: &Arc<Mutex<JobProgress>>,
    ) -> JobStatus {
        let m = &self.inner.metrics;
        let graph_fp = match graph_fingerprint(&spec.graph) {
            Ok(fp) => fp,
            Err(e) => {
                return JobStatus::Failed {
                    error: format!("cannot read graph {}: {e}", spec.graph.display()),
                    attempts: 0,
                }
            }
        };
        let key = JobKey {
            graph_fp,
            config_fp: config_fingerprint(&spec.cfg),
            ranks: spec.ranks,
        };

        // Poisoned-job ladder: a key past the threshold is refused
        // without running. The daemon never crashes on its account.
        let attempts_so_far = {
            let st = self.inner.state.lock().unwrap();
            st.poisoned.get(&key).copied().unwrap_or(0)
        };
        if attempts_so_far >= self.inner.cfg.quarantine_after {
            m.counter_add("serve.jobs_quarantined", 1);
            return JobStatus::Quarantined {
                error: format!("job key quarantined after {attempts_so_far} failed attempts"),
                attempts: attempts_so_far,
            };
        }

        // Result cache: an identical submission is answered without a run.
        if let Some(hit) = self.inner.state.lock().unwrap().cache.get(&key) {
            m.counter_add("serve.cache_hits", 1);
            m.counter_add("serve.jobs_completed", 1);
            return JobStatus::Done {
                cached: true,
                resumed_from_phase: None,
                crash_recoveries: 0,
                hang_recoveries: 0,
                wall_ms: 0,
                result: hit,
            };
        }
        m.counter_add("serve.cache_misses", 1);

        let ckpt_dir = self.inner.cfg.checkpoint_root.join(key.dir_name());
        let resil = ResilOptions {
            checkpoint: Some(CheckpointOptions::new(&ckpt_dir)),
            resume: true,
            max_recoveries: 0,
            max_crash_recoveries: Some(
                spec.max_crash_recoveries
                    .unwrap_or(self.inner.cfg.max_crash_recoveries),
            ),
            max_hang_recoveries: Some(
                spec.max_hang_recoveries
                    .unwrap_or(self.inner.cfg.max_hang_recoveries),
            ),
            cancel: Some(cancel.clone()),
            record_levels: true,
            // Every served job publishes live progress: the rows feed
            // `watch` subscribers, the `status` current-phase fields,
            // and the artifact's telemetry section — all from the
            // telemetry records the run produces anyway.
            progress: Some(Arc::new(JobProgressSink {
                job_id: spec.job_id.clone(),
                progress: progress.clone(),
                ops: Arc::clone(&self.inner.ops),
                last_phase: Mutex::new(None),
            })),
        };
        let mut runcfg = RunConfig::default();
        if let Some(plan) = spec.fault_plan.as_deref() {
            match FaultPlan::parse(plan) {
                Ok(p) if !p.is_empty() => runcfg.fault = Some(Arc::new(p)),
                Ok(_) => {}
                Err(e) => return self.record_failure(&key, format!("bad fault plan: {e}")),
            }
        }

        let outcome = match self.load_and_run(spec, runcfg, &resil) {
            Ok(v) => v,
            Err(e) => {
                if let Some(rest) = e.strip_prefix(CANCELLED_AT_PHASE) {
                    m.counter_add("serve.jobs_cancelled", 1);
                    return JobStatus::Cancelled {
                        at_phase: rest.trim().parse::<u64>().ok(),
                    };
                }
                return self.record_failure(&key, e);
            }
        };
        let (out, vertices, edges) = outcome;

        // Phase checkpoints below the newest manifest are dead weight
        // now that the run finished — retire them.
        if let Ok(store) = CheckpointStore::new(&ckpt_dir) {
            if store.prune_superseded().is_ok() {
                self.inner.ops.emit(
                    OpKind::CheckpointGc,
                    Some(&spec.job_id),
                    vec![("dir", Json::str(ckpt_dir.to_string_lossy().into_owned()))],
                );
            }
        }

        let graph_name = spec
            .graph
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "graph".to_string());
        let mut meta = ReportMeta::new(graph_name.clone(), vertices, edges);
        meta.variant = spec.cfg.variant.label();
        meta.threads_per_rank = spec.cfg.threads_per_rank;
        let report = build_run_report(&out, &meta);
        // The artifact's telemetry section is the progress stream
        // itself, sorted into canonical `(phase, iteration)` order —
        // so what a `watch` subscriber saw live is bit-for-bit what the
        // final artifact records.
        let telemetry = {
            let mut rows = progress.lock().unwrap().rows.clone();
            rows.sort_by_key(|r| (r.phase, r.iteration));
            rows
        };
        let artifact = RunArtifact {
            name: format!("serve:{}", spec.job_id),
            description: format!("served job on {}", spec.graph.display()),
            runs: vec![RunEntry {
                label: run_label(&graph_name, spec.ranks, "serve"),
                report,
                telemetry,
            }],
        };
        let cached = CachedResult {
            key,
            modularity: out.modularity,
            num_communities: out.num_communities,
            phases: out.phases,
            assignment: out.assignment,
            levels: out.levels,
            artifact,
        };
        let result = {
            let mut st = self.inner.state.lock().unwrap();
            st.poisoned.remove(&key);
            let evicted = st.cache.insert(cached);
            if evicted > 0 {
                m.counter_add("serve.cache_evictions", evicted as u64);
            }
            st.cache.get(&key).expect("just inserted")
        };
        m.counter_add("serve.jobs_completed", 1);
        if out.resumed_from_phase.is_some() {
            m.counter_add("serve.jobs_resumed", 1);
        }
        JobStatus::Done {
            cached: false,
            resumed_from_phase: out.resumed_from_phase,
            crash_recoveries: out.crash_recoveries,
            hang_recoveries: out.hung_events.len() as u64,
            wall_ms: out.wall.as_millis() as u64,
            result,
        }
    }

    /// Bump the poison ladder for a failed key and decide Failed vs
    /// Quarantined.
    fn record_failure(&self, key: &JobKey, error: String) -> JobStatus {
        let attempts = {
            let mut st = self.inner.state.lock().unwrap();
            let e = st.poisoned.entry(*key).or_insert(0);
            *e += 1;
            *e
        };
        if attempts >= self.inner.cfg.quarantine_after {
            self.inner.metrics.counter_add("serve.jobs_quarantined", 1);
            JobStatus::Quarantined { error, attempts }
        } else {
            JobStatus::Failed { error, attempts }
        }
    }

    /// Sniff the snapshot format and run. Returns the outcome plus the
    /// input's (vertices, edges) for the report.
    fn load_and_run(
        &self,
        spec: &JobSpec,
        runcfg: RunConfig,
        resil: &ResilOptions,
    ) -> Result<(louvain_dist::DistOutcome, u64, u64), String> {
        let path = &spec.graph;
        let kind = sniff_kind(path).map_err(|e| format!("{}: {e}", path.display()))?;
        match kind {
            FileKind::Slab => {
                let h = louvain_store::peek_header(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                let out = run_distributed_resilient_source(
                    GraphSource::SlabRanged(path),
                    spec.ranks,
                    &spec.cfg,
                    runcfg,
                    resil,
                )?;
                Ok((out, h.num_vertices, h.num_edges))
            }
            FileKind::BinaryEdges => {
                let el = binio::read_edge_list(path).map_err(|e| e.to_string())?;
                let g = Csr::from_edge_list(el);
                let (nv, ne) = (g.num_vertices() as u64, g.num_edges() as u64);
                let out = run_distributed_resilient_source(
                    GraphSource::Memory(&g),
                    spec.ranks,
                    &spec.cfg,
                    runcfg,
                    resil,
                )?;
                Ok((out, nv, ne))
            }
            FileKind::Text => Err(format!(
                "{} is not an ingested snapshot (slab or binary edge list); \
                 run `louvain ingest`/`louvain generate` first",
                path.display()
            )),
        }
    }
}

fn kind(status: &JobStatus) -> &'static str {
    match status {
        JobStatus::Queued => "queued",
        JobStatus::Running => "running",
        JobStatus::Done { cached: true, .. } => "done (cached)",
        JobStatus::Done { cached: false, .. } => "done",
        JobStatus::Failed { .. } => "failed",
        JobStatus::Quarantined { .. } => "quarantined",
        JobStatus::Cancelled { .. } => "cancelled",
    }
}

enum FileKind {
    Slab,
    BinaryEdges,
    Text,
}

/// First-8-bytes magic sniff, mirroring the CLI's ingest dispatch: both
/// binary formats put a 7-byte signature above a version byte.
fn sniff_kind(path: &std::path::Path) -> std::io::Result<FileKind> {
    use std::io::Read;
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; 8];
    if f.read_exact(&mut head).is_err() {
        return Ok(FileKind::Text);
    }
    Ok(match u64::from_le_bytes(head) & !0xFF {
        louvain_store::MAGIC_SIGNATURE => FileKind::Slab,
        binio::MAGIC_SIGNATURE => FileKind::BinaryEdges,
        _ => FileKind::Text,
    })
}
