//! `louvain-serve`: the long-running job-server layer over the
//! resilient distributed runner.
//!
//! The one-shot CLI protects a single invocation with checkpoints, a
//! watchdog, and recovery budgets; this crate turns those primitives
//! into a serving story:
//!
//! * **Admission control** — jobs flow through a bounded queue plus an
//!   in-flight cap ([`ServeConfig::queue_depth`] /
//!   [`ServeConfig::workers`]). Submissions beyond capacity are shed
//!   with a typed `queue_full` rejection instead of buffered without
//!   bound, and the listener never blocks on a full pool.
//! * **Kill-and-resume** — every job runs under a per-job checkpoint
//!   directory derived from its cache key, with `resume` always on: a
//!   job killed mid-phase (daemon restart, drain, injected crash past
//!   its budget) is *resumed from the newest manifest* on resubmission
//!   and produces a bit-identical result to an uninterrupted run.
//! * **Per-job recovery budgets** — crash and hang budgets are split
//!   ([`louvain_dist::ResilOptions::crash_budget`]), so the quarantine
//!   ladder can tell a poisoned job from a flaky network.
//! * **Poisoned-job quarantine** — a job whose runs keep failing is
//!   quarantined after [`ServeConfig::quarantine_after`] attempts with
//!   a structured error result; it never takes the daemon down.
//! * **Result cache** — finished jobs land in a fingerprint-keyed LRU
//!   ([`cache::ArtifactCache`], key = graph fingerprint × config
//!   fingerprint × ranks); an identical resubmission returns the cached
//!   [`louvain_obs::RunArtifact`] without re-running, and `query`
//!   exposes the dendrogram (per-level assignments) from the cache.
//!
//! The [`proto`] module speaks the JSON-lines wire protocol used by the
//! `louvaind` binary over stdin pipes and TCP connections.

pub mod cache;
pub mod job;
pub mod proto;
pub mod server;

pub use cache::{graph_fingerprint, ArtifactCache, CachedResult, JobKey};
pub use job::JobSpec;
pub use proto::serve_lines;
pub use server::{JobStatus, ServeConfig, Server, SubmitError};
