//! Fingerprint-keyed result cache and the graph fingerprint itself.

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

use louvain_graph::VertexId;
use louvain_obs::RunArtifact;

/// Cache key of a job: what graph, under what configuration, on how
/// many ranks. Two submissions with the same key are guaranteed the
/// same result (the trajectory is deterministic in exactly these
/// inputs), so the key also names the job's checkpoint directory — a
/// resubmission finds the manifests its killed predecessor left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobKey {
    /// FNV-1a over the graph file's bytes.
    pub graph_fp: u64,
    /// [`louvain_dist::config_fingerprint`] of the `DistConfig`.
    pub config_fp: u64,
    pub ranks: usize,
}

impl JobKey {
    /// Directory name of the per-job checkpoint store under the
    /// daemon's checkpoint root.
    pub fn dir_name(&self) -> String {
        format!(
            "job-{:016x}-{:016x}-p{}",
            self.graph_fp, self.config_fp, self.ranks
        )
    }
}

/// Streamed FNV-1a over a graph file's bytes — same function as
/// [`louvain_resil::fnv1a64`], but constant-memory over arbitrarily
/// large slabs. Ingested snapshots are immutable, so the byte hash is a
/// stable identity for cache keying.
pub fn graph_fingerprint(path: &Path) -> std::io::Result<u64> {
    let mut file = std::fs::File::open(path)?;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = vec![0u8; 1 << 20];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            return Ok(hash);
        }
        for &b in &buf[..n] {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// A finished job's full result: the artifact handed back on cache
/// hits, plus the dendrogram the `query` request type serves.
#[derive(Debug)]
pub struct CachedResult {
    pub key: JobKey,
    pub modularity: f64,
    pub num_communities: usize,
    pub phases: usize,
    /// Final community per original vertex (dense).
    pub assignment: Vec<VertexId>,
    /// Per-level assignments (the dendrogram): `levels[k][v]` is vertex
    /// `v`'s community after phase `k`, densely renumbered per level.
    /// The last level equals `assignment`.
    pub levels: Vec<Vec<VertexId>>,
    pub artifact: RunArtifact,
}

/// Insertion-plus-access-ordered LRU over [`CachedResult`]s with a
/// fixed capacity. Not thread-safe on its own — the server guards it
/// with its state lock.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    cap: usize,
    map: HashMap<JobKey, Arc<CachedResult>>,
    /// Front = least recently used.
    order: VecDeque<JobKey>,
}

impl ArtifactCache {
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, key: &JobKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(*key);
    }

    /// Look up a result, refreshing its recency on a hit.
    pub fn get(&mut self, key: &JobKey) -> Option<Arc<CachedResult>> {
        let hit = self.map.get(key).cloned()?;
        self.touch(key);
        Some(hit)
    }

    /// Insert a result, evicting least-recently-used entries past the
    /// capacity bound. Returns how many entries were evicted.
    pub fn insert(&mut self, result: CachedResult) -> usize {
        let key = result.key;
        self.map.insert(key, Arc::new(result));
        self.touch(&key);
        let mut evicted = 0;
        while self.map.len() > self.cap {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
            evicted += 1;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(graph_fp: u64) -> CachedResult {
        CachedResult {
            key: JobKey {
                graph_fp,
                config_fp: 7,
                ranks: 2,
            },
            modularity: 0.5,
            num_communities: 3,
            phases: 2,
            assignment: vec![0, 1, 2],
            levels: vec![vec![0, 1, 2]],
            artifact: RunArtifact::default(),
        }
    }

    #[test]
    fn streamed_fingerprint_matches_fnv1a64() {
        let dir = std::env::temp_dir().join("louvain-serve-fp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let bytes: Vec<u8> = (0..100_000u32).map(|i| (i * 31 % 251) as u8).collect();
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            graph_fingerprint(&path).unwrap(),
            louvain_resil::fnv1a64(&bytes)
        );
    }

    #[test]
    fn lru_evicts_oldest_and_hits_refresh_recency() {
        let mut cache = ArtifactCache::new(2);
        assert_eq!(cache.insert(result(1)), 0);
        assert_eq!(cache.insert(result(2)), 0);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&result(1).key).is_some());
        assert_eq!(cache.insert(result(3)), 1);
        assert!(cache.get(&result(2).key).is_none());
        assert!(cache.get(&result(1).key).is_some());
        assert!(cache.get(&result(3).key).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn key_names_a_stable_checkpoint_dir() {
        let key = JobKey {
            graph_fp: 0xAB,
            config_fp: 0xCD,
            ranks: 4,
        };
        assert_eq!(key.dir_name(), "job-00000000000000ab-00000000000000cd-p4");
    }
}
