//! Job specifications: what a client submits.

use std::path::PathBuf;

use louvain_dist::{DistConfig, SweepMode, Variant};
use louvain_obs::Json;

/// One submitted job: a graph snapshot on disk plus a full
/// [`DistConfig`] and the rank count to run it on. The optional fault
/// plan and per-kind budget overrides exist for testing the recovery
/// path — production submissions leave them out.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Client-chosen identifier echoed back in every response.
    pub job_id: String,
    /// Path to an ingested snapshot (slab or binary edge list).
    pub graph: PathBuf,
    pub ranks: usize,
    pub cfg: DistConfig,
    /// Optional fault-plan DSL string (see `louvain_comm::FaultPlan`),
    /// injected into the run for kill-and-resume testing.
    pub fault_plan: Option<String>,
    /// Per-job override of the server's crash-recovery budget.
    pub max_crash_recoveries: Option<usize>,
    /// Per-job override of the server's hang-recovery budget.
    pub max_hang_recoveries: Option<usize>,
}

/// Parse a variant spec in the CLI grammar:
/// `baseline | cycling | et:<a> | etc:<a> | et+cycling:<a>`.
pub fn parse_variant(spec: &str) -> Result<Variant, String> {
    let (name, alpha) = match spec.split_once(':') {
        Some((n, a)) => {
            let alpha: f64 = a.parse().map_err(|_| format!("bad alpha in `{spec}`"))?;
            if !(0.0..=1.0).contains(&alpha) {
                return Err(format!("alpha must be in [0,1], got {alpha}"));
            }
            (n, Some(alpha))
        }
        None => (spec, None),
    };
    match (name, alpha) {
        ("baseline", None) => Ok(Variant::Baseline),
        ("cycling", None) => Ok(Variant::ThresholdCycling),
        ("et", Some(a)) => Ok(Variant::Et { alpha: a }),
        ("etc", Some(a)) => Ok(Variant::Etc { alpha: a }),
        ("et+cycling", Some(a)) => Ok(Variant::EtPlusCycling { alpha: a }),
        _ => Err(format!(
            "unknown variant `{spec}` (expected baseline | cycling | et:<a> | etc:<a> | et+cycling:<a>)"
        )),
    }
}

fn opt_usize(doc: &Json, key: &str) -> Result<Option<usize>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|u| Some(u as usize))
            .ok_or_else(|| format!("`{key}` is not an unsigned integer")),
    }
}

fn opt_bool(doc: &Json, key: &str) -> Result<Option<bool>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("`{key}` is not a bool")),
    }
}

impl JobSpec {
    /// Parse a submit request body. Required fields: `job_id`, `graph`.
    /// `ranks` defaults to 2; the optional `config` subobject overrides
    /// individual [`DistConfig`] fields on top of the baseline defaults.
    pub fn from_json(doc: &Json) -> Result<JobSpec, String> {
        let job_id = doc
            .get("job_id")
            .and_then(Json::as_str)
            .ok_or("submit is missing string field `job_id`")?
            .to_string();
        if job_id.is_empty() {
            return Err("`job_id` must be non-empty".into());
        }
        let graph = doc
            .get("graph")
            .and_then(Json::as_str)
            .ok_or("submit is missing string field `graph`")?;
        let ranks = opt_usize(doc, "ranks")?.unwrap_or(2);
        if ranks == 0 {
            return Err("`ranks` must be at least 1".into());
        }

        let mut cfg = DistConfig::baseline();
        if let Some(c) = doc.get("config") {
            if c.as_obj().is_none() {
                return Err("`config` is not an object".into());
            }
            if let Some(v) = c.get("variant") {
                let spec = v.as_str().ok_or("`config.variant` is not a string")?;
                cfg.variant = parse_variant(spec)?;
            }
            if let Some(v) = c.get("threshold") {
                cfg.threshold = v.as_f64().ok_or("`config.threshold` is not a number")?;
            }
            if let Some(v) = c.get("seed") {
                cfg.seed = v.as_u64().ok_or("`config.seed` is not a u64")?;
            }
            if let Some(v) = opt_usize(c, "max_phases")? {
                cfg.max_phases = v;
            }
            if let Some(v) = opt_usize(c, "max_iterations")? {
                cfg.max_iterations = v;
            }
            if let Some(v) = opt_usize(c, "threads_per_rank")? {
                cfg.threads_per_rank = v.max(1);
            }
            if let Some(v) = c.get("sweep") {
                let spec = v.as_str().ok_or("`config.sweep` is not a string")?;
                cfg.sweep = SweepMode::parse(spec)?;
            }
            if let Some(v) = opt_bool(c, "delta_ghost_refresh")? {
                cfg.delta_ghost_refresh = v;
            }
            if let Some(v) = opt_bool(c, "vertex_following")? {
                cfg.vertex_following = v;
            }
            if let Some(v) = opt_bool(c, "prune_inactive_ghosts")? {
                cfg.prune_inactive_ghosts = v;
            }
            if let Some(v) = opt_bool(c, "neighborhood_collectives")? {
                cfg.neighborhood_collectives = v;
            }
            if let Some(v) = opt_bool(c, "color_sweeps")? {
                cfg.color_sweeps = v;
            }
        }

        let fault_plan = match doc.get("fault_plan") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("`fault_plan` is not a string")?
                    .to_string(),
            ),
        };

        Ok(JobSpec {
            job_id,
            graph: PathBuf::from(graph),
            ranks,
            cfg,
            fault_plan,
            max_crash_recoveries: opt_usize(doc, "max_crash_recoveries")?,
            max_hang_recoveries: opt_usize(doc, "max_hang_recoveries")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_submit_gets_baseline_defaults() {
        let doc = Json::parse(r#"{"job_id": "j1", "graph": "/tmp/g.bin"}"#).unwrap();
        let spec = JobSpec::from_json(&doc).unwrap();
        assert_eq!(spec.job_id, "j1");
        assert_eq!(spec.ranks, 2);
        assert_eq!(spec.cfg.variant, Variant::Baseline);
        assert_eq!(spec.cfg.seed, DistConfig::baseline().seed);
        assert!(spec.fault_plan.is_none());
        assert!(spec.max_crash_recoveries.is_none());
    }

    #[test]
    fn config_overrides_apply_on_top_of_baseline() {
        let doc = Json::parse(
            r#"{"job_id": "j2", "graph": "g.slab", "ranks": 4,
                "config": {"variant": "et:0.25", "threshold": 0.001,
                           "seed": 42, "max_phases": 5, "sweep": "colored",
                           "delta_ghost_refresh": true},
                "fault_plan": "crash:rank=0,phase=1,op=0",
                "max_crash_recoveries": 1}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&doc).unwrap();
        assert_eq!(spec.ranks, 4);
        assert_eq!(spec.cfg.variant, Variant::Et { alpha: 0.25 });
        assert_eq!(spec.cfg.threshold, 0.001);
        assert_eq!(spec.cfg.seed, 42);
        assert_eq!(spec.cfg.max_phases, 5);
        assert_eq!(spec.cfg.sweep, SweepMode::Colored);
        assert!(spec.cfg.delta_ghost_refresh);
        assert_eq!(
            spec.fault_plan.as_deref(),
            Some("crash:rank=0,phase=1,op=0")
        );
        assert_eq!(spec.max_crash_recoveries, Some(1));
    }

    #[test]
    fn bad_submits_are_rejected_with_field_names() {
        let cases = [
            (r#"{"graph": "g"}"#, "job_id"),
            (r#"{"job_id": "j", "graph": "g", "ranks": 0}"#, "ranks"),
            (
                r#"{"job_id": "j", "graph": "g", "config": {"variant": "bogus"}}"#,
                "variant",
            ),
            (
                r#"{"job_id": "j", "graph": "g", "config": {"sweep": "fast"}}"#,
                "sweep",
            ),
        ];
        for (text, needle) in cases {
            let doc = Json::parse(text).unwrap();
            let err = JobSpec::from_json(&doc).unwrap_err();
            assert!(err.contains(needle), "{err} should mention {needle}");
        }
    }

    #[test]
    fn variant_grammar_matches_cli() {
        assert_eq!(parse_variant("baseline").unwrap(), Variant::Baseline);
        assert_eq!(parse_variant("cycling").unwrap(), Variant::ThresholdCycling);
        assert_eq!(
            parse_variant("et+cycling:0.5").unwrap(),
            Variant::EtPlusCycling { alpha: 0.5 }
        );
        assert!(parse_variant("et:2.0").is_err());
        assert!(parse_variant("et").is_err());
    }
}
