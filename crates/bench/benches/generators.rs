//! Criterion benchmarks for the synthetic workload generators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use louvain_graph::gen::{
    banded, erdos_renyi, grid3d, lfr, rmat, ssca2, weblike, BandedParams, ErdosRenyiParams,
    Grid3dParams, LfrParams, RmatParams, Ssca2Params, WeblikeParams,
};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    let n = 20_000u64;
    group.bench_function(BenchmarkId::new("lfr", n), |b| {
        b.iter(|| black_box(lfr(LfrParams::small(n, 1)).graph.num_edges()));
    });
    group.bench_function(BenchmarkId::new("ssca2", n), |b| {
        b.iter(|| black_box(ssca2(Ssca2Params::paper(n, 2)).graph.num_edges()));
    });
    group.bench_function(BenchmarkId::new("rmat", n), |b| {
        b.iter(|| black_box(rmat(RmatParams::social(14, 8, 3)).graph.num_edges()));
    });
    group.bench_function(BenchmarkId::new("weblike", n), |b| {
        b.iter(|| black_box(weblike(WeblikeParams::web(n, 4)).graph.num_edges()));
    });
    group.bench_function(BenchmarkId::new("grid3d", n), |b| {
        b.iter(|| black_box(grid3d(Grid3dParams::cube(n, 5)).graph.num_edges()));
    });
    group.bench_function(BenchmarkId::new("banded", n), |b| {
        b.iter(|| black_box(banded(BandedParams::channel_like(n, 6)).graph.num_edges()));
    });
    group.bench_function(BenchmarkId::new("erdos_renyi", n), |b| {
        b.iter(|| {
            black_box(
                erdos_renyi(ErdosRenyiParams {
                    n,
                    avg_degree: 8.0,
                    seed: 7,
                })
                .graph
                .num_edges(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
