//! Criterion micro-benchmarks for the algorithmic kernels: modularity
//! scan, one serial Louvain phase, shared-memory coarsening, greedy
//! coloring, and a full distributed run at small scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use grappolo::{greedy_coloring, GrappoloConfig, ParallelLouvain};
use louvain_dist::{run_distributed, serial_louvain, DistConfig, Variant};
use louvain_graph::community::{coarsen, modularity, singleton_assignment};
use louvain_graph::gen::{lfr, ssca2, LfrParams, Ssca2Params};

fn bench_modularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("modularity");
    for n in [1_000u64, 4_000, 16_000] {
        let gen = lfr(LfrParams::small(n, 1));
        let assignment = gen.ground_truth.clone().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(modularity(&gen.graph, &assignment)));
        });
    }
    group.finish();
}

fn bench_serial_louvain(c: &mut Criterion) {
    let mut group = c.benchmark_group("serial_louvain");
    group.sample_size(10);
    for n in [1_000u64, 4_000] {
        let gen = lfr(LfrParams::small(n, 2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(serial_louvain(&gen.graph, 1e-6).modularity));
        });
    }
    group.finish();
}

fn bench_grappolo(c: &mut Criterion) {
    let mut group = c.benchmark_group("grappolo");
    group.sample_size(10);
    let gen = lfr(LfrParams::small(4_000, 3));
    group.bench_function("default_4k", |b| {
        b.iter(|| {
            black_box(
                ParallelLouvain::new(GrappoloConfig::default())
                    .run(&gen.graph)
                    .modularity,
            )
        });
    });
    group.bench_function("coloring_4k", |b| {
        let cfg = GrappoloConfig {
            coloring: true,
            ..Default::default()
        };
        b.iter(|| black_box(ParallelLouvain::new(cfg).run(&gen.graph).modularity));
    });
    group.finish();
}

fn bench_coarsen(c: &mut Criterion) {
    let gen = lfr(LfrParams::small(8_000, 4));
    let assignment = gen.ground_truth.clone().unwrap();
    c.bench_function("coarsen_8k", |b| {
        b.iter(|| black_box(coarsen(&gen.graph, &assignment).0.num_vertices()));
    });
}

fn bench_coloring(c: &mut Criterion) {
    let gen = lfr(LfrParams::small(8_000, 5));
    c.bench_function("greedy_coloring_8k", |b| {
        b.iter(|| black_box(greedy_coloring(&gen.graph).1.len()));
    });
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed");
    group.sample_size(10);
    let gen = lfr(LfrParams::small(2_000, 6));
    for p in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("baseline", p), &p, |b, &p| {
            b.iter(|| {
                black_box(run_distributed(&gen.graph, p, &DistConfig::baseline()).modularity)
            });
        });
    }
    group.finish();
}

/// The iteration hot path end to end: ET run over an SSCA#2 graph with
/// the full vs the delta ghost refresh. Exercises the per-phase scratch
/// arena (no per-round map or buffer allocation) and, in delta mode, the
/// shrunken steady-state refresh payloads.
fn bench_ghost_refresh_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ghost_refresh");
    group.sample_size(10);
    let gen = ssca2(Ssca2Params {
        n: 2_000,
        max_clique_size: 40,
        inter_clique_prob: 0.05,
        seed: 9,
    });
    for (name, delta) in [("full_4r", false), ("delta_4r", true)] {
        let cfg = DistConfig {
            delta_ghost_refresh: delta,
            ..DistConfig::with_variant(Variant::Et { alpha: 0.25 })
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_distributed(&gen.graph, 4, &cfg).modularity));
        });
    }
    group.finish();
}

fn bench_singleton_setup(c: &mut Criterion) {
    c.bench_function("singleton_assignment_1M", |b| {
        b.iter(|| black_box(singleton_assignment(1_000_000).len()));
    });
}

criterion_group!(
    benches,
    bench_modularity,
    bench_serial_louvain,
    bench_grappolo,
    bench_coarsen,
    bench_coloring,
    bench_distributed,
    bench_ghost_refresh_modes,
    bench_singleton_setup,
);
criterion_main!(benches);
