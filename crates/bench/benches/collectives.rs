//! Criterion benchmarks for the simulated-MPI collectives — the
//! communication primitives on the distributed Louvain critical path
//! (the paper attributes ~40% of runtime to the modularity reduction and
//! ~34% to community exchanges).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use louvain_comm::{run, ReduceOp};

fn bench_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce_f64");
    group.sample_size(10);
    for p in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let out = run(p, |comm| {
                    let mut acc = 0.0;
                    for i in 0..100 {
                        acc += comm.all_reduce(i as f64, ReduceOp::Sum);
                    }
                    acc
                });
                black_box(out[0])
            });
        });
    }
    group.finish();
}

fn bench_exscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("exscan_u64");
    group.sample_size(10);
    for p in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let out = run(p, |comm| {
                    let mut acc = 0u64;
                    for i in 0..100u64 {
                        acc = acc.wrapping_add(comm.exscan_sum(i + comm.rank() as u64));
                    }
                    acc
                });
                black_box(out[0])
            });
        });
    }
    group.finish();
}

fn bench_all_to_all_v(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_to_all_v_u64");
    group.sample_size(10);
    for &(p, len) in &[(2usize, 1_000usize), (4, 1_000), (8, 1_000), (4, 100_000)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{p}_len{len}")),
            &(p, len),
            |b, &(p, len)| {
                b.iter(|| {
                    let out = run(p, |comm| {
                        let bufs: Vec<Vec<u64>> = (0..p).map(|dst| vec![dst as u64; len]).collect();
                        let recv = comm.all_to_all_v(bufs);
                        recv.iter().map(|v| v.len()).sum::<usize>()
                    });
                    black_box(out[0])
                });
            },
        );
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier");
    group.sample_size(10);
    for p in [2usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                run(p, |comm| {
                    for _ in 0..100 {
                        comm.barrier();
                    }
                });
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_all_reduce,
    bench_exscan,
    bench_all_to_all_v,
    bench_barrier
);
criterion_main!(benches);
