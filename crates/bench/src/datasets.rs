//! Laptop-scale stand-ins for the paper's test graphs (Table II).
//!
//! The paper's inputs range from 42.7M to 3.3B edges — far beyond a
//! single development machine. Each registry entry generates a synthetic
//! graph whose *structure* (and therefore Louvain behaviour: modularity
//! level, convergence profile, which heuristic wins) mimics the original
//! graph's class, at a size that runs in seconds. See DESIGN.md §2 for
//! the substitution argument.

use louvain_graph::gen::{grid3d, lfr, weblike, Generated, Grid3dParams, LfrParams, WeblikeParams};

/// Structural class of a dataset — decides which generator stands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphClass {
    /// Banded mesh / matrix structure (channel, nlpkkt240): near-uniform
    /// degrees, very high modularity, ET-friendly.
    Mesh,
    /// Scale-free social network (orkut, twitter, sinaweibo): heavy-tailed
    /// degrees, weak community structure (Q ≈ 0.47–0.48).
    Social,
    /// Web crawl (arabic, sk, uk, webbase): power-law host clusters,
    /// Q ≈ 0.97–0.99.
    Web,
    /// Web-derived graph with moderate structure (wiki links, pay-level
    /// domains): Q ≈ 0.67–0.69.
    WebModerate,
    /// Social network with pronounced clusters (friendster, Q ≈ 0.62).
    SocialClustered,
}

/// Experiment scale, from the `LOUVAIN_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quarter size — smoke-test the harness in seconds.
    Quick,
    /// Default size.
    Default,
    /// 4× size — closer shapes, minutes of runtime.
    Full,
}

impl Scale {
    /// Read `LOUVAIN_SCALE` (quick|default|full), defaulting to `Default`.
    pub fn from_env() -> Scale {
        match std::env::var("LOUVAIN_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("full") => Scale::Full,
            _ => Scale::Default,
        }
    }

    fn apply(&self, n: u64) -> u64 {
        match self {
            Scale::Quick => (n / 4).max(1_000),
            Scale::Default => n,
            Scale::Full => n * 4,
        }
    }
}

/// One paper graph and its synthetic stand-in.
#[derive(Debug, Clone, Copy)]
pub struct Dataset {
    /// Name as printed in the paper.
    pub name: &'static str,
    /// Paper-reported size (for the Table II columns).
    pub paper_vertices: &'static str,
    pub paper_edges: &'static str,
    /// Modularity reported by Grappolo in Table II.
    pub paper_modularity: f64,
    pub class: GraphClass,
    /// Default-scale vertex count of the stand-in.
    base_n: u64,
    seed: u64,
}

impl Dataset {
    /// Generate the stand-in graph at the given scale.
    pub fn generate(&self, scale: Scale) -> Generated {
        let n = scale.apply(self.base_n);
        match self.class {
            GraphClass::Mesh => grid3d(Grid3dParams::cube(n, self.seed)),
            // LFR with μ≈0.5: weak community structure, Louvain lands at
            // Q ≈ 0.47 like the paper's social networks. (A raw RMAT has
            // Q < 0.2 — too unstructured to mimic Table II.)
            GraphClass::Social => lfr(LfrParams {
                mu: 0.52,
                ..LfrParams::small(n, self.seed)
            }),
            GraphClass::Web => weblike(WeblikeParams {
                n,
                min_cluster: 8,
                max_cluster: 128,
                tau: 2.0,
                intra_degree: 10.0,
                inter_edges: 1,
                seed: self.seed,
            }),
            GraphClass::WebModerate => weblike(WeblikeParams {
                n,
                min_cluster: 6,
                max_cluster: 64,
                tau: 2.0,
                intra_degree: 8.0,
                inter_edges: 30,
                seed: self.seed,
            }),
            GraphClass::SocialClustered => lfr(LfrParams {
                mu: 0.36,
                ..LfrParams::small(n, self.seed)
            }),
        }
    }
}

/// The 12 graphs of Table II, in the paper's (ascending-edge) order.
pub fn registry() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "channel",
            paper_vertices: "4.8M",
            paper_edges: "42.7M",
            paper_modularity: 0.943,
            class: GraphClass::Mesh,
            base_n: 12_000,
            seed: 101,
        },
        Dataset {
            name: "com-orkut",
            paper_vertices: "3M",
            paper_edges: "117.1M",
            paper_modularity: 0.472,
            class: GraphClass::Social,
            base_n: 8_192,
            seed: 102,
        },
        Dataset {
            name: "soc-sinaweibo",
            paper_vertices: "58.6M",
            paper_edges: "261.3M",
            paper_modularity: 0.482,
            class: GraphClass::Social,
            base_n: 16_384,
            seed: 103,
        },
        Dataset {
            name: "twitter-2010",
            paper_vertices: "21.2M",
            paper_edges: "265M",
            paper_modularity: 0.478,
            class: GraphClass::Social,
            base_n: 16_384,
            seed: 104,
        },
        Dataset {
            name: "nlpkkt240",
            paper_vertices: "27.9M",
            paper_edges: "401.2M",
            paper_modularity: 0.939,
            class: GraphClass::Mesh,
            base_n: 24_000,
            seed: 105,
        },
        Dataset {
            name: "web-wiki-en-2013",
            paper_vertices: "27.1M",
            paper_edges: "601M",
            paper_modularity: 0.671,
            class: GraphClass::WebModerate,
            base_n: 24_000,
            seed: 106,
        },
        Dataset {
            name: "arabic-2005",
            paper_vertices: "22.7M",
            paper_edges: "640M",
            paper_modularity: 0.989,
            class: GraphClass::Web,
            base_n: 26_000,
            seed: 107,
        },
        Dataset {
            name: "webbase-2001",
            paper_vertices: "118M",
            paper_edges: "1B",
            paper_modularity: 0.983,
            class: GraphClass::Web,
            base_n: 32_000,
            seed: 108,
        },
        Dataset {
            name: "web-cc12-PayLevelDomain",
            paper_vertices: "42.8M",
            paper_edges: "1.2B",
            paper_modularity: 0.687,
            class: GraphClass::WebModerate,
            base_n: 36_000,
            seed: 109,
        },
        Dataset {
            name: "soc-friendster",
            paper_vertices: "65.6M",
            paper_edges: "1.8B",
            paper_modularity: 0.624,
            class: GraphClass::SocialClustered,
            base_n: 40_000,
            seed: 110,
        },
        Dataset {
            name: "sk-2005",
            paper_vertices: "50.6M",
            paper_edges: "1.9B",
            paper_modularity: 0.971,
            class: GraphClass::Web,
            base_n: 44_000,
            seed: 111,
        },
        Dataset {
            name: "uk-2007",
            paper_vertices: "105.8M",
            paper_edges: "3.3B",
            paper_modularity: 0.972,
            class: GraphClass::Web,
            base_n: 48_000,
            seed: 112,
        },
    ]
}

/// The two Table I inputs (downloaded from the UFL collection in the
/// paper): CNR (a web crawl with small-world characteristics) and Channel
/// (a banded flow mesh).
pub fn table1_datasets() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "CNR",
            paper_vertices: "325K",
            paper_edges: "3.2M",
            paper_modularity: 0.9128,
            class: GraphClass::Web,
            base_n: 10_000,
            seed: 201,
        },
        Dataset {
            name: "Channel",
            paper_vertices: "4.8M",
            paper_edges: "42.7M",
            paper_modularity: 0.9431,
            class: GraphClass::Mesh,
            base_n: 16_000,
            seed: 202,
        },
    ]
}

/// Look up a dataset (paper graphs and Table I inputs) by name.
pub fn dataset_by_name(name: &str) -> Option<Dataset> {
    registry()
        .into_iter()
        .chain(table1_datasets())
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_graph::community::modularity;

    #[test]
    fn registry_has_twelve_graphs_in_paper_order() {
        let r = registry();
        assert_eq!(r.len(), 12);
        assert_eq!(r[0].name, "channel");
        assert_eq!(r[11].name, "uk-2007");
    }

    #[test]
    fn lookup_by_name() {
        assert!(dataset_by_name("soc-friendster").is_some());
        assert!(dataset_by_name("CNR").is_some());
        assert!(dataset_by_name("UK-2007").is_some());
        assert!(dataset_by_name("nope").is_none());
    }

    #[test]
    fn quick_scale_shrinks() {
        let d = dataset_by_name("uk-2007").unwrap();
        let quick = d.generate(Scale::Quick).graph;
        let def = d.generate(Scale::Default).graph;
        assert!(quick.num_vertices() < def.num_vertices());
    }

    #[test]
    fn web_class_stand_in_has_high_planted_modularity() {
        let d = dataset_by_name("arabic-2005").unwrap();
        let g = d.generate(Scale::Quick);
        let q = modularity(&g.graph, g.ground_truth.as_ref().unwrap());
        assert!(q > 0.9, "q = {q}");
    }

    #[test]
    fn social_class_stand_in_has_weak_planted_structure() {
        let d = dataset_by_name("com-orkut").unwrap();
        let g = d.generate(Scale::Quick);
        let q = modularity(&g.graph, g.ground_truth.as_ref().unwrap());
        // μ ≈ 0.5 planted structure: clearly weaker than web graphs.
        assert!(q < 0.6, "q = {q}");
    }
}
