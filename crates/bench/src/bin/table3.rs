//! Table III — distributed vs shared memory on a single node for
//! soc-friendster, 4–64 threads.
//!
//! The shared-memory column is the Grappolo baseline with a rayon pool of
//! the given size (wall time). The distributed column runs the same
//! thread budget as simulated ranks and reports the modeled job time
//! (wall time on an oversubscribed host is not meaningful — see
//! DESIGN.md §2).
//!
//! Expected shape (paper): shared memory wins at equal thread counts
//! (~2.3× at 32 threads), but the distributed version *scales better*
//! with thread count (~4× from 4→64 threads vs ~2.2× for shared memory).

use grappolo::GrappoloConfig;
use louvain_bench::datasets::{dataset_by_name, Scale};
use louvain_bench::{harness, Table};
use louvain_dist::Variant;

fn main() {
    let scale = Scale::from_env();
    let ds = dataset_by_name("soc-friendster").unwrap();
    let gen = ds.generate(scale);
    eprintln!(
        "# soc-friendster stand-in: |V|={} |E|={}",
        gen.graph.num_vertices(),
        gen.graph.num_edges()
    );

    let mut table = Table::new(
        "Table III: distributed vs shared memory, single node, soc-friendster stand-in",
        &[
            "threads",
            "dist(p=T,t=1)_s",
            "dist(pxt, t=4)_s",
            "dist_Q",
            "shared_wall_s",
            "shared_Q",
        ],
    );

    for threads in [4usize, 8, 16, 32, 64] {
        // Pure MPI: one rank per thread.
        let dist = harness::run_dist_once("soc-friendster", &gen.graph, threads, Variant::Baseline);
        // Hybrid MPI+OpenMP, the paper's configuration ("we set either 2
        // or 4 threads per process"): T/4 ranks × 4 threads each.
        let hybrid_cfg = louvain_dist::DistConfig {
            threads_per_rank: 4,
            ..louvain_dist::DistConfig::baseline()
        };
        let hybrid = harness::run_dist_cfg(
            "soc-friendster",
            &gen.graph,
            (threads / 4).max(1),
            &hybrid_cfg,
        );
        let shared = harness::run_shared_once(
            "soc-friendster",
            &gen.graph,
            &GrappoloConfig {
                threads,
                ..Default::default()
            },
        );
        table.add_row(vec![
            threads.to_string(),
            format!("{:.4}", dist.modeled_seconds),
            format!("{:.4}", hybrid.modeled_seconds),
            format!("{:.4}", dist.modularity),
            format!("{:.4}", shared.wall_seconds),
            format!("{:.4}", shared.modularity),
        ]);
        eprintln!("# threads={threads} done");
    }

    table.print();
    let path = table.write_tsv_named("table3_single_node").unwrap();
    println!("wrote {}", path.display());
}
