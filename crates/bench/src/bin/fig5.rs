//! Figure 5 — convergence characteristics of nlpkkt240 (Baseline vs
//! ET/ETC variants): (a) modularity at the end of each phase,
//! (b) cumulative iterations per phase.
//!
//! Expected shape (paper): ET(0.75) stretches over many more phases with
//! slow modularity growth; ET(0.25) converges in fewer phases; the two
//! ETC variants look alike because the 90%-inactive exit, not τ, ends
//! their phases.

fn main() {
    louvain_bench::harness::convergence_figure("nlpkkt240", "fig5");
}
