//! Table V — the GTgraph SSCA#2 weak-scaling suite: graph dimensions,
//! modularity, and the process count each graph runs on (work per rank
//! held constant). Paper: 5M→150M vertices on 1→512 processes with
//! modularity 0.99998+ throughout.

use louvain_bench::datasets::Scale;
use louvain_bench::{harness, Table};
use louvain_dist::Variant;
use louvain_graph::gen::{ssca2, Ssca2Params};

/// The weak-scaling series: ~`BASE_N` vertices of SSCA#2 work per rank.
pub fn series(scale: Scale) -> Vec<(u64, usize)> {
    let base: u64 = match scale {
        Scale::Quick => 2_000,
        Scale::Default => 6_000,
        Scale::Full => 24_000,
    };
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&p| (base * p as u64, p))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(
        "Table V: SSCA#2 weak-scaling graphs (max clique 25, low inter-clique prob)",
        &[
            "name",
            "vertices",
            "edges",
            "modularity",
            "ranks",
            "modeled_s",
        ],
    );

    let mut tsv = String::from("name\tvertices\tedges\tmodularity\tranks\tmodeled_s\n");
    for (i, (n, p)) in series(scale).into_iter().enumerate() {
        let gen = ssca2(Ssca2Params {
            n,
            max_clique_size: 25,
            inter_clique_prob: 0.02,
            seed: 500 + i as u64,
        });
        let r = harness::run_dist_once(
            &format!("Graph#{}", i + 1),
            &gen.graph,
            p,
            Variant::Baseline,
        );
        table.add_row(vec![
            format!("Graph#{}", i + 1),
            gen.graph.num_vertices().to_string(),
            gen.graph.num_edges().to_string(),
            format!("{:.6}", r.modularity),
            p.to_string(),
            format!("{:.4}", r.modeled_seconds),
        ]);
        tsv.push_str(&format!(
            "Graph#{}\t{}\t{}\t{:.6}\t{}\t{:.6}\n",
            i + 1,
            gen.graph.num_vertices(),
            gen.graph.num_edges(),
            r.modularity,
            p,
            r.modeled_seconds
        ));
        eprintln!("# Graph#{} done ({} ranks)", i + 1, p);
    }

    table.print();
    let path = louvain_bench::write_tsv("table5_weak_scaling", &tsv).unwrap();
    println!("wrote {}", path.display());
}
