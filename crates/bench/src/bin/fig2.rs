//! Figure 2 — threshold cycling illustration: the τ used in each phase.

use louvain_bench::Table;
use louvain_dist::heuristics::ThresholdSchedule;

fn main() {
    let schedule = ThresholdSchedule::paper_cycle(1e-6);
    let mut t = Table::new(
        "Fig 2: threshold cycling schedule (min τ = 1e-6)",
        &["phase", "tau"],
    );
    for phase in 0..=14 {
        t.add_row(vec![
            phase.to_string(),
            format!("{:.0e}", schedule.tau_for_phase(phase)),
        ]);
    }
    t.print();
    let path = t.write_tsv_named("fig2_threshold_schedule").unwrap();
    println!("wrote {}", path.display());
}
