//! Figure 6 — convergence characteristics of web-cc12-PayLevelDomain.
//!
//! Expected shape (paper): here the *aggressive* ET(0.75) beats ET(0.25)
//! (fewer iterations per phase, ~16% faster) at the cost of ~4% lower
//! modularity — the opposite trend to Fig 5's nlpkkt240.

fn main() {
    louvain_bench::harness::convergence_figure("web-cc12-PayLevelDomain", "fig6");
}
