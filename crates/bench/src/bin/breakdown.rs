//! Section V-A profile — the HPCToolkit-style time breakdown of a
//! Baseline run: fraction of time in the Louvain iteration body vs graph
//! rebuild, and within the iteration body the split between community
//! communication, the modularity reduction, and compute.
//!
//! Expected shape (paper, soc-friendster on 256 ranks): ~98% iteration
//! body (34% communication, 40% reduction, 22% compute), ~1% rebuild,
//! ~1% input I/O. The paper's comm-heavy split is a *scale* phenomenon:
//! per-rank compute shrinks ~linearly with ranks while per-message
//! latency does not — so this binary sweeps rank counts to show the
//! communication share rising toward the paper's regime.

use louvain_bench::datasets::{dataset_by_name, Scale};
use louvain_bench::{harness, Table};
use louvain_dist::DistConfig;

fn main() {
    let scale = Scale::from_env();
    let rank_counts: Vec<usize> = match scale {
        Scale::Quick => vec![4, 16],
        _ => vec![4, 16, 64, 128],
    };
    let ds = dataset_by_name("soc-friendster").unwrap();
    let gen = ds.generate(scale);
    eprintln!(
        "# soc-friendster stand-in: |V|={} |E|={}",
        gen.graph.num_vertices(),
        gen.graph.num_edges()
    );

    let mut table = Table::new(
        "Time breakdown (modeled critical path), Baseline",
        &[
            "ranks",
            "compute_%",
            "comm_%",
            "reduce_%",
            "rebuild_%",
            "iter_body_%",
            "total_s",
        ],
    );

    for &ranks in &rank_counts {
        let out = harness::run_dist_full(&gen.graph, ranks, &DistConfig::baseline());
        let (compute, comm, reduce, rebuild) = out.modeled_breakdown();
        let total = compute + comm + reduce + rebuild;
        let pct = |x: f64| format!("{:.1}%", 100.0 * x / total);
        table.add_row(vec![
            ranks.to_string(),
            pct(compute),
            pct(comm),
            pct(reduce),
            pct(rebuild),
            pct(compute + comm + reduce),
            format!("{total:.4}"),
        ]);
        eprintln!("# ranks={ranks} done");
    }

    table.print();
    println!(
        "paper (256 ranks): iteration body ~98% (34% comm, 40% reduce, 22% compute), rebuild ~1%"
    );
    let path = table.write_tsv_named("breakdown_profile").unwrap();
    println!("wrote {}", path.display());
}
