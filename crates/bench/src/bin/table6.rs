//! Table VI — ET(0.25) combined with Threshold Cycling vs plain
//! ET(0.25) on the soc-friendster stand-in over a sweep of rank counts.
//!
//! Expected shape (paper): the combination wins by a consistent ~10–12%
//! at every process count.

use louvain_bench::datasets::{dataset_by_name, Scale};
use louvain_bench::{harness, Table};
use louvain_dist::Variant;

fn main() {
    let scale = Scale::from_env();
    let ds = dataset_by_name("soc-friendster").unwrap();
    let gen = ds.generate(scale);
    eprintln!(
        "# soc-friendster stand-in: |V|={} |E|={}",
        gen.graph.num_vertices(),
        gen.graph.num_edges()
    );

    let ranks = match scale {
        Scale::Quick => vec![2usize, 4, 8],
        _ => vec![4usize, 8, 16, 32, 64],
    };

    let mut table = Table::new(
        "Table VI: ET(0.25) vs ET(0.25)+Threshold Cycling, soc-friendster stand-in",
        &[
            "ranks",
            "ET(0.25)_s",
            "ET+Cycling_s",
            "gain_%",
            "Q_et",
            "Q_combo",
        ],
    );

    for p in ranks {
        let et =
            harness::run_dist_once("soc-friendster", &gen.graph, p, Variant::Et { alpha: 0.25 });
        let combo = harness::run_dist_once(
            "soc-friendster",
            &gen.graph,
            p,
            Variant::EtPlusCycling { alpha: 0.25 },
        );
        let gain = 100.0 * (et.modeled_seconds - combo.modeled_seconds) / et.modeled_seconds;
        table.add_row(vec![
            p.to_string(),
            format!("{:.4}", et.modeled_seconds),
            format!("{:.4}", combo.modeled_seconds),
            format!("{gain:.0}%"),
            format!("{:.3}", et.modularity),
            format!("{:.3}", combo.modularity),
        ]);
        eprintln!("# ranks={p} done");
    }

    table.print();
    let path = table.write_tsv_named("table6_et_plus_cycling").unwrap();
    println!("wrote {}", path.display());
}
