//! Table IV — best speedup over the Baseline version and which variant
//! achieves it, per input graph.
//!
//! The paper computes "speedup as the ratio between the Baseline
//! execution time on 16–128 processes and the execution time for the
//! fastest running version observed for a particular input". We sweep
//! the heuristic variants at a fixed rank count and report
//! `baseline_time / fastest_variant_time` and the winning variant.
//!
//! Expected shape (paper Table IV): ET/ETC wins on most inputs; mesh-like
//! graphs see the largest factors (channel: 46×), web graphs the
//! smallest (sk-2005: 1.8×); Threshold Cycling wins where the run has
//! only a few phases (soc-sinaweibo, nlpkkt240).

use louvain_bench::datasets::{registry, Scale};
use louvain_bench::{harness, Table};
use louvain_dist::{DistConfig, Variant};

fn main() {
    let scale = Scale::from_env();
    let ranks = match scale {
        Scale::Quick => 4,
        _ => 16,
    };

    let mut table = Table::new(
        format!("Table IV: best speedup over Baseline ({ranks} ranks)"),
        &["graph", "best_speedup", "version", "baseline_Q", "best_Q"],
    );

    for ds in registry() {
        let gen = ds.generate(scale);
        let base = harness::run_dist_once(ds.name, &gen.graph, ranks, Variant::Baseline);
        let mut best: Option<louvain_bench::RunRecord> = None;
        for variant in DistConfig::paper_variants() {
            if variant == Variant::Baseline {
                continue;
            }
            let r = harness::run_dist_once(ds.name, &gen.graph, ranks, variant);
            if best
                .as_ref()
                .is_none_or(|b| r.modeled_seconds < b.modeled_seconds)
            {
                best = Some(r);
            }
        }
        let best = best.unwrap();
        table.add_row(vec![
            ds.name.to_string(),
            format!("{:.2}x", base.modeled_seconds / best.modeled_seconds),
            best.variant.clone(),
            format!("{:.3}", base.modularity),
            format!("{:.3}", best.modularity),
        ]);
        eprintln!("# {} done (winner {})", ds.name, best.variant);
    }

    table.print();
    let path = table.write_tsv_named("table4_best_speedup").unwrap();
    println!("wrote {}", path.display());
}
