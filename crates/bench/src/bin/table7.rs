//! Table VII — quality vs LFR ground truth: precision and F-score of the
//! distributed implementation on a series of LFR benchmark graphs
//! (paper: 350K–2M vertices on 32 processes; recall = 1.0 throughout,
//! precision degrading gently with size).

use louvain_bench::datasets::Scale;
use louvain_bench::Table;
use louvain_dist::{f_score, run_distributed, DistConfig};
use louvain_graph::gen::{lfr, LfrParams};

fn main() {
    let scale = Scale::from_env();
    let (sizes, ranks): (Vec<u64>, usize) = match scale {
        Scale::Quick => (vec![2_000, 4_000, 6_000], 4),
        Scale::Default => (vec![10_000, 17_000, 28_000, 43_000, 57_000], 8),
        Scale::Full => (vec![35_000, 60_000, 100_000, 150_000, 200_000], 8),
    };

    let mut table = Table::new(
        format!("Table VII: LFR ground-truth quality ({ranks} ranks)"),
        &[
            "vertices",
            "edges",
            "precision",
            "recall",
            "f_score",
            "modularity",
        ],
    );

    for (i, n) in sizes.into_iter().enumerate() {
        // Community sizes grow sublinearly with n (exponent 0.35): they
        // shrink relative to the resolution limit (∝ √m), so precision
        // degrades gently with size — the paper's Table VII behaviour.
        let f = (n as f64 / 10_000.0).powf(0.35).max(0.5);
        let gen = lfr(LfrParams {
            min_community: (30.0 * f) as u64,
            max_community: (150.0 * f) as u64,
            ..LfrParams::small(n, 700 + i as u64)
        });
        let out = run_distributed(&gen.graph, ranks, &DistConfig::baseline());
        let q = f_score(gen.ground_truth.as_ref().unwrap(), &out.assignment);
        table.add_row(vec![
            n.to_string(),
            gen.graph.num_edges().to_string(),
            format!("{:.6}", q.precision),
            format!("{:.6}", q.recall),
            format!("{:.6}", q.f_score),
            format!("{:.4}", out.modularity),
        ]);
        eprintln!("# n={n} done (F = {:.4})", q.f_score);
    }

    table.print();
    let path = table.write_tsv_named("table7_lfr_quality").unwrap();
    println!("wrote {}", path.display());
}
