//! Ablation studies for the design choices called out in DESIGN.md and
//! for the paper's future-work extensions:
//!
//! 1. **singleton-swap guard** on/off — the Vite/Grappolo minimum-label
//!    rule that prevents cross-rank swap oscillation,
//! 2. **sweep order** — seeded shuffle vs raw index order,
//! 3. **input distribution** — edge-balanced (the paper's) vs naive
//!    vertex-balanced,
//! 4. **neighborhood collectives** vs full all-to-all for the ghost
//!    refresh (paper future work),
//! 5. **inactive-ghost pruning** under ET (paper §IV-B refinement),
//! 6. **distance-1 colored sweeps** vs free-for-all (paper future work).

use louvain_bench::datasets::{dataset_by_name, Scale};
use louvain_bench::Table;
use louvain_comm::RunConfig;
use louvain_dist::{
    run_distributed, run_distributed_partitioned, DistConfig, PartitionStrategy, Variant,
};
use louvain_graph::Csr;

fn row(t: &mut Table, name: &str, out: &louvain_dist::DistOutcome) {
    t.add_row(vec![
        name.to_string(),
        format!("{:.4}", out.modularity),
        out.total_iterations.to_string(),
        out.phases.to_string(),
        format!("{:.4}", out.modeled_seconds),
        out.traffic.p2p_messages.to_string(),
        (out.traffic.p2p_bytes / 1024).to_string(),
    ]);
}

fn ablate(title: &str, g: &Csr, ranks: usize, configs: &[(&str, DistConfig)]) -> Table {
    let mut t = Table::new(
        format!("{title} ({ranks} ranks)"),
        &[
            "config",
            "Q",
            "iters",
            "phases",
            "modeled_s",
            "p2p_msgs",
            "p2p_KiB",
        ],
    );
    for (name, cfg) in configs {
        let out = run_distributed(g, ranks, cfg);
        row(&mut t, name, &out);
    }
    t
}

fn main() {
    let scale = Scale::from_env();
    let ranks = match scale {
        Scale::Quick => 4,
        _ => 8,
    };
    let social = dataset_by_name("soc-friendster")
        .unwrap()
        .generate(scale)
        .graph;
    let mesh = dataset_by_name("nlpkkt240").unwrap().generate(scale).graph;
    let web = dataset_by_name("uk-2007").unwrap().generate(scale).graph;
    eprintln!(
        "# inputs: social |V|={}, mesh |V|={}, web |V|={}",
        social.num_vertices(),
        mesh.num_vertices(),
        web.num_vertices()
    );

    // 1. Singleton-swap guard.
    let t = ablate(
        "Ablation 1: singleton-swap guard (social graph)",
        &social,
        ranks,
        &[
            ("guard on (default)", DistConfig::baseline()),
            (
                "guard off",
                DistConfig {
                    disable_singleton_guard: true,
                    ..DistConfig::baseline()
                },
            ),
        ],
    );
    t.print();
    t.write_tsv_named("ablation1_singleton_guard").unwrap();

    // 2. Sweep order (mesh graphs are where index order hurts).
    let t = ablate(
        "Ablation 2: sweep order (mesh graph)",
        &mesh,
        ranks,
        &[
            ("shuffled (default)", DistConfig::baseline()),
            (
                "index order",
                DistConfig {
                    index_order_sweep: true,
                    ..DistConfig::baseline()
                },
            ),
        ],
    );
    t.print();
    t.write_tsv_named("ablation2_sweep_order").unwrap();

    // 3. Partitioning strategy (skewed-degree web graph).
    {
        let mut t = Table::new(
            format!("Ablation 3: input distribution (web graph, {ranks} ranks)"),
            &[
                "config",
                "Q",
                "iters",
                "phases",
                "modeled_s",
                "p2p_msgs",
                "p2p_KiB",
            ],
        );
        for (name, strategy) in [
            ("edge-balanced (paper)", PartitionStrategy::EdgeBalanced),
            ("vertex-balanced", PartitionStrategy::VertexBalanced),
        ] {
            let out = run_distributed_partitioned(
                &web,
                ranks,
                &DistConfig::baseline(),
                RunConfig::default(),
                strategy,
            );
            row(&mut t, name, &out);
        }
        t.print();
        t.write_tsv_named("ablation3_partitioning").unwrap();
    }

    // 4. Neighborhood collectives for the ghost refresh.
    let t = ablate(
        "Ablation 4: ghost refresh collective (web graph)",
        &web,
        ranks,
        &[
            ("all-to-all (paper)", DistConfig::baseline()),
            (
                "MPI-3 neighborhood",
                DistConfig {
                    neighborhood_collectives: true,
                    ..DistConfig::baseline()
                },
            ),
        ],
    );
    t.print();
    t.write_tsv_named("ablation4_neighborhood").unwrap();

    // 5. Inactive-ghost pruning under ET.
    let t = ablate(
        "Ablation 5: inactive-ghost pruning with ET(0.75) (mesh graph)",
        &mesh,
        ranks,
        &[
            (
                "ET(0.75)",
                DistConfig::with_variant(Variant::Et { alpha: 0.75 }),
            ),
            (
                "ET(0.75) + pruning",
                DistConfig {
                    prune_inactive_ghosts: true,
                    ..DistConfig::with_variant(Variant::Et { alpha: 0.75 })
                },
            ),
        ],
    );
    t.print();
    t.write_tsv_named("ablation5_ghost_pruning").unwrap();

    // 6. Distance-1 colored sweeps.
    let t = ablate(
        "Ablation 6: distance-1 colored sweeps (social graph)",
        &social,
        ranks,
        &[
            ("free-for-all (paper)", DistConfig::baseline()),
            (
                "colored sub-rounds",
                DistConfig {
                    color_sweeps: true,
                    ..DistConfig::baseline()
                },
            ),
        ],
    );
    t.print();
    t.write_tsv_named("ablation6_coloring").unwrap();
}
