//! Table II — the test-graph inventory with the modularity reported by
//! (serial) Grappolo. Paper columns: #Vertices, #Edges, Modularity.
//! Here: stand-in sizes plus paper-vs-measured modularity.
//!
//! Expected shape: mesh and web graphs in the 0.93–0.99 band, social
//! graphs near 0.47–0.48, the moderate web graphs around 0.62–0.69.

use grappolo::{GrappoloConfig, ParallelLouvain};
use louvain_bench::datasets::{registry, Scale};
use louvain_bench::Table;

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(
        "Table II: test graphs (synthetic stand-ins) and Grappolo modularity",
        &[
            "graph",
            "paper_V",
            "paper_E",
            "standin_V",
            "standin_E",
            "paper_Q",
            "measured_Q",
        ],
    );

    for ds in registry() {
        let gen = ds.generate(scale);
        let result = ParallelLouvain::new(GrappoloConfig::serial()).run(&gen.graph);
        table.add_row(vec![
            ds.name.to_string(),
            ds.paper_vertices.to_string(),
            ds.paper_edges.to_string(),
            gen.graph.num_vertices().to_string(),
            gen.graph.num_edges().to_string(),
            format!("{:.3}", ds.paper_modularity),
            format!("{:.3}", result.modularity),
        ]);
        eprintln!("# {} done (Q = {:.3})", ds.name, result.modularity);
    }

    table.print();
    let path = table.write_tsv_named("table2_inventory").unwrap();
    println!("wrote {}", path.display());
}
