//! Offline perf-regression smoke bench: a quick fixed-seed sweep over the
//! generator families, recording modeled communication time and the
//! per-step byte counters — in particular ghost-refresh bytes with the
//! full vs the delta refresh — into `BENCH_PR1.json`.
//!
//! Everything runs in-process on the simulated communicator; no network,
//! registry, or dataset downloads are involved, so the numbers are
//! reproducible on any machine (byte counters exactly, modeled seconds
//! exactly, wall times approximately).
//!
//! Usage: `cargo run --release -p louvain-bench --bin bench_smoke [out.json]`
//! (default output path: `BENCH_PR1.json` in the current directory).

use std::fmt::Write as _;
use std::time::Instant;

use louvain_comm::CommStep;
use louvain_dist::{run_distributed, DistConfig, DistOutcome, Variant};
use louvain_graph::gen::{lfr, rmat, ssca2, LfrParams, RmatParams, Ssca2Params};
use louvain_graph::Csr;

struct RunRow {
    graph: &'static str,
    n: u64,
    m: u64,
    ranks: usize,
    mode: &'static str,
    modularity: f64,
    phases: usize,
    iterations: usize,
    modeled_comm_seconds: f64,
    modeled_total_seconds: f64,
    ghost_refresh_bytes: u64,
    /// Ghost-refresh bytes minus the (mode-specific) bytes of a
    /// one-iteration probe run — i.e. the traffic of every exchange
    /// *after* the first, which is where the delta refresh can win.
    ghost_refresh_bytes_post_first: u64,
    community_pull_bytes: u64,
    delta_push_bytes: u64,
    reduction_bytes: u64,
    wall_ms: u128,
}

fn et_cfg(delta: bool) -> DistConfig {
    DistConfig {
        delta_ghost_refresh: delta,
        ..DistConfig::with_variant(Variant::Et { alpha: 0.25 })
    }
}

fn ghost_bytes(out: &DistOutcome) -> u64 {
    out.traffic.step_bytes_for(CommStep::GhostRefresh)
}

fn run_mode(graph: &'static str, g: &Csr, ranks: usize, delta: bool) -> RunRow {
    let cfg = et_cfg(delta);
    let t0 = Instant::now();
    let out = run_distributed(g, ranks, &cfg);
    let wall_ms = t0.elapsed().as_millis();
    // One-iteration probe: captures the cost of the mandatory first
    // (full) exchange so the steady-state share can be separated out.
    let probe_cfg = DistConfig { max_phases: 1, max_iterations: 1, ..cfg };
    let probe = run_distributed(g, ranks, &probe_cfg);
    let (_, comm, _, _) = out.modeled_breakdown();
    RunRow {
        graph,
        n: g.num_vertices() as u64,
        m: g.num_edges() as u64,
        ranks,
        mode: if delta { "delta" } else { "full" },
        modularity: out.modularity,
        phases: out.phases,
        iterations: out.total_iterations,
        modeled_comm_seconds: comm,
        modeled_total_seconds: out.modeled_seconds,
        ghost_refresh_bytes: ghost_bytes(&out),
        ghost_refresh_bytes_post_first: ghost_bytes(&out).saturating_sub(ghost_bytes(&probe)),
        community_pull_bytes: out.traffic.step_bytes_for(CommStep::CommunityPull),
        delta_push_bytes: out.traffic.step_bytes_for(CommStep::DeltaPush),
        reduction_bytes: out.traffic.step_bytes_for(CommStep::Reduction),
        wall_ms,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_PR1.json".into());

    let graphs: Vec<(&'static str, Csr)> = vec![
        ("rmat_s11_ef8", rmat(RmatParams::social(11, 8, 5)).graph),
        (
            "ssca2_4k",
            ssca2(Ssca2Params { n: 4_000, max_clique_size: 50, inter_clique_prob: 0.05, seed: 9 })
                .graph,
        ),
        ("lfr_3k", lfr(LfrParams::small(3_000, 7)).graph),
    ];

    let mut rows: Vec<RunRow> = Vec::new();
    for (name, g) in &graphs {
        for ranks in [1usize, 2, 8] {
            for delta in [false, true] {
                let row = run_mode(name, g, ranks, delta);
                eprintln!(
                    "{:>14} p={:<2} {:<5} q={:.4} it={:<3} ghost_bytes={:<10} post_first={}",
                    row.graph,
                    row.ranks,
                    row.mode,
                    row.modularity,
                    row.iterations,
                    row.ghost_refresh_bytes,
                    row.ghost_refresh_bytes_post_first,
                );
                rows.push(row);
            }
        }
    }

    // Summary: full/delta ghost-byte ratios per (graph, ranks) pair.
    let mut summary = String::new();
    let mut first = true;
    for (name, _) in &graphs {
        for ranks in [2usize, 8] {
            let find = |mode: &str| {
                rows.iter()
                    .find(|r| r.graph == *name && r.ranks == ranks && r.mode == mode)
                    .unwrap()
            };
            let full = find("full");
            let delta = find("delta");
            let ratio = |a: u64, b: u64| if b == 0 { f64::NAN } else { a as f64 / b as f64 };
            if !first {
                summary.push(',');
            }
            first = false;
            write!(
                summary,
                "\n    {{\"graph\": {:?}, \"ranks\": {}, \"ghost_bytes_ratio_total\": {:.3}, \"ghost_bytes_ratio_post_first\": {:.3}}}",
                name,
                ranks,
                ratio(full.ghost_refresh_bytes, delta.ghost_refresh_bytes),
                ratio(
                    full.ghost_refresh_bytes_post_first,
                    delta.ghost_refresh_bytes_post_first
                ),
            )
            .unwrap();
        }
    }

    let mut runs = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            runs.push(',');
        }
        write!(
            runs,
            "\n    {{\"graph\": {:?}, \"n\": {}, \"m\": {}, \"ranks\": {}, \"variant\": \"ET(0.25)\", \"mode\": {:?}, \"modularity\": {:.6}, \"phases\": {}, \"iterations\": {}, \"modeled_comm_seconds\": {:.6}, \"modeled_total_seconds\": {:.6}, \"ghost_refresh_bytes\": {}, \"ghost_refresh_bytes_post_first\": {}, \"community_pull_bytes\": {}, \"delta_push_bytes\": {}, \"reduction_bytes\": {}, \"wall_ms\": {}}}",
            r.graph,
            r.n,
            r.m,
            r.ranks,
            r.mode,
            r.modularity,
            r.phases,
            r.iterations,
            r.modeled_comm_seconds,
            r.modeled_total_seconds,
            r.ghost_refresh_bytes,
            r.ghost_refresh_bytes_post_first,
            r.community_pull_bytes,
            r.delta_push_bytes,
            r.reduction_bytes,
            r.wall_ms,
        )
        .unwrap();
    }

    let json = format!(
        "{{\n  \"bench\": \"BENCH_PR1\",\n  \"description\": \"fixed-seed smoke sweep: ET(0.25), full vs delta ghost refresh\",\n  \"runs\": [{runs}\n  ],\n  \"summary\": [{summary}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write bench json");
    eprintln!("wrote {out_path}");
}
