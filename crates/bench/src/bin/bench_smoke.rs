//! Offline perf-regression smoke bench: a quick fixed-seed sweep over the
//! generator families, recording modeled communication time and the
//! per-step byte counters — in particular ghost-refresh bytes with the
//! full vs the delta refresh — into `BENCH_PR3.json`, together with a
//! checkpoint-on vs checkpoint-off overhead comparison (wall time, bytes
//! written to the checkpoint directory, Checkpoint-step traffic).
//!
//! Everything runs in-process on the simulated communicator; no network,
//! registry, or dataset downloads are involved, so the numbers are
//! reproducible on any machine (byte counters exactly, modeled seconds
//! exactly, wall times approximately).
//!
//! Usage:
//! `cargo run --release -p louvain-bench --bin bench_smoke -- \
//!      [--out bench.json] [--report-out reports.json]`
//!
//! `--out` (or env `BENCH_SMOKE_OUT`, or the first positional argument)
//! selects the bench-row output path, default `BENCH_PR3.json`.
//! `--report-out` (or env `BENCH_SMOKE_REPORT`) additionally enables
//! tracing and writes one aggregated [`louvain_obs::RunReport`] per graph
//! (8 ranks, delta refresh) with the modeled compute/comm/reduce
//! fractions to compare against the paper's §V-A breakdown.
//! `--watchdog-out` (or env `BENCH_SMOKE_WATCHDOG`) selects the
//! rank-health watchdog on/off A-B output path, default
//! `BENCH_PR4.json`: per graph, a fault-free run with the watchdog
//! ladder enabled vs the legacy hard-deadline path, asserting
//! bit-identical results and recording the wall-time delta plus the
//! watchdog counters (all zero on a healthy run).
//! `--artifact-out` (or env `BENCH_SMOKE_ARTIFACT`) additionally writes
//! the whole sweep as one versioned [`louvain_obs::RunArtifact`] (the
//! schema `lens` diffs and gates on): every sweep row as an untraced
//! RunReport entry, plus one traced p=2 delta entry per graph carrying
//! per-iteration convergence telemetry, the causal phase profile, and
//! the Lamport-matched message edges `lens crit` analyzes.
//! `--trace-out` (or env `BENCH_SMOKE_TRACE`) writes the Chrome/Perfetto
//! trace of the first traced artifact run (load it at ui.perfetto.dev).
//! `--threads` (default `1,2,4`) selects the intra-rank thread axis of
//! the colored-sweep scaling section: per graph at p∈{1,2}, one run per
//! thread count under `SweepMode::Colored`, asserting bit-identical
//! results across the axis and a ≥1.5x modeled phase-1 sweep win at the
//! largest thread count vs 1 thread on at least 2 of the 3 graphs per
//! rank count (the wall clock is recorded alongside; on a single-core
//! CI host only the modeled win is stable enough to gate on).
//! `--scale-out` (or env `BENCH_SMOKE_SCALE`) switches to the
//! million-edge weak-scaling pass instead of the smoke suite: two
//! ≥1M-edge graphs are stream-generated to disk slabs, run mmap-backed
//! at p∈{1,2,8} (p=2 byte-range load asserted bit-identical), and a
//! 64→4096-rank α-β curve is modeled off the measured p=8 counters;
//! the artifact (committed as `BENCH_PR8.json`) is written to the given
//! path. See [`scale_section`].

use std::fmt::Write as _;

use louvain_comm::{CommStep, CostModel, HealthConfig, RunConfig};
use louvain_dist::{
    build_run_report, run_distributed, run_distributed_resilient, run_distributed_resilient_source,
    CheckpointOptions, DistConfig, DistOutcome, GraphSource, ReportMeta, ResilOptions, SweepMode,
    Variant,
};
use louvain_graph::gen::{
    lfr, rmat, rmat_stream, ssca2, ssca2_stream, LfrParams, RmatParams, Ssca2Params,
};
use louvain_graph::Csr;
use louvain_obs::{run_label, RunArtifact, RunEntry, RunReport};
use louvain_store::{Slab, SlabBuilder, SlabOptions, SlabSummary};

struct RunRow {
    graph: &'static str,
    n: u64,
    m: u64,
    ranks: usize,
    mode: &'static str,
    modularity: f64,
    phases: usize,
    iterations: usize,
    modeled_comm_seconds: f64,
    modeled_total_seconds: f64,
    ghost_refresh_bytes: u64,
    /// Ghost-refresh bytes minus the (mode-specific) bytes of a
    /// one-iteration probe run — i.e. the traffic of every exchange
    /// *after* the first, which is where the delta refresh can win.
    ghost_refresh_bytes_post_first: u64,
    community_pull_bytes: u64,
    delta_push_bytes: u64,
    reduction_bytes: u64,
    /// Modeled HPCToolkit-style breakdown (seconds) — the RunReport
    /// fields, flattened into the bench row.
    modeled_compute_seconds: f64,
    modeled_reduce_seconds: f64,
    modeled_rebuild_seconds: f64,
    comm_fraction: f64,
    wall_ms: u128,
}

fn et_cfg(delta: bool) -> DistConfig {
    DistConfig {
        delta_ghost_refresh: delta,
        ..DistConfig::with_variant(Variant::Et { alpha: 0.25 })
    }
}

fn ghost_bytes(out: &DistOutcome) -> u64 {
    out.traffic.step_bytes_for(CommStep::GhostRefresh)
}

fn run_mode(graph: &'static str, g: &Csr, ranks: usize, delta: bool) -> (RunRow, DistOutcome) {
    let cfg = et_cfg(delta);
    let watch = louvain_obs::Stopwatch::start();
    let out = run_distributed(g, ranks, &cfg);
    let wall_ms = (watch.wall_seconds() * 1e3) as u128;
    // One-iteration probe: captures the cost of the mandatory first
    // (full) exchange so the steady-state share can be separated out.
    let probe_cfg = DistConfig {
        max_phases: 1,
        max_iterations: 1,
        ..cfg
    };
    let probe = run_distributed(g, ranks, &probe_cfg);
    let (compute, comm, reduce, rebuild) = out.modeled_breakdown();
    let total = (compute + comm + reduce + rebuild).max(f64::MIN_POSITIVE);
    let row = RunRow {
        graph,
        n: g.num_vertices() as u64,
        m: g.num_edges() as u64,
        ranks,
        mode: if delta { "delta" } else { "full" },
        modularity: out.modularity,
        phases: out.phases,
        iterations: out.total_iterations,
        modeled_comm_seconds: comm,
        modeled_total_seconds: out.modeled_seconds,
        ghost_refresh_bytes: ghost_bytes(&out),
        ghost_refresh_bytes_post_first: ghost_bytes(&out).saturating_sub(ghost_bytes(&probe)),
        community_pull_bytes: out.traffic.step_bytes_for(CommStep::CommunityPull),
        delta_push_bytes: out.traffic.step_bytes_for(CommStep::DeltaPush),
        reduction_bytes: out.traffic.step_bytes_for(CommStep::Reduction),
        modeled_compute_seconds: compute,
        modeled_reduce_seconds: reduce,
        modeled_rebuild_seconds: rebuild,
        comm_fraction: comm / total,
        wall_ms,
    };
    (row, out)
}

/// Total size of all regular files under `dir`, recursively.
fn dir_bytes(dir: &std::path::Path) -> u64 {
    let mut total = 0u64;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += dir_bytes(&path);
        } else if let Ok(meta) = entry.metadata() {
            total += meta.len();
        }
    }
    total
}

/// `--key value` lookup over raw args.
fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Million-edge weak-scaling sweep over the out-of-core slab path
/// (paper Fig. 4 / Table V shape). Two ≥1M-edge graphs are
/// stream-generated straight to disk slabs (bounded-memory external
/// sort — no in-RAM edge list ever exists), then run mmap-backed at
/// p∈{1,2,8}; the p=2 per-rank byte-range load is asserted bit-identical
/// to the shared mapping. On top of the measured points, a 64→4096-rank
/// curve is modeled with the Aries α-β constants: per-rank compute
/// scales as 1/P off the measured p=8 modeled compute, the exchanged
/// bytes follow the 1D cut fraction (1 − 1/P) calibrated on the
/// measured p=8 comm bytes, and each of the measured iterations pays
/// α·(P−1) per rank for the ghost exchange — which is exactly the term
/// that flattens the paper's scaling curves at high rank counts.
///
/// The artifact (`BENCH_PR8.json` when committed) labels measured rows
/// `weak/...` (wall times are machine-local: gate with
/// `--skip-label weak/`) and modeled rows `model/...` (derived from
/// deterministic byte counters and iteration counts — they gate
/// exactly).
fn scale_section(out_path: &str) {
    let dir = std::env::temp_dir().join(format!("louvain-bench-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scale slab dir");

    // Stream-generate the slabs. SlabOptions::default() spills sorted
    // 1M-triple runs, so peak generator RSS is O(chunk), not O(edges).
    let mut graphs: Vec<(&'static str, std::path::PathBuf, SlabSummary)> = Vec::new();
    {
        let name = "rmat_s17_ef10";
        let path = dir.join(format!("{name}.slab"));
        let watch = louvain_obs::Stopwatch::start();
        let mut b = SlabBuilder::new(1u64 << 17, SlabOptions::default());
        rmat_stream(RmatParams::social(17, 10, 5), &mut b).expect("rmat stream");
        let s = b.finish(&path).expect("finish rmat slab");
        eprintln!(
            "{:>14} generated: {} vertices, {} edges, {} slab bytes in {:.1}s",
            name,
            s.num_vertices,
            s.num_edges,
            s.file_bytes,
            watch.wall_seconds()
        );
        graphs.push((name, path, s));
    }
    {
        let name = "ssca2_45k";
        let path = dir.join(format!("{name}.slab"));
        let watch = louvain_obs::Stopwatch::start();
        let mut b = SlabBuilder::new(45_000, SlabOptions::default());
        ssca2_stream(Ssca2Params::paper(45_000, 9), &mut b).expect("ssca2 stream");
        let s = b.finish(&path).expect("finish ssca2 slab");
        eprintln!(
            "{:>14} generated: {} vertices, {} edges, {} slab bytes in {:.1}s",
            name,
            s.num_vertices,
            s.num_edges,
            s.file_bytes,
            watch.wall_seconds()
        );
        graphs.push((name, path, s));
    }

    // Tracing ON for the measured runs so the artifact rows carry the
    // mem.* gauges (`lens show` renders bytes/edge + peak RSS from
    // them). Wall times include the recording cost — another reason the
    // weak/ rows are skip-gated.
    louvain_obs::set_enabled(true);
    let mut entries: Vec<RunEntry> = Vec::new();
    for (name, path, s) in &graphs {
        assert!(
            s.num_edges >= 1_000_000,
            "{name}: weak-scaling graph must have >=1M edges, got {}",
            s.num_edges
        );
        let slab = Slab::open(path).expect("open scale slab");
        let cfg = et_cfg(true);
        let mut mapped_p2: Option<DistOutcome> = None;
        let mut mapped_p8: Option<DistOutcome> = None;
        for p in [1usize, 2, 8] {
            let watch = louvain_obs::Stopwatch::start();
            let out = run_distributed_resilient_source(
                GraphSource::SlabMapped(&slab),
                p,
                &cfg,
                RunConfig::default(),
                &ResilOptions::none(),
            )
            .expect("mapped scale run");
            eprintln!(
                "{:>14} p={:<2} mapped q={:.4} it={:<3} bytes={:<11} wall={:.2}s",
                name,
                p,
                out.modularity,
                out.total_iterations,
                out.traffic.p2p_bytes + out.traffic.collective_bytes,
                watch.wall_seconds()
            );
            let meta =
                ReportMeta::new(*name, s.num_vertices, s.num_edges).variant("ET(0.25)+delta+mmap");
            entries.push(RunEntry {
                label: format!("weak/{name}/p{p}/mapped"),
                report: build_run_report(&out, &meta),
                telemetry: Vec::new(),
            });
            match p {
                2 => mapped_p2 = Some(out),
                8 => mapped_p8 = Some(out),
                _ => {}
            }
        }

        // Per-rank byte-range loading must reproduce the shared mapping
        // bit for bit — same assignment, same modularity bits.
        let ranged = run_distributed_resilient_source(
            GraphSource::SlabRanged(path),
            2,
            &cfg,
            RunConfig::default(),
            &ResilOptions::none(),
        )
        .expect("ranged scale run");
        let m2 = mapped_p2.as_ref().unwrap();
        assert_eq!(
            m2.assignment, ranged.assignment,
            "{name}: ranged p=2 assignment diverged from mapped"
        );
        assert_eq!(
            m2.modularity.to_bits(),
            ranged.modularity.to_bits(),
            "{name}: ranged p=2 modularity diverged from mapped"
        );
        eprintln!("{:>14} p=2  ranged bit-identical to mapped", name);
        let meta =
            ReportMeta::new(*name, s.num_vertices, s.num_edges).variant("ET(0.25)+delta+ranged");
        entries.push(RunEntry {
            label: format!("weak/{name}/p2/ranged"),
            report: build_run_report(&ranged, &meta),
            telemetry: Vec::new(),
        });

        // Modeled 64→4096-rank α-β curve off the measured p=8 point.
        let out8 = mapped_p8.unwrap();
        let comm_bytes8: u64 = [
            CommStep::GhostRefresh,
            CommStep::CommunityPull,
            CommStep::DeltaPush,
            CommStep::Reduction,
        ]
        .iter()
        .map(|step| out8.traffic.step_bytes_for(*step))
        .sum();
        // Calibrate the 1D-cut constant: bytes(p) = C·(1 − 1/p).
        let cut_c = comm_bytes8 as f64 / (1.0 - 1.0 / 8.0);
        let (compute8, _, _, _) = out8.modeled_breakdown();
        let supersteps = out8.total_iterations as f64;
        let m = CostModel::aries();
        let mut t64 = f64::NAN;
        for pm in [64usize, 128, 256, 512, 1024, 2048, 4096] {
            let bytes_total = cut_c * (1.0 - 1.0 / pm as f64);
            let comm_s = supersteps * m.alpha * (pm - 1) as f64 + m.beta * bytes_total / pm as f64;
            let compute_s = compute8 * 8.0 / pm as f64;
            let total = compute_s + comm_s;
            if pm == 64 {
                t64 = total;
            }
            eprintln!(
                "{:>14} P={:<5} modeled total={:.4}s (compute={:.4} comm={:.4}) speedup_vs_64={:.2}x",
                name,
                pm,
                total,
                compute_s,
                comm_s,
                t64 / total
            );
            entries.push(RunEntry {
                label: format!("model/{name}/p{pm}"),
                report: RunReport {
                    graph: name.to_string(),
                    vertices: s.num_vertices,
                    edges: s.num_edges,
                    ranks: pm,
                    variant: "modeled(aries alpha-beta)".into(),
                    modularity: out8.modularity,
                    iterations: out8.total_iterations as u64,
                    wall_seconds: total,
                    total_bytes: bytes_total as u64,
                    ..Default::default()
                },
                telemetry: Vec::new(),
            });
        }
    }
    louvain_obs::set_enabled(false);

    let artifact = RunArtifact {
        name: "BENCH_PR8".into(),
        description: "million-edge weak scaling over the out-of-core slab path: two >=1M-edge \
                      graphs stream-generated to disk slabs (bounded-memory external sort), run \
                      mmap-backed at p{1,2,8} with the p=2 per-rank byte-range load asserted \
                      bit-identical in-bench, plus 64->4096-rank alpha-beta curves modeled with \
                      the Aries constants off the measured p=8 byte counters (paper Fig. 4 / \
                      Table V shape). Rows labeled weak/ are measured (machine-local wall times \
                      - gate with --skip-label weak/); rows labeled model/ derive from \
                      deterministic counters and gate exactly"
            .into(),
        runs: entries,
    };
    std::fs::write(out_path, artifact.to_json_string()).expect("write scale artifact");
    eprintln!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(scale_path) = flag(&args, "--scale-out")
        .or_else(|| std::env::var("BENCH_SMOKE_SCALE").ok())
        .filter(|p| !p.is_empty())
    {
        // The scale sweep is its own pass: minutes of >=1M-edge runs
        // that CI only pays for behind the LOUVAIN_SCALE_GATE toggle.
        scale_section(&scale_path);
        return;
    }
    let out_path = flag(&args, "--out")
        .or_else(|| std::env::var("BENCH_SMOKE_OUT").ok())
        .or_else(|| args.first().filter(|a| !a.starts_with("--")).cloned())
        .unwrap_or_else(|| "BENCH_PR3.json".into());
    let report_path =
        flag(&args, "--report-out").or_else(|| std::env::var("BENCH_SMOKE_REPORT").ok());
    let watchdog_path = flag(&args, "--watchdog-out")
        .or_else(|| std::env::var("BENCH_SMOKE_WATCHDOG").ok())
        .unwrap_or_else(|| "BENCH_PR4.json".into());
    let artifact_path =
        flag(&args, "--artifact-out").or_else(|| std::env::var("BENCH_SMOKE_ARTIFACT").ok());
    let trace_path = flag(&args, "--trace-out").or_else(|| std::env::var("BENCH_SMOKE_TRACE").ok());
    let mut threads_axis: Vec<usize> = flag(&args, "--threads")
        .unwrap_or_else(|| "1,2,4".into())
        .split(',')
        .map(|t| t.trim().parse().expect("--threads wants integers"))
        .collect();
    threads_axis.sort_unstable();
    threads_axis.dedup();
    assert!(
        threads_axis.first() == Some(&1),
        "--threads needs a 1-thread reference arm"
    );

    let graphs: Vec<(&'static str, Csr)> = vec![
        ("rmat_s11_ef8", rmat(RmatParams::social(11, 8, 5)).graph),
        (
            "ssca2_4k",
            ssca2(Ssca2Params {
                n: 4_000,
                max_clique_size: 50,
                inter_clique_prob: 0.05,
                seed: 9,
            })
            .graph,
        ),
        ("lfr_3k", lfr(LfrParams::small(3_000, 7)).graph),
    ];

    // The sweep runs with tracing OFF: its wall_ms columns are the
    // perf-regression reference and must not pay recording costs.
    let mut rows: Vec<RunRow> = Vec::new();
    let mut artifact_runs: Vec<RunEntry> = Vec::new();
    for (name, g) in &graphs {
        for ranks in [1usize, 2, 8] {
            for delta in [false, true] {
                let (row, out) = run_mode(name, g, ranks, delta);
                if artifact_path.is_some() {
                    let meta =
                        ReportMeta::new(*name, g.num_vertices() as u64, g.num_edges() as u64)
                            .variant(if delta {
                                "ET(0.25)+delta"
                            } else {
                                "ET(0.25)+full"
                            });
                    artifact_runs.push(RunEntry {
                        label: run_label(name, ranks, row.mode),
                        report: build_run_report(&out, &meta),
                        telemetry: Vec::new(),
                    });
                }
                eprintln!(
                    "{:>14} p={:<2} {:<5} q={:.4} it={:<3} ghost_bytes={:<10} post_first={}",
                    row.graph,
                    row.ranks,
                    row.mode,
                    row.modularity,
                    row.iterations,
                    row.ghost_refresh_bytes,
                    row.ghost_refresh_bytes_post_first,
                );
                rows.push(row);
            }
        }
    }

    // Intra-rank thread scaling under the colored deterministic sweep:
    // per graph at p∈{1,2}, one run per thread count on the axis, all
    // with ET(0.25)+delta+Colored. The colored schedule is engineered to
    // be thread-count invariant, so the runs must agree bit for bit; the
    // speedup is asserted on the modeled phase-1 sweep seconds (the
    // critical path: max over ranks of the first phase's thread-adjusted
    // compute time), which is deterministic — the recorded wall time is
    // informational on a single-core host. Tracing stays off.
    let t_max = *threads_axis.iter().max().unwrap();
    let mut threads_rows = String::new();
    let mut first_threads_row = true;
    for p in [1usize, 2] {
        let mut wins = 0usize;
        for (name, g) in &graphs {
            let mut reference: Option<(&Vec<u64>, f64)> = None;
            let mut sweep_t1 = f64::NAN;
            let mut outs: Vec<(usize, DistOutcome, u128)> = Vec::new();
            for &t in &threads_axis {
                let cfg = DistConfig {
                    delta_ghost_refresh: true,
                    sweep: SweepMode::Colored,
                    threads_per_rank: t,
                    ..DistConfig::with_variant(Variant::Et { alpha: 0.25 })
                };
                let watch = louvain_obs::Stopwatch::start();
                let out = run_distributed(g, p, &cfg);
                let wall_ms = (watch.wall_seconds() * 1e3) as u128;
                outs.push((t, out, wall_ms));
            }
            for (t, out, wall_ms) in &outs {
                // Modeled phase-1 sweep critical path across ranks.
                let sweep_seconds = out
                    .per_rank_stats
                    .iter()
                    .map(|phases| phases[0].compute_seconds())
                    .fold(0.0f64, f64::max);
                match &reference {
                    None => {
                        reference = Some((&out.assignment, out.modularity));
                        sweep_t1 = sweep_seconds;
                    }
                    Some((a, q)) => {
                        assert_eq!(
                            *a, &out.assignment,
                            "{name} p={p}: t={t} changed the assignment"
                        );
                        assert_eq!(
                            q.to_bits(),
                            out.modularity.to_bits(),
                            "{name} p={p}: t={t} changed the modularity"
                        );
                    }
                }
                let speedup = sweep_t1 / sweep_seconds;
                if *t == t_max && speedup >= 1.5 {
                    wins += 1;
                }
                eprintln!(
                    "{:>14} p={:<2} t={:<2} colored q={:.4} sweep_modeled={:.4}s speedup={:.2}x wall={}ms",
                    name, p, t, out.modularity, sweep_seconds, speedup, wall_ms
                );
                if !first_threads_row {
                    threads_rows.push(',');
                }
                first_threads_row = false;
                write!(
                    threads_rows,
                    "\n    {{\"graph\": {:?}, \"ranks\": {}, \"threads\": {}, \"mode\": \"colored\", \"modularity\": {:.6}, \"phases\": {}, \"iterations\": {}, \"sweep_modeled_seconds\": {:.6}, \"sweep_speedup_vs_t1\": {:.3}, \"modeled_total_seconds\": {:.6}, \"wall_ms\": {}, \"bit_identical\": true}}",
                    name,
                    p,
                    t,
                    out.modularity,
                    out.phases,
                    out.total_iterations,
                    sweep_seconds,
                    speedup,
                    out.modeled_seconds,
                    wall_ms,
                )
                .unwrap();
                if artifact_path.is_some() {
                    let meta =
                        ReportMeta::new(*name, g.num_vertices() as u64, g.num_edges() as u64)
                            .variant("ET(0.25)+delta+colored")
                            .threads_per_rank(*t);
                    artifact_runs.push(RunEntry {
                        label: run_label(name, p, &format!("t{t}/colored")),
                        report: build_run_report(out, &meta),
                        telemetry: Vec::new(),
                    });
                }
            }
        }
        assert!(
            wins >= 2,
            "p={p}: modeled phase-1 sweep win at t={t_max} vs t=1 reached 1.5x on only {wins} of {} graphs",
            graphs.len()
        );
    }

    // Dedicated traced runs for the reports — one per graph at the
    // largest rank count with the delta refresh (the paper's
    // configuration) — separate from the sweep so tracing overhead
    // never leaks into the bench rows.
    let mut reports: Vec<String> = Vec::new();
    if report_path.is_some() {
        louvain_obs::set_enabled(true);
        for (name, g) in &graphs {
            let (_row, out) = run_mode(name, g, 8, true);
            let meta = ReportMeta::new(*name, g.num_vertices() as u64, g.num_edges() as u64)
                .variant("ET(0.25)+delta");
            reports.push(build_run_report(&out, &meta).to_json_string());
        }
        louvain_obs::set_enabled(false);
    }

    // Artifact telemetry runs: one traced p=2 delta run per graph, kept
    // separate from the sweep (so tracing overhead never leaks into the
    // wall_ms columns) and labeled `<graph>/p2/delta+traced` to avoid
    // colliding with the untraced sweep entry of the same shape. The
    // traced entries carry the causal sections (phase_profile, messages)
    // that `lens crit` consumes; `--trace-out` dumps the first one as a
    // Chrome/Perfetto trace.
    let mut trace_written = false;
    if artifact_path.is_some() || trace_path.is_some() {
        louvain_obs::set_enabled(true);
        for (name, g) in &graphs {
            let (_row, out) = run_mode(name, g, 2, true);
            let telemetry = out
                .trace
                .as_ref()
                .map(|t| t.merged_telemetry())
                .unwrap_or_default();
            if let (Some(path), Some(trace)) = (trace_path.as_ref(), out.trace.as_ref()) {
                if !trace_written {
                    std::fs::write(path, louvain_obs::chrome_trace_json(trace))
                        .expect("write chrome trace");
                    eprintln!("wrote {path}");
                    trace_written = true;
                }
            }
            let meta = ReportMeta::new(*name, g.num_vertices() as u64, g.num_edges() as u64)
                .variant("ET(0.25)+delta");
            artifact_runs.push(RunEntry {
                label: run_label(name, 2, "delta+traced"),
                report: build_run_report(&out, &meta),
                telemetry,
            });
        }
        louvain_obs::set_enabled(false);
    }

    // Checkpoint overhead: per graph at p=2 with the delta refresh, run
    // once with phase-boundary checkpointing on and once off. The results
    // must be bit-identical; the row records the wall-time delta, the
    // bytes landed in the checkpoint directory, and the Checkpoint-step
    // gather traffic. Tracing stays off, like the main sweep.
    let mut ckpt_rows = String::new();
    let ckpt_base = std::env::temp_dir().join(format!("louvain-bench-ckpt-{}", std::process::id()));
    for (i, (name, g)) in graphs.iter().enumerate() {
        let cfg = et_cfg(true);
        let ranks = 2usize;
        let watch = louvain_obs::Stopwatch::start();
        let off =
            run_distributed_resilient(g, ranks, &cfg, RunConfig::default(), &ResilOptions::none())
                .expect("checkpoint-off run");
        let off_ms = (watch.wall_seconds() * 1e3) as u128;

        let dir = ckpt_base.join(*name);
        let _ = std::fs::remove_dir_all(&dir);
        let resil = ResilOptions {
            checkpoint: Some(CheckpointOptions::new(dir.clone())),
            ..ResilOptions::none()
        };
        let watch = louvain_obs::Stopwatch::start();
        let on = run_distributed_resilient(g, ranks, &cfg, RunConfig::default(), &resil)
            .expect("checkpoint-on run");
        let on_ms = (watch.wall_seconds() * 1e3) as u128;

        assert_eq!(
            off.modularity.to_bits(),
            on.modularity.to_bits(),
            "{name}: checkpointing changed the result"
        );
        let ckpt_dir_bytes = dir_bytes(&dir);
        let ckpt_step_bytes = on.traffic.step_bytes_for(CommStep::Checkpoint);
        eprintln!(
            "{:>14} p={} checkpoint off={}ms on={}ms dir_bytes={} step_bytes={}",
            name, ranks, off_ms, on_ms, ckpt_dir_bytes, ckpt_step_bytes
        );
        if i > 0 {
            ckpt_rows.push(',');
        }
        write!(
            ckpt_rows,
            "\n    {{\"graph\": {:?}, \"ranks\": {}, \"mode\": \"delta\", \"modularity\": {:.6}, \"phases\": {}, \"wall_ms_off\": {}, \"wall_ms_on\": {}, \"checkpoint_dir_bytes\": {}, \"checkpoint_step_bytes\": {}, \"bit_identical\": true}}",
            name, ranks, on.modularity, on.phases, off_ms, on_ms, ckpt_dir_bytes, ckpt_step_bytes,
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ckpt_base);

    // Watchdog overhead: per graph at p=4 with the delta refresh, a
    // fault-free run with the rank-health watchdog ladder on
    // (deadline-aware waits, heartbeats, retry/backoff machinery armed)
    // vs off (the legacy single hard deadline). Results must be
    // bit-identical and a healthy run must record zero watchdog events;
    // the wall-time delta is the ladder's bookkeeping cost. Best of
    // three reps per arm to keep scheduler noise out of the delta.
    let mut wd_rows = String::new();
    for (i, (name, g)) in graphs.iter().enumerate() {
        let cfg = et_cfg(true);
        let ranks = 4usize;
        let time_arm = |health: HealthConfig| {
            let mut best_ms = u128::MAX;
            let mut last = None;
            for _ in 0..3 {
                let run_cfg = RunConfig {
                    health: health.clone(),
                    ..RunConfig::default()
                };
                let watch = louvain_obs::Stopwatch::start();
                let out = run_distributed_resilient(g, ranks, &cfg, run_cfg, &ResilOptions::none())
                    .expect("fault-free watchdog run");
                best_ms = best_ms.min((watch.wall_seconds() * 1e3) as u128);
                last = Some(out);
            }
            (last.unwrap(), best_ms)
        };
        let (off, off_ms) = time_arm(HealthConfig::disabled());
        let (on, on_ms) = time_arm(HealthConfig::default());
        assert_eq!(
            off.modularity.to_bits(),
            on.modularity.to_bits(),
            "{name}: the watchdog changed the result"
        );
        let t = &on.traffic;
        assert_eq!(
            (t.wd_timeouts, t.wd_retries, t.wd_stragglers),
            (0, 0, 0),
            "{name}: a healthy run must not trip the watchdog"
        );
        eprintln!(
            "{:>14} p={} watchdog off={}ms on={}ms (timeouts={} retries={} stragglers={})",
            name, ranks, off_ms, on_ms, t.wd_timeouts, t.wd_retries, t.wd_stragglers
        );
        if i > 0 {
            wd_rows.push(',');
        }
        write!(
            wd_rows,
            "\n    {{\"graph\": {:?}, \"n\": {}, \"m\": {}, \"ranks\": {}, \"mode\": \"delta\", \"modularity\": {:.6}, \"phases\": {}, \"wall_ms_watchdog_off\": {}, \"wall_ms_watchdog_on\": {}, \"wd_timeouts\": {}, \"wd_retries\": {}, \"wd_stragglers\": {}, \"checksum_rejects\": {}, \"bit_identical\": true}}",
            name,
            g.num_vertices(),
            g.num_edges(),
            ranks,
            on.modularity,
            on.phases,
            off_ms,
            on_ms,
            t.wd_timeouts,
            t.wd_retries,
            t.wd_stragglers,
            t.checksum_rejects,
        )
        .unwrap();
    }
    let wd_json = format!(
        "{{\n  \"bench\": \"BENCH_PR4\",\n  \"description\": \"rank-health watchdog on/off A-B: fault-free ET(0.25)+delta at p=4, heartbeat/deadline ladder armed vs legacy hard deadline; results bit-identical, zero watchdog events, wall-time delta is the bookkeeping overhead (best of 3)\",\n  \"watchdog\": [{wd_rows}\n  ]\n}}\n"
    );
    std::fs::write(&watchdog_path, wd_json).expect("write watchdog bench json");
    eprintln!("wrote {watchdog_path}");

    // Summary: full/delta ghost-byte ratios per (graph, ranks) pair.
    let mut summary = String::new();
    let mut first = true;
    for (name, _) in &graphs {
        for ranks in [2usize, 8] {
            let find = |mode: &str| {
                rows.iter()
                    .find(|r| r.graph == *name && r.ranks == ranks && r.mode == mode)
                    .unwrap()
            };
            let full = find("full");
            let delta = find("delta");
            let ratio = |a: u64, b: u64| {
                if b == 0 {
                    f64::NAN
                } else {
                    a as f64 / b as f64
                }
            };
            if !first {
                summary.push(',');
            }
            first = false;
            write!(
                summary,
                "\n    {{\"graph\": {:?}, \"ranks\": {}, \"ghost_bytes_ratio_total\": {:.3}, \"ghost_bytes_ratio_post_first\": {:.3}}}",
                name,
                ranks,
                ratio(full.ghost_refresh_bytes, delta.ghost_refresh_bytes),
                ratio(
                    full.ghost_refresh_bytes_post_first,
                    delta.ghost_refresh_bytes_post_first
                ),
            )
            .unwrap();
        }
    }

    let mut runs = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            runs.push(',');
        }
        write!(
            runs,
            "\n    {{\"graph\": {:?}, \"n\": {}, \"m\": {}, \"ranks\": {}, \"variant\": \"ET(0.25)\", \"mode\": {:?}, \"modularity\": {:.6}, \"phases\": {}, \"iterations\": {}, \"modeled_comm_seconds\": {:.6}, \"modeled_total_seconds\": {:.6}, \"ghost_refresh_bytes\": {}, \"ghost_refresh_bytes_post_first\": {}, \"community_pull_bytes\": {}, \"delta_push_bytes\": {}, \"reduction_bytes\": {}, \"modeled_compute_seconds\": {:.6}, \"modeled_reduce_seconds\": {:.6}, \"modeled_rebuild_seconds\": {:.6}, \"comm_fraction\": {:.4}, \"wall_ms\": {}}}",
            r.graph,
            r.n,
            r.m,
            r.ranks,
            r.mode,
            r.modularity,
            r.phases,
            r.iterations,
            r.modeled_comm_seconds,
            r.modeled_total_seconds,
            r.ghost_refresh_bytes,
            r.ghost_refresh_bytes_post_first,
            r.community_pull_bytes,
            r.delta_push_bytes,
            r.reduction_bytes,
            r.modeled_compute_seconds,
            r.modeled_reduce_seconds,
            r.modeled_rebuild_seconds,
            r.comm_fraction,
            r.wall_ms,
        )
        .unwrap();
    }

    let json = format!(
        "{{\n  \"bench\": \"BENCH_PR3\",\n  \"description\": \"fixed-seed smoke sweep: ET(0.25), full vs delta ghost refresh; checkpoint-on vs checkpoint-off overhead at p=2; colored-sweep thread scaling at p in {{1,2}}\",\n  \"runs\": [{runs}\n  ],\n  \"threads\": [{threads_rows}\n  ],\n  \"checkpoint\": [{ckpt_rows}\n  ],\n  \"summary\": [{summary}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write bench json");
    eprintln!("wrote {out_path}");

    if let Some(path) = artifact_path {
        let artifact = RunArtifact {
            name: "BENCH_PR7".into(),
            description: "fixed-seed bench sweep as a unified run artifact: ET(0.25) full vs \
                          delta ghost refresh over {rmat_s11_ef8, ssca2_4k, lfr_3k} x p{1,2,8}, \
                          the colored-sweep thread-scaling axis t{1,2,4} at p{1,2} (bit-identical \
                          across threads, modeled phase-1 sweep win asserted in-bench), plus one \
                          traced p=2 delta run per graph with per-iteration convergence \
                          telemetry and the causal profiling sections (per-(rank,phase) wall \
                          attribution, Lamport-matched message edges, memory gauges) that `lens \
                          crit` analyzes; byte counters and modularity are deterministic, wall \
                          times are machine-local (gate with a generous --wall-tol)"
                .into(),
            runs: artifact_runs,
        };
        std::fs::write(&path, artifact.to_json_string()).expect("write run artifact");
        eprintln!("wrote {path}");
    }

    if let Some(path) = report_path {
        // The paper's §V-A HPCToolkit breakdown attributes roughly 22% of
        // time to compute, 34% to point-to-point communication and 40% to
        // the modularity reductions; each report's `modeled` section
        // carries our fractions for the same buckets.
        let mut body = String::new();
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                body.push_str(",\n");
            }
            // Indent the pretty-printed report two levels.
            for (j, line) in r.lines().enumerate() {
                if j > 0 {
                    body.push('\n');
                }
                body.push_str("    ");
                body.push_str(line);
            }
        }
        let doc = format!(
            "{{\n  \"bench\": \"RUNREPORT_PR2\",\n  \"description\": \"aggregated run reports: ET(0.25) + delta refresh on 8 ranks; compare modeled compute/comm/reduce fractions with the paper's ~22/34/40 split (IPDPS 2018, Sec. V-A)\",\n  \"paper_fractions\": {{\"compute\": 0.22, \"comm\": 0.34, \"reduce\": 0.40}},\n  \"reports\": [\n{body}\n  ]\n}}\n"
        );
        std::fs::write(&path, doc).expect("write run reports");
        eprintln!("wrote {path}");
    }
}
