//! Table I — preliminary evaluation of the adaptive early-termination
//! heuristic in the *multithreaded* (Grappolo-style) implementation:
//! α swept from 1.0 down to 0.0 on the CNR and Channel inputs, reporting
//! modularity, runtime, and total iterations.
//!
//! Expected shape (paper): runtime drops as α→1 with negligible
//! modularity loss; the effect is much stronger on the banded Channel
//! input (58× in the paper) than on the small-world CNR (2×).

use std::time::Instant;

use grappolo::{GrappoloConfig, ParallelLouvain};
use louvain_bench::datasets::{table1_datasets, Scale};
use louvain_bench::Table;

fn main() {
    let scale = Scale::from_env();
    let alphas = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0];

    let mut table = Table::new(
        "Table I: early-termination α sweep, multithreaded implementation",
        &["input", "alpha", "modularity", "time_s", "iterations"],
    );

    for ds in table1_datasets() {
        let gen = ds.generate(scale);
        eprintln!(
            "# {}: |V|={} |E|={} (paper: {} vertices)",
            ds.name,
            gen.graph.num_vertices(),
            gen.graph.num_edges(),
            ds.paper_vertices
        );
        for &alpha in &alphas {
            let cfg = if alpha > 0.0 {
                GrappoloConfig::with_et(alpha)
            } else {
                GrappoloConfig::default()
            };
            let start = Instant::now();
            let result = ParallelLouvain::new(cfg).run(&gen.graph);
            let secs = start.elapsed().as_secs_f64();
            table.add_row(vec![
                ds.name.to_string(),
                format!("{alpha:.1}"),
                format!("{:.5}", result.modularity),
                format!("{secs:.3}"),
                result.total_iterations.to_string(),
            ]);
        }
    }

    table.print();
    let path = table.write_tsv_named("table1_et_sweep").unwrap();
    println!("wrote {}", path.display());
}
