//! Figure 3 — strong scaling of the distributed Louvain implementation:
//! execution time for every Table II graph over a sweep of process
//! counts, for all six variants (Baseline, Threshold Cycling,
//! ET/ETC × α∈{0.25, 0.75}).
//!
//! Times are the modeled job times (α-β communication + work-counter
//! compute on the critical path); the paper's wall times on Cori cannot
//! be reproduced on a laptop, but the *shape* — which variant wins, where
//! scaling flattens — can. Run with
//! `cargo run --release -p louvain-bench --bin fig3 [graph ...]` to
//! restrict the graph set, and `LOUVAIN_SCALE=quick` for a fast pass.

use louvain_bench::datasets::{registry, Scale};
use louvain_bench::{harness, Table};
use louvain_dist::DistConfig;

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let datasets: Vec<_> = if args.is_empty() {
        registry()
    } else {
        registry()
            .into_iter()
            .filter(|d| args.iter().any(|a| a.eq_ignore_ascii_case(d.name)))
            .collect()
    };
    let ranks = match scale {
        Scale::Quick => vec![1usize, 2, 4, 8],
        _ => vec![1usize, 2, 4, 8, 16, 32, 64],
    };
    let variants = DistConfig::paper_variants();

    let mut tsv =
        String::from("graph\tvariant\tranks\tmodeled_s\twall_s\tmodularity\tphases\titerations\n");
    for ds in &datasets {
        let gen = ds.generate(scale);
        let mut table = Table::new(
            format!(
                "Fig 3: strong scaling, {} (|V|={}, |E|={})",
                ds.name,
                gen.graph.num_vertices(),
                gen.graph.num_edges()
            ),
            &[
                "variant",
                "ranks",
                "modeled_s",
                "modularity",
                "phases",
                "iters",
            ],
        );
        for &variant in &variants {
            for &p in &ranks {
                let r = harness::run_dist_once(ds.name, &gen.graph, p, variant);
                table.add_row(vec![
                    r.variant.clone(),
                    p.to_string(),
                    format!("{:.4}", r.modeled_seconds),
                    format!("{:.4}", r.modularity),
                    r.phases.to_string(),
                    r.iterations.to_string(),
                ]);
                tsv.push_str(&format!(
                    "{}\t{}\t{}\t{:.6}\t{:.6}\t{:.6}\t{}\t{}\n",
                    r.graph,
                    r.variant,
                    r.ranks,
                    r.modeled_seconds,
                    r.wall_seconds,
                    r.modularity,
                    r.phases,
                    r.iterations
                ));
            }
            eprintln!("# {} / {} done", ds.name, variant.label());
        }
        table.print();
    }

    let path = louvain_bench::write_tsv("fig3_strong_scaling", &tsv).unwrap();
    println!("wrote {}", path.display());
}
