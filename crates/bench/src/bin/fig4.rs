//! Figure 4 — weak scaling of the Baseline distributed implementation on
//! SSCA#2 graphs: with work per rank fixed, execution time should stay
//! nearly constant as graphs and rank counts grow together.

use louvain_bench::datasets::Scale;
use louvain_bench::{harness, Table};
use louvain_dist::Variant;
use louvain_graph::gen::{ssca2, Ssca2Params};

fn main() {
    let scale = Scale::from_env();
    let base: u64 = match scale {
        Scale::Quick => 2_000,
        Scale::Default => 6_000,
        Scale::Full => 24_000,
    };

    let mut table = Table::new(
        "Fig 4: weak scaling (Baseline), SSCA#2, fixed work per rank",
        &[
            "ranks",
            "vertices",
            "modeled_s",
            "modularity",
            "flatness_vs_p1",
        ],
    );

    let mut first_time = None;
    let mut tsv = String::from("ranks\tvertices\tmodeled_s\tmodularity\n");
    for (i, p) in [1usize, 2, 4, 8, 16].into_iter().enumerate() {
        let n = base * p as u64;
        let gen = ssca2(Ssca2Params {
            n,
            max_clique_size: 25,
            inter_clique_prob: 0.02,
            seed: 600 + i as u64,
        });
        let r = harness::run_dist_once("ssca2", &gen.graph, p, Variant::Baseline);
        let t1 = *first_time.get_or_insert(r.modeled_seconds);
        table.add_row(vec![
            p.to_string(),
            n.to_string(),
            format!("{:.4}", r.modeled_seconds),
            format!("{:.6}", r.modularity),
            format!("{:.2}x", r.modeled_seconds / t1),
        ]);
        tsv.push_str(&format!(
            "{p}\t{n}\t{:.6}\t{:.6}\n",
            r.modeled_seconds, r.modularity
        ));
        eprintln!("# ranks={p} done");
    }

    table.print();
    let path = louvain_bench::write_tsv("fig4_weak_scaling", &tsv).unwrap();
    println!("wrote {}", path.display());
}
