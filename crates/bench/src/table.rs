//! Console table formatting and TSV export for experiment output.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as TSV under `target/experiments/<name>.tsv`.
    pub fn write_tsv_named(&self, name: &str) -> io::Result<PathBuf> {
        let mut content = String::new();
        let _ = writeln!(content, "{}", self.headers.join("\t"));
        for row in &self.rows {
            let _ = writeln!(content, "{}", row.join("\t"));
        }
        write_tsv(name, &content)
    }
}

/// Write raw TSV content under `target/experiments/<name>.tsv` and return
/// the path.
pub fn write_tsv(name: &str, content: &str) -> io::Result<PathBuf> {
    let dir = experiments_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.tsv"));
    std::fs::write(&path, content)?;
    Ok(path)
}

/// `target/experiments` relative to the workspace root (falls back to the
/// current directory's `target/`).
pub fn experiments_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(base).join("experiments")
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["long-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("long-name"));
        let lines: Vec<&str> = r.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new("T", &["x", "y"]);
        t.add_row(vec!["1".into(), "2".into()]);
        let path = t.write_tsv_named("unit-test-table").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "x\ty\n1\t2\n");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(1.5), "1.50");
        assert_eq!(fmt_secs(0.0123), "12.30ms");
        assert_eq!(fmt_secs(1.5e-5), "15.0us");
    }
}
