//! # louvain-bench — experiment harness
//!
//! Regenerates every table and figure of the IPDPS 2018 distributed
//! Louvain paper (see DESIGN.md §5 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results). One binary per
//! table/figure:
//!
//! ```text
//! cargo run --release -p louvain-bench --bin table1   # ET α sweep (shared memory)
//! cargo run --release -p louvain-bench --bin table2   # test graph inventory
//! cargo run --release -p louvain-bench --bin table3   # dist vs shared, single node
//! cargo run --release -p louvain-bench --bin fig3     # strong scaling, all variants
//! cargo run --release -p louvain-bench --bin table4   # best speedups (from fig3 sweep)
//! cargo run --release -p louvain-bench --bin table5   # SSCA#2 weak-scaling inventory
//! cargo run --release -p louvain-bench --bin fig4     # weak scaling runtime
//! cargo run --release -p louvain-bench --bin fig5     # nlpkkt convergence
//! cargo run --release -p louvain-bench --bin fig6     # web-cc12 convergence
//! cargo run --release -p louvain-bench --bin table6   # ET + threshold cycling
//! cargo run --release -p louvain-bench --bin table7   # LFR ground-truth quality
//! cargo run --release -p louvain-bench --bin fig2     # threshold cycling schedule
//! cargo run --release -p louvain-bench --bin breakdown # HPCToolkit-style time split
//! ```
//!
//! Every binary prints the paper's rows and writes a TSV under
//! `target/experiments/`. Set `LOUVAIN_SCALE=quick|default|full` to trade
//! runtime for fidelity.

pub mod datasets;
pub mod harness;
pub mod table;

pub use datasets::{dataset_by_name, registry, Dataset, GraphClass, Scale};
pub use harness::{run_dist_once, run_shared_once, RunRecord};
pub use table::{write_tsv, Table};
