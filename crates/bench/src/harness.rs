//! Single-run helpers shared by all experiment binaries.

use grappolo::{GrappoloConfig, ParallelLouvain};
use louvain_dist::{run_distributed, DistConfig, DistOutcome, Variant};
use louvain_graph::Csr;

/// One experiment run, flattened for table output.
#[derive(Debug, Clone)]
pub struct RunRecord {
    pub graph: String,
    pub variant: String,
    pub ranks: usize,
    pub wall_seconds: f64,
    /// Modeled job time (critical path through the α-β cost model plus
    /// work-counter compute; the number comparable across rank counts).
    pub modeled_seconds: f64,
    pub modularity: f64,
    pub phases: usize,
    pub iterations: usize,
}

/// Run the distributed algorithm once and flatten the outcome.
pub fn run_dist_once(graph_name: &str, g: &Csr, ranks: usize, variant: Variant) -> RunRecord {
    let cfg = DistConfig::with_variant(variant);
    let out = run_distributed(g, ranks, &cfg);
    record_from(graph_name, variant.label(), ranks, &out)
}

/// Same, with an explicit config (custom τ etc.).
pub fn run_dist_cfg(graph_name: &str, g: &Csr, ranks: usize, cfg: &DistConfig) -> RunRecord {
    let out = run_distributed(g, ranks, cfg);
    record_from(graph_name, cfg.variant.label(), ranks, &out)
}

fn record_from(graph: &str, variant: String, ranks: usize, out: &DistOutcome) -> RunRecord {
    RunRecord {
        graph: graph.to_string(),
        variant,
        ranks,
        wall_seconds: out.wall.as_secs_f64(),
        modeled_seconds: out.modeled_seconds,
        modularity: out.modularity,
        phases: out.phases,
        iterations: out.total_iterations,
    }
}

/// Run the shared-memory (Grappolo) baseline once.
pub fn run_shared_once(graph_name: &str, g: &Csr, cfg: &GrappoloConfig) -> RunRecord {
    let watch = louvain_obs::Stopwatch::start();
    let result = ParallelLouvain::new(*cfg).run(g);
    let wall = watch.wall_seconds();
    RunRecord {
        graph: graph_name.to_string(),
        variant: format!("grappolo({}t)", cfg.threads),
        ranks: 1,
        wall_seconds: wall,
        modeled_seconds: wall,
        modularity: result.modularity,
        phases: result.phases,
        iterations: result.total_iterations,
    }
}

/// Access the full distributed outcome when the record is not enough
/// (convergence traces, breakdowns).
pub fn run_dist_full(g: &Csr, ranks: usize, cfg: &DistConfig) -> DistOutcome {
    run_distributed(g, ranks, cfg)
}

/// Shared driver for the Fig 5 / Fig 6 convergence studies: run Baseline
/// and the four ET/ETC variants on the named dataset, print per-phase
/// modularity and iteration traces, and write a TSV.
pub fn convergence_figure(graph: &str, figure: &str) {
    use crate::datasets::{dataset_by_name, Scale};
    use crate::Table;

    let scale = Scale::from_env();
    let ranks = match scale {
        Scale::Quick => 4,
        _ => 8,
    };
    let ds = dataset_by_name(graph).unwrap_or_else(|| panic!("unknown dataset {graph}"));
    let gen = ds.generate(scale);
    eprintln!(
        "# {graph}: |V|={} |E|={} on {ranks} ranks",
        gen.graph.num_vertices(),
        gen.graph.num_edges()
    );

    let variants = [
        Variant::Baseline,
        Variant::Et { alpha: 0.25 },
        Variant::Et { alpha: 0.75 },
        Variant::Etc { alpha: 0.25 },
        Variant::Etc { alpha: 0.75 },
    ];

    let mut tsv = String::from("variant\tphase\tmodularity\titerations\tcumulative_iterations\n");
    let mut summary = Table::new(
        format!("{figure}: convergence of {graph} on {ranks} ranks"),
        &["variant", "phases", "total_iters", "final_Q"],
    );
    for variant in variants {
        let out = run_dist_full(&gen.graph, ranks, &DistConfig::with_variant(variant));
        let mut cumulative = 0usize;
        let mut table = Table::new(
            format!("{figure}: {} per-phase trace", variant.label()),
            &["phase", "modularity", "iterations", "cumulative_iters"],
        );
        for (phase, stats) in out.per_rank_stats[0].iter().enumerate() {
            cumulative += stats.iterations;
            table.add_row(vec![
                phase.to_string(),
                format!("{:.4}", stats.modularity),
                stats.iterations.to_string(),
                cumulative.to_string(),
            ]);
            tsv.push_str(&format!(
                "{}\t{}\t{:.6}\t{}\t{}\n",
                variant.label(),
                phase,
                stats.modularity,
                stats.iterations,
                cumulative
            ));
        }
        table.print();
        summary.add_row(vec![
            variant.label(),
            out.phases.to_string(),
            out.total_iterations.to_string(),
            format!("{:.4}", out.modularity),
        ]);
        eprintln!("# {} done", variant.label());
    }

    summary.print();
    let path = crate::write_tsv(&format!("{figure}_convergence_{graph}"), &tsv).unwrap();
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_graph::gen::{lfr, LfrParams};

    #[test]
    fn dist_record_is_populated() {
        let g = lfr(LfrParams::small(600, 3)).graph;
        let r = run_dist_once("test", &g, 2, Variant::Baseline);
        assert_eq!(r.graph, "test");
        assert_eq!(r.variant, "Baseline");
        assert_eq!(r.ranks, 2);
        assert!(r.modularity > 0.4);
        assert!(r.modeled_seconds > 0.0);
        assert!(r.phases >= 1 && r.iterations >= 1);
    }

    #[test]
    fn shared_record_is_populated() {
        let g = lfr(LfrParams::small(600, 4)).graph;
        let r = run_shared_once("test", &g, &GrappoloConfig::default());
        assert!(r.modularity > 0.4);
        assert!(r.wall_seconds > 0.0);
    }
}
