//! Ghost-vertex discovery and refresh (Algorithm 4).
//!
//! Once per phase, every rank scans its edge lists for destinations owned
//! elsewhere, sends each owner the list of vertices it needs ("ghosts"),
//! and the owner remembers which of its vertices to serve to whom. Every
//! iteration then starts with the owners *pushing* the latest community
//! assignment of those vertices (Algorithm 3 lines 4–5).
//!
//! Three refinements from the paper's discussion are implemented here:
//!
//! * **neighborhood refresh** ([`GhostLayer::refresh_neighborhood`]) —
//!   the ghost topology is fixed for the whole phase and symmetric, so the
//!   exchange can use an MPI-3-style neighborhood collective whose
//!   per-message cost scales with the topology degree instead of `p−1`;
//! * **delta refresh** ([`GhostLayer::refresh_delta`]) — after the first
//!   iterations most vertices stop moving, so owners push `(index, value)`
//!   pairs only for vertices whose community changed since the last
//!   exchange instead of re-sending every ghost value. Ghost slots not
//!   mentioned keep their previous value, which is exactly the owner's
//!   current value — so a delta refresh leaves the ghost array
//!   byte-identical to what a full [`GhostLayer::refresh`] would produce;
//! * **inactive-ghost pruning** ([`GhostLayer::prune`]) — under early
//!   termination, a permanently inactive vertex can never move again, so
//!   its owner announces it and peers stop refreshing that ghost
//!   ("any communication that relates to inactive vertices can be
//!   prevented/preempted by communicating the ghost vertex IDs that have
//!   become inactive", Section IV-B).
//!
//! Refresh rounds run in the per-iteration hot path, so all send/receive
//! buffers cycle through a small pool ([`GhostLayer`] keeps the vectors
//! returned by one collective and reuses their capacity as the next
//! round's send buffers) and per-owner slot offsets are precomputed once
//! at build time.

use std::sync::Mutex;

use louvain_comm::Comm;
use louvain_graph::hash::{fast_map, fast_set, FastMap};
use louvain_graph::{LocalGraph, VertexId};

/// Wire entry of a delta refresh: (position in the receiver's request
/// list for this owner, new value).
pub type DeltaEntry = (u32, VertexId);

/// Grab-and-put vector pool: `take` pops a cleared buffer (or makes a
/// fresh one), `put_back` returns buffers so their capacity is reused.
#[derive(Debug, Default)]
struct BufPool<T> {
    free: Mutex<Vec<Vec<T>>>,
}

impl<T> BufPool<T> {
    fn take(&self) -> Vec<T> {
        let mut buf = self
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf
    }

    fn put_back(&self, bufs: impl IntoIterator<Item = Vec<T>>) {
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        free.extend(bufs);
    }

    /// Bytes held by the pooled buffers (capacities).
    fn pooled_bytes(&self) -> u64 {
        self.free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|b| (b.capacity() * std::mem::size_of::<T>()) as u64)
            .sum()
    }
}

/// Per-phase ghost bookkeeping for one rank.
#[derive(Debug)]
pub struct GhostLayer {
    /// Ghost ids this rank needs, grouped by owner, sorted (fixed order —
    /// the wire format of every refresh).
    requests: Vec<Vec<VertexId>>,
    /// `request_mask[owner][i]` — false once the ghost was pruned
    /// (frozen); its slot keeps the last received value.
    request_mask: Vec<Vec<bool>>,
    /// Global ghost id → slot in the flat ghost value array.
    slot: FastMap<VertexId, usize>,
    /// For each peer rank: the local indices of our vertices it ghosts,
    /// aligned with that peer's request order.
    serve: Vec<Vec<usize>>,
    /// Mirror of the peer's `request_mask` for our serve entries.
    serve_mask: Vec<Vec<bool>>,
    /// Ranks this rank actually exchanges ghosts with (symmetric).
    neighbors: Vec<usize>,
    /// `base[owner]` — slot offset of `requests[owner][0]` in the flat
    /// ghost value array (precomputed; `fill_from` runs per refresh).
    base: Vec<usize>,
    num_ghosts: usize,
    pruned: usize,
    /// Recycled value buffers for full refreshes.
    val_pool: BufPool<VertexId>,
    /// Recycled `(index, value)` buffers for delta refreshes.
    delta_pool: BufPool<DeltaEntry>,
}

impl GhostLayer {
    /// Run Algorithm 4: discover ghosts and exchange request lists.
    /// Collective — every rank must call it.
    pub fn build(comm: &Comm, lg: &LocalGraph) -> Self {
        let p = comm.size();
        let part = lg.partition();
        let mut seen = fast_set::<VertexId>();
        let mut requests: Vec<Vec<VertexId>> = vec![Vec::new(); p];
        for l in 0..lg.num_local() {
            for (u, _) in lg.neighbors(l) {
                if !lg.owns(u) && seen.insert(u) {
                    requests[part.owner_of(u)].push(u);
                }
            }
        }
        for r in requests.iter_mut() {
            r.sort_unstable();
        }
        // Assign slots in (owner, position-in-request) order.
        let mut slot = fast_map::<VertexId, usize>();
        let mut next = 0usize;
        for r in &requests {
            for &g in r {
                slot.insert(g, next);
                next += 1;
            }
        }
        // Tell each owner what we need; learn what others need from us.
        // `all_to_all_v_ref` borrows the request lists (they stay the
        // wire-format reference for every later refresh).
        let received = comm.all_to_all_v_ref(&requests);
        let serve: Vec<Vec<usize>> = received
            .into_iter()
            .map(|ids| ids.into_iter().map(|g| lg.to_local(g)).collect())
            .collect();
        // The ghost relation is symmetric (arcs are stored in both
        // directions), so requests[j] and serve[j] are non-empty together.
        let neighbors: Vec<usize> = (0..p)
            .filter(|&j| j != comm.rank() && (!requests[j].is_empty() || !serve[j].is_empty()))
            .collect();
        let request_mask = requests.iter().map(|r| vec![true; r.len()]).collect();
        let serve_mask = serve.iter().map(|s| vec![true; s.len()]).collect();
        let base: Vec<usize> = requests
            .iter()
            .scan(0usize, |acc, r| {
                let b = *acc;
                *acc += r.len();
                Some(b)
            })
            .collect();
        Self {
            requests,
            request_mask,
            slot,
            serve,
            serve_mask,
            neighbors,
            base,
            num_ghosts: next,
            pruned: 0,
            val_pool: BufPool::default(),
            delta_pool: BufPool::default(),
        }
    }

    /// Number of distinct ghost vertices held by this rank.
    pub fn num_ghosts(&self) -> usize {
        self.num_ghosts
    }

    /// Ghosts whose refresh has been pruned.
    pub fn num_pruned(&self) -> usize {
        self.pruned
    }

    /// Ranks this rank exchanges ghosts with (symmetric topology).
    pub fn neighbor_ranks(&self) -> &[usize] {
        &self.neighbors
    }

    /// Slot of a ghost id in the value array filled by
    /// [`GhostLayer::refresh`].
    #[inline]
    pub fn slot_of(&self, v: VertexId) -> usize {
        self.slot[&v]
    }

    /// Build the per-peer outgoing value buffer for a refresh round
    /// (masked serve entries are skipped), reusing pooled capacity.
    fn serve_buffers(&self, local_vals: &[VertexId], j: usize) -> Vec<VertexId> {
        let mut buf = self.val_pool.take();
        buf.extend(
            self.serve[j]
                .iter()
                .zip(&self.serve_mask[j])
                .filter(|&(_, &alive)| alive)
                .map(|(&l, _)| local_vals[l]),
        );
        buf
    }

    /// Build the per-peer outgoing delta buffer: `(index, value)` pairs
    /// for alive serve entries whose local vertex is marked changed.
    fn delta_buffers(
        &self,
        local_vals: &[VertexId],
        changed: &[bool],
        j: usize,
    ) -> Vec<DeltaEntry> {
        let mut buf = self.delta_pool.take();
        buf.extend(
            self.serve[j]
                .iter()
                .zip(&self.serve_mask[j])
                .enumerate()
                .filter(|&(_, (&l, &alive))| alive && changed[l])
                .map(|(i, (&l, _))| (i as u32, local_vals[l])),
        );
        buf
    }

    /// Scatter one peer's reply into the slot array (masked request
    /// entries keep their last value).
    fn fill_from(&self, out: &mut [VertexId], owner: usize, values: &[VertexId]) {
        let base = self.base[owner];
        let mut vi = 0;
        for (i, &alive) in self.request_mask[owner].iter().enumerate() {
            if alive {
                out[base + i] = values[vi];
                vi += 1;
            }
        }
        debug_assert_eq!(vi, values.len());
    }

    /// Scatter one peer's delta reply: only the mentioned slots change.
    fn fill_from_delta(&self, out: &mut [VertexId], owner: usize, pairs: &[DeltaEntry]) {
        let base = self.base[owner];
        for &(i, v) in pairs {
            debug_assert!(
                self.request_mask[owner][i as usize],
                "delta for a pruned ghost slot"
            );
            out[base + i as usize] = v;
        }
    }

    /// One refresh round over the full communicator: every owner pushes
    /// `local_vals` entries for the vertices each peer ghosts; `out` is
    /// updated in slot order (it must persist across rounds once pruning
    /// is enabled — pruned slots keep their frozen value). Collective.
    pub fn refresh(&self, comm: &Comm, local_vals: &[VertexId], out: &mut Vec<VertexId>) {
        out.resize(self.num_ghosts, 0);
        let sends: Vec<Vec<VertexId>> = (0..comm.size())
            .map(|j| self.serve_buffers(local_vals, j))
            .collect();
        let received = comm.all_to_all_v(sends);
        for (owner, values) in received.iter().enumerate() {
            self.fill_from(out, owner, values);
        }
        self.val_pool.put_back(received);
    }

    /// [`GhostLayer::refresh`] over the neighborhood topology only
    /// (MPI-3 style): per-message cost scales with the topology degree.
    /// All ranks must use the same refresh flavour within a phase.
    pub fn refresh_neighborhood(
        &self,
        comm: &Comm,
        local_vals: &[VertexId],
        out: &mut Vec<VertexId>,
    ) {
        out.resize(self.num_ghosts, 0);
        let sends: Vec<Vec<VertexId>> = self
            .neighbors
            .iter()
            .map(|&j| self.serve_buffers(local_vals, j))
            .collect();
        let received = comm.neighbor_all_to_all_v(&self.neighbors, sends);
        for (&owner, values) in self.neighbors.iter().zip(&received) {
            self.fill_from(out, owner, values);
        }
        self.val_pool.put_back(received);
    }

    /// Delta refresh over the full communicator: owners push `(index,
    /// value)` pairs only for serve entries whose local vertex is marked
    /// in `changed` (indexed by local vertex). `out` must already hold
    /// the values of a previous full refresh of this phase with every
    /// un-`changed` vertex at its current value — then the result is
    /// byte-identical to a full [`GhostLayer::refresh`]. Collective; all
    /// ranks must take the delta path in the same round.
    pub fn refresh_delta(
        &self,
        comm: &Comm,
        local_vals: &[VertexId],
        changed: &[bool],
        out: &mut [VertexId],
    ) {
        debug_assert_eq!(
            out.len(),
            self.num_ghosts,
            "delta refresh needs a full refresh first"
        );
        let sends: Vec<Vec<DeltaEntry>> = (0..comm.size())
            .map(|j| self.delta_buffers(local_vals, changed, j))
            .collect();
        let received = comm.all_to_all_v(sends);
        for (owner, pairs) in received.iter().enumerate() {
            self.fill_from_delta(out, owner, pairs);
        }
        self.delta_pool.put_back(received);
    }

    /// [`GhostLayer::refresh_delta`] over the neighborhood topology.
    pub fn refresh_delta_neighborhood(
        &self,
        comm: &Comm,
        local_vals: &[VertexId],
        changed: &[bool],
        out: &mut [VertexId],
    ) {
        debug_assert_eq!(
            out.len(),
            self.num_ghosts,
            "delta refresh needs a full refresh first"
        );
        let sends: Vec<Vec<DeltaEntry>> = self
            .neighbors
            .iter()
            .map(|&j| self.delta_buffers(local_vals, changed, j))
            .collect();
        let received = comm.neighbor_all_to_all_v(&self.neighbors, sends);
        for (&owner, pairs) in self.neighbors.iter().zip(&received) {
            self.fill_from_delta(out, owner, pairs);
        }
        self.delta_pool.put_back(received);
    }

    /// Prune refresh traffic for permanently frozen vertices: this rank
    /// announces `frozen_locals` (local indices of owned vertices that
    /// became permanently inactive) to every peer ghosting them, and
    /// symmetrically drops the ghosts other owners announce. Both sides
    /// mask in the same round, so subsequent refreshes stay aligned.
    /// Returns the number of ghost slots this rank stopped refreshing.
    /// Collective.
    pub fn prune(&mut self, comm: &Comm, lg: &LocalGraph, frozen_locals: &[usize]) -> usize {
        let frozen: louvain_graph::hash::FastSet<usize> = frozen_locals.iter().copied().collect();
        // Mask our serve entries and build the announcements.
        let mut announce: Vec<Vec<VertexId>> = vec![Vec::new(); comm.size()];
        for ((serve, mask), out) in self
            .serve
            .iter()
            .zip(self.serve_mask.iter_mut())
            .zip(announce.iter_mut())
        {
            for (i, &l) in serve.iter().enumerate() {
                if mask[i] && frozen.contains(&l) {
                    mask[i] = false;
                    out.push(lg.to_global(l));
                }
            }
        }
        let received = comm.all_to_all_v(announce);
        // Drop the announced ghosts from our request masks.
        let mut dropped = 0;
        for (owner, gids) in received.iter().enumerate() {
            for gid in gids {
                let i = self.requests[owner]
                    .binary_search(gid)
                    .expect("announced ghost not in request list");
                if self.request_mask[owner][i] {
                    self.request_mask[owner][i] = false;
                    dropped += 1;
                }
            }
        }
        self.pruned += dropped;
        dropped
    }

    /// The request lists (per owner) — used by tests and by rebuild to
    /// enumerate ghost ids.
    pub fn requests(&self) -> &[Vec<VertexId>] {
        &self.requests
    }

    /// Approximate resident bytes of the ghost bookkeeping (request and
    /// serve tables, masks, slot map) — the `mem.ghost_bytes` gauge.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        fn nested<T>(v: &[Vec<T>]) -> u64 {
            v.iter()
                .map(|b| (b.capacity() * size_of::<T>()) as u64)
                .sum()
        }
        nested(&self.requests)
            + nested(&self.request_mask)
            + nested(&self.serve)
            + nested(&self.serve_mask)
            + (self.slot.capacity() * size_of::<(VertexId, usize)>()) as u64
            + (self.neighbors.capacity() * size_of::<usize>()) as u64
            + (self.base.capacity() * size_of::<usize>()) as u64
    }

    /// Bytes parked in the recycled wire-buffer pools between refresh
    /// rounds — the `mem.wire_bytes` gauge.
    pub fn wire_bytes(&self) -> u64 {
        self.val_pool.pooled_bytes() + self.delta_pool.pooled_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_comm::run;
    use louvain_graph::{Csr, EdgeList, VertexPartition};

    fn ring(n: u64) -> Csr {
        let mut el = EdgeList::new(n);
        for v in 0..n {
            el.push(v, (v + 1) % n, 1.0);
        }
        Csr::from_edge_list(el)
    }

    fn scatter_for(p: usize, g: &Csr) -> Vec<LocalGraph> {
        let part = VertexPartition::balanced_vertices(g.num_vertices() as u64, p);
        LocalGraph::scatter(g, &part)
    }

    #[test]
    fn ring_ghosts_are_the_boundary_vertices() {
        let g = ring(12);
        let parts = scatter_for(3, &g);
        let out = run(3, |c| {
            let lg = parts[c.rank()].clone();
            let layer = GhostLayer::build(c, &lg);
            (layer.num_ghosts(), layer.neighbor_ranks().to_vec())
        });
        // Each rank's range is contiguous on a ring: exactly 2 ghosts
        // (one on each side), and both other ranks are topology neighbors.
        for (rank, (ghosts, neighbors)) in out.into_iter().enumerate() {
            assert_eq!(ghosts, 2);
            let expected: Vec<usize> = (0..3).filter(|&j| j != rank).collect();
            assert_eq!(neighbors, expected);
        }
    }

    #[test]
    fn refresh_delivers_owner_values() {
        let g = ring(12);
        let parts = scatter_for(3, &g);
        let out = run(3, |c| {
            let lg = parts[c.rank()].clone();
            let layer = GhostLayer::build(c, &lg);
            // Every rank publishes value = 1000 + global id for each of
            // its local vertices.
            let local_vals: Vec<u64> = (0..lg.num_local())
                .map(|l| 1000 + lg.to_global(l))
                .collect();
            let mut ghost_vals = Vec::new();
            layer.refresh(c, &local_vals, &mut ghost_vals);
            // Check all ghosts carry their owner's value.
            let mut ok = true;
            for reqs in layer.requests() {
                for &gid in reqs {
                    if ghost_vals[layer.slot_of(gid)] != 1000 + gid {
                        ok = false;
                    }
                }
            }
            ok
        });
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn neighborhood_refresh_matches_full_refresh() {
        let g = ring(16);
        let parts = scatter_for(4, &g);
        let out = run(4, |c| {
            let lg = parts[c.rank()].clone();
            let layer = GhostLayer::build(c, &lg);
            let local_vals: Vec<u64> = (0..lg.num_local()).map(|l| 7 * lg.to_global(l)).collect();
            let mut full = Vec::new();
            layer.refresh(c, &local_vals, &mut full);
            let mut nbr = Vec::new();
            layer.refresh_neighborhood(c, &local_vals, &mut nbr);
            full == nbr
        });
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn delta_refresh_matches_full_refresh() {
        let g = ring(16);
        let parts = scatter_for(4, &g);
        let out = run(4, |c| {
            let lg = parts[c.rank()].clone();
            let layer = GhostLayer::build(c, &lg);
            // Round 1: full refresh establishes the baseline.
            let vals1: Vec<u64> = (0..lg.num_local()).map(|l| 10 + lg.to_global(l)).collect();
            let mut baseline = Vec::new();
            layer.refresh(c, &vals1, &mut baseline);
            // Round 2: only even-id vertices change.
            let vals2: Vec<u64> = (0..lg.num_local())
                .map(|l| {
                    let gid = lg.to_global(l);
                    if gid.is_multiple_of(2) {
                        900 + gid
                    } else {
                        10 + gid
                    }
                })
                .collect();
            let changed: Vec<bool> = (0..lg.num_local())
                .map(|l| lg.to_global(l).is_multiple_of(2))
                .collect();
            let mut full = baseline.clone();
            layer.refresh(c, &vals2, &mut full);
            let mut delta = baseline.clone();
            layer.refresh_delta(c, &vals2, &changed, &mut delta);
            // Round 3 (no changes at all): the delta exchange is empty and
            // must leave the array untouched.
            let no_change = vec![false; lg.num_local()];
            let mut delta3 = delta.clone();
            layer.refresh_delta(c, &vals2, &no_change, &mut delta3);
            (full == delta, delta3 == delta)
        });
        assert!(out.into_iter().all(|(a, b)| a && b));
    }

    #[test]
    fn delta_neighborhood_matches_delta_full() {
        let g = ring(12);
        let parts = scatter_for(3, &g);
        let out = run(3, |c| {
            let lg = parts[c.rank()].clone();
            let layer = GhostLayer::build(c, &lg);
            let vals1: Vec<u64> = (0..lg.num_local()).map(|l| lg.to_global(l)).collect();
            let mut baseline = Vec::new();
            layer.refresh(c, &vals1, &mut baseline);
            let vals2: Vec<u64> = (0..lg.num_local())
                .map(|l| 3 * lg.to_global(l) + 1)
                .collect();
            let changed = vec![true; lg.num_local()];
            let mut via_full = baseline.clone();
            layer.refresh_delta(c, &vals2, &changed, &mut via_full);
            let mut via_nbr = baseline.clone();
            layer.refresh_delta_neighborhood(c, &vals2, &changed, &mut via_nbr);
            via_full == via_nbr
        });
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn delta_refresh_respects_pruned_slots() {
        let g = ring(8);
        let parts = scatter_for(2, &g);
        let out = run(2, |c| {
            let lg = parts[c.rank()].clone();
            let mut layer = GhostLayer::build(c, &lg);
            let mut ghost_vals = Vec::new();
            let vals1: Vec<u64> = (0..lg.num_local()).map(|l| 100 + lg.to_global(l)).collect();
            layer.refresh(c, &vals1, &mut ghost_vals);
            // Rank 0 freezes global vertex 0 (ghosted by rank 1).
            let frozen: Vec<usize> = if c.rank() == 0 {
                vec![lg.to_local(0)]
            } else {
                vec![]
            };
            layer.prune(c, &lg, &frozen);
            // Every vertex "changes" — but the pruned serve entry must not
            // be sent, so the frozen ghost keeps its round-1 value.
            let vals2: Vec<u64> = (0..lg.num_local()).map(|l| 200 + lg.to_global(l)).collect();
            let changed = vec![true; lg.num_local()];
            layer.refresh_delta(c, &vals2, &changed, &mut ghost_vals);
            ghost_vals
        });
        // Rank 1 ghosts vertices 0 and 3: 0 is frozen at 100, 3 moves to 203.
        assert!(out[1].contains(&100), "{:?}", out[1]);
        assert!(out[1].contains(&203), "{:?}", out[1]);
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let g = ring(8);
        let parts = scatter_for(1, &g);
        let out = run(1, |c| {
            let layer = GhostLayer::build(c, &parts[0]);
            let mut vals = vec![7u64; 3];
            layer.refresh(c, &[0u64; 8], &mut vals);
            (layer.num_ghosts(), vals.len(), layer.neighbor_ranks().len())
        });
        assert_eq!(out[0], (0, 0, 0));
    }

    #[test]
    fn repeated_refreshes_track_changing_values() {
        let g = ring(8);
        let parts = scatter_for(2, &g);
        let out = run(2, |c| {
            let lg = parts[c.rank()].clone();
            let layer = GhostLayer::build(c, &lg);
            let mut results = Vec::new();
            let mut ghost_vals = Vec::new();
            for round in 0..3u64 {
                let local_vals: Vec<u64> = (0..lg.num_local())
                    .map(|l| round * 100 + lg.to_global(l))
                    .collect();
                layer.refresh(c, &local_vals, &mut ghost_vals);
                results.push(ghost_vals.clone());
            }
            results
        });
        // Rank 0 on an 8-ring owns 0..4, ghosts are 7 and 4.
        let r0 = &out[0];
        for round in 0..3u64 {
            assert!(r0[round as usize].contains(&(round * 100 + 7)));
            assert!(r0[round as usize].contains(&(round * 100 + 4)));
        }
    }

    #[test]
    fn pruned_ghosts_keep_their_frozen_value() {
        let g = ring(8);
        let parts = scatter_for(2, &g);
        let out = run(2, |c| {
            let lg = parts[c.rank()].clone();
            let mut layer = GhostLayer::build(c, &lg);
            let mut ghost_vals = Vec::new();
            // Round 1: everyone publishes 100 + gid.
            let vals1: Vec<u64> = (0..lg.num_local()).map(|l| 100 + lg.to_global(l)).collect();
            layer.refresh(c, &vals1, &mut ghost_vals);
            let before = ghost_vals.clone();
            // Rank 0 freezes its local vertex with global id 0 — which is
            // ghosted by rank 1 (ring edge 7–0).
            let frozen: Vec<usize> = if c.rank() == 0 {
                vec![lg.to_local(0)]
            } else {
                vec![]
            };
            let dropped = layer.prune(c, &lg, &frozen);
            // Round 2: values change to 200 + gid; the pruned ghost must
            // keep its round-1 value.
            let vals2: Vec<u64> = (0..lg.num_local()).map(|l| 200 + lg.to_global(l)).collect();
            layer.refresh(c, &vals2, &mut ghost_vals);
            (before, ghost_vals, dropped, layer.num_pruned())
        });
        // Rank 1 ghosts vertices 0 and 3. After pruning vertex 0 its value
        // stays at 100 while vertex 3 advances to 203.
        let (before1, after1, dropped1, pruned1) = &out[1];
        assert_eq!(*dropped1, 1);
        assert_eq!(*pruned1, 1);
        assert!(before1.contains(&100));
        assert!(after1.contains(&100), "frozen ghost value lost: {after1:?}");
        assert!(after1.contains(&203));
        // Rank 0 pruned nothing on its side.
        assert_eq!(out[0].2, 0);
    }

    #[test]
    fn prune_then_neighborhood_refresh_stays_consistent() {
        let g = ring(12);
        let parts = scatter_for(3, &g);
        let out = run(3, |c| {
            let lg = parts[c.rank()].clone();
            let mut layer = GhostLayer::build(c, &lg);
            let mut ghost_vals = Vec::new();
            let vals: Vec<u64> = (0..lg.num_local()).map(|l| lg.to_global(l)).collect();
            layer.refresh_neighborhood(c, &vals, &mut ghost_vals);
            // Everyone freezes their first local vertex.
            let frozen = vec![0usize];
            layer.prune(c, &lg, &frozen);
            let vals2: Vec<u64> = (0..lg.num_local()).map(|l| 500 + lg.to_global(l)).collect();
            layer.refresh_neighborhood(c, &vals2, &mut ghost_vals);
            ghost_vals
        });
        // Rank 0 ghosts 11 (from rank 2) and 4 (from rank 1). Vertex 4 is
        // rank 1's first local vertex → frozen at its old value 4.
        assert!(out[0].contains(&4), "{:?}", out[0]);
        assert!(out[0].contains(&(500 + 11)));
    }
}
