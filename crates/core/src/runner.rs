//! The phase loop (Algorithm 2) executed on every rank.

use std::time::Duration;

use louvain_comm::{Comm, CommStep, ReduceOp};
use louvain_graph::hash::{fast_map, FastMap};
use louvain_graph::{LocalGraph, VertexId, VertexPartition};
use louvain_resil::{CheckpointStore, RankCheckpoint};

use crate::config::DistConfig;
use crate::ghost::GhostLayer;
use crate::heuristics::ThresholdSchedule;
use crate::iteration::{louvain_phase, PhaseContext};
use crate::rebuild::rebuild;
use crate::resume::{abort, config_fingerprint, JobCancelled, ResilOptions};
use crate::stats::PhaseStats;

/// What one rank returns from a full distributed Louvain run.
#[derive(Debug)]
pub struct RankOutcome {
    /// Final community id (a coarse-graph vertex id, globally consistent)
    /// for each of this rank's ORIGINAL vertices, in global-id order.
    pub assignment: Vec<VertexId>,
    /// Final modularity (identical on every rank).
    pub modularity: f64,
    pub phases: usize,
    pub total_iterations: usize,
    pub phase_stats: Vec<PhaseStats>,
    /// Wall time of the whole run on this rank.
    pub wall: Duration,
    /// The phase this run restarted from when it was restored off a
    /// checkpoint (`None` for uninterrupted runs). `phase_stats` then
    /// covers only the re-executed phases, while `phases`,
    /// `total_iterations`, and the comm counters are cumulative over the
    /// whole logical run.
    pub resumed_from_phase: Option<u64>,
    /// Per-phase projections of this rank's ORIGINAL vertices onto the
    /// coarse graph after each executed phase — the rank's slice of the
    /// dendrogram. Populated only under
    /// [`ResilOptions::record_levels`]; on resumed runs it covers the
    /// re-executed phases only. The last entry equals `assignment`.
    pub levels: Vec<Vec<VertexId>>,
}

/// Fetch `local_vals[key - owner_first]` from the owner of every `key`.
/// Used to project assignments through the distributed coarse hierarchy.
/// Collective.
fn pull_values(
    comm: &Comm,
    part: &VertexPartition,
    keys: &[VertexId],
    local_vals: &[VertexId],
    first: VertexId,
) -> Vec<VertexId> {
    let p = comm.size();
    let mut unique: FastMap<VertexId, ()> = fast_map();
    for &k in keys {
        unique.insert(k, ());
    }
    let mut requests: Vec<Vec<VertexId>> = vec![Vec::new(); p];
    for &k in unique.keys() {
        requests[part.owner_of(k)].push(k);
    }
    // `Other` is the default attribution; the explicit scope exists so
    // the projection traffic gets wait/transfer sub-spans like every
    // other collective (the counter totals are unchanged).
    let incoming = comm.with_step(CommStep::Other, || comm.all_to_all_v(requests));
    // Keyed replies (key, value) make retaining a copy of the outbound
    // requests unnecessary.
    let replies: Vec<Vec<(VertexId, VertexId)>> = incoming
        .iter()
        .map(|ids| {
            ids.iter()
                .map(|&k| {
                    debug_assert_eq!(part.owner_of(k), comm.rank());
                    (k, local_vals[(k - first) as usize])
                })
                .collect()
        })
        .collect();
    let reply_vals = comm.with_step(CommStep::Other, || comm.all_to_all_v(replies));
    let mut map: FastMap<VertexId, VertexId> = fast_map();
    for pairs in &reply_vals {
        for &(k, v) in pairs {
            map.insert(k, v);
        }
    }
    keys.iter().map(|k| map[k]).collect()
}

/// Process peak resident set (`VmHWM` from `/proc/self/status`), in
/// bytes; 0 where unavailable (non-Linux, or a restricted procfs).
/// Delegates to the shared reader in `louvain-obs` so the phase loop
/// and the slab-ingest path report the same number.
pub fn peak_rss_bytes() -> u64 {
    louvain_obs::peak_rss_bytes()
}

/// Per-phase memory gauges: CSR and ghost-table resident bytes plus the
/// process peak RSS. Sampled once per phase right after the ghost build,
/// when both structures are at their final size for the phase.
fn record_memory_gauges(lg: &LocalGraph, ghosts: &GhostLayer) {
    if !louvain_obs::enabled() {
        return;
    }
    let (offsets, dests, weights) = lg.csr_parts();
    let csr = std::mem::size_of_val(offsets)
        + std::mem::size_of_val(dests)
        + std::mem::size_of_val(weights);
    louvain_obs::gauge_set("mem.csr_bytes", csr as f64);
    louvain_obs::gauge_set("mem.ghost_bytes", ghosts.approx_bytes() as f64);
    louvain_obs::gauge_set("mem.peak_rss_bytes", peak_rss_bytes() as f64);
}

/// One rank's state recovered from the newest complete checkpoint.
struct RestoredState {
    lg: LocalGraph,
    cur_of_orig: Vec<VertexId>,
    start_phase: usize,
    force_min_tau: bool,
    prev_q: f64,
    final_q: f64,
    total_iterations: usize,
}

/// Load and validate this rank's slab from the newest complete
/// checkpoint, or `None` when the store holds no checkpoint yet (a
/// fresh start is then the correct resume). Unrecoverable problems
/// (corruption, wrong config, wrong rank count, I/O) abort the run with
/// a typed payload rather than silently diverging.
fn restore_rank(comm: &Comm, store: &CheckpointStore, fingerprint: u64) -> Option<RestoredState> {
    let latest = store
        .latest()
        .unwrap_or_else(|e| abort(format!("cannot resume: {e}")))?;
    let _s = louvain_obs::span!("checkpoint_restore", phase = latest);
    louvain_obs::counter_add("checkpoint.restores", 1);
    fn fail(latest: u64, e: louvain_resil::ResilError) -> ! {
        abort(format!("cannot resume from phase {latest}: {e}"))
    }
    let manifest = store.manifest(latest).unwrap_or_else(|e| fail(latest, e));
    manifest
        .validate(comm.size(), fingerprint)
        .unwrap_or_else(|e| fail(latest, e));
    let ckpt = store
        .load_rank(&manifest, comm.rank())
        .unwrap_or_else(|e| fail(latest, e));
    let part = VertexPartition::from_starts(ckpt.part_starts.clone());
    let offsets: Vec<usize> = ckpt.offsets.iter().map(|&o| o as usize).collect();
    let lg = LocalGraph::from_csr_parts(part, comm.rank(), offsets, ckpt.dests, ckpt.weights);
    // Re-absorb the checkpointed counters so the resumed run's
    // cumulative traffic matches an uninterrupted run's.
    comm.stats().absorb(&ckpt.stats);
    Some(RestoredState {
        lg,
        cur_of_orig: ckpt.cur_of_orig,
        start_phase: ckpt.phase as usize,
        force_min_tau: ckpt.force_min_tau,
        prev_q: ckpt.prev_q,
        final_q: ckpt.final_q,
        total_iterations: ckpt.total_iterations as usize,
    })
}

/// Run the distributed Louvain algorithm on this rank's piece of the
/// graph. Collective — all ranks call it with their own [`LocalGraph`].
pub fn run_on_rank(comm: &Comm, lg0: LocalGraph, cfg: &DistConfig) -> RankOutcome {
    run_on_rank_resilient(comm, lg0, cfg, &ResilOptions::none())
}

/// [`run_on_rank`] with phase-boundary checkpointing and resume.
///
/// Phase boundaries are consistent cuts: the four per-iteration
/// communication steps have quiesced, the coarse graph was just rebuilt,
/// and the per-phase heuristic state (ET tracker, delta-refresh
/// baseline) is recreated from scratch at each phase entry, so the cut
/// carries none of it. Together with the sweep order being seeded from
/// the *absolute* phase index, a run resumed from the phase-`k`
/// checkpoint replays phases `k..` bit-identically to an uninterrupted
/// run — same assignments, same modularity.
pub fn run_on_rank_resilient(
    comm: &Comm,
    lg0: LocalGraph,
    cfg: &DistConfig,
    resil: &ResilOptions,
) -> RankOutcome {
    let watch = louvain_obs::Stopwatch::start();
    let schedule = if cfg.variant.uses_cycling() {
        ThresholdSchedule::paper_cycle(cfg.threshold)
    } else {
        ThresholdSchedule::fixed(cfg.threshold)
    };
    let min_tau = schedule.min_tau();
    let fingerprint = config_fingerprint(cfg);

    let store = resil.checkpoint.as_ref().map(|c| {
        CheckpointStore::new(&c.dir).unwrap_or_else(|e| {
            abort(format!(
                "cannot open checkpoint directory {}: {e}",
                c.dir.display()
            ))
        })
    });

    let mut lg = lg0;
    // Original vertex (this rank's range) → vertex of the current coarse
    // graph. Starts as the identity.
    let mut cur_of_orig: Vec<VertexId> = lg.partition().range(comm.rank()).collect();

    let mut phase_stats: Vec<PhaseStats> = Vec::new();
    let mut prev_q = f64::NEG_INFINITY;
    let mut final_q = 0.0;
    let mut total_iterations = 0;
    let mut force_min_tau = false;
    let mut start_phase = 0usize;
    let mut resumed_from_phase = None;

    if resil.resume {
        let store = store
            .as_ref()
            .unwrap_or_else(|| abort("resume requested without a checkpoint directory".into()));
        if let Some(restored) = restore_rank(comm, store, fingerprint) {
            lg = restored.lg;
            cur_of_orig = restored.cur_of_orig;
            start_phase = restored.start_phase;
            force_min_tau = restored.force_min_tau;
            prev_q = restored.prev_q;
            final_q = restored.final_q;
            total_iterations = restored.total_iterations;
            resumed_from_phase = Some(start_phase as u64);
        }
    }

    let mut levels: Vec<Vec<VertexId>> = Vec::new();

    for phase_idx in start_phase..cfg.max_phases {
        comm.advance_fault_epoch(phase_idx as u64);
        // Cooperative cancellation, checked once per phase boundary —
        // i.e. right after the boundary checkpoint (if any) went
        // durable at the end of the previous iteration. The tiny
        // agreement all-reduce makes the decision collective: either
        // every rank stops here or none does, so no peer is ever left
        // blocked mid-collective by a unilateral exit.
        if let Some(token) = resil.cancel.as_ref() {
            let local = token.load(std::sync::atomic::Ordering::SeqCst) as u64;
            let agreed = comm.with_step(CommStep::Other, || comm.all_reduce(local, ReduceOp::Max));
            if agreed > 0 {
                std::panic::panic_any(JobCancelled {
                    phase: phase_idx as u64,
                });
            }
        }
        let tau = if force_min_tau {
            min_tau
        } else {
            schedule.tau_for_phase(phase_idx)
        };

        let mut phase_span = louvain_obs::span!(
            "phase",
            phase = phase_idx,
            tau = tau,
            vertices = lg.num_global()
        );

        let mut ghosts = {
            let _s = louvain_obs::span!("ghost_build", phase = phase_idx);
            // Scoped under `Other` (its default attribution) so the
            // slot-map exchange gets wait/transfer sub-spans.
            comm.with_step(CommStep::Other, || GhostLayer::build(comm, &lg))
        };
        record_memory_gauges(&lg, &ghosts);
        let two_m = comm.with_step(CommStep::Other, || {
            comm.all_reduce(lg.local_arc_weight(), ReduceOp::Sum)
        });
        let ctx = PhaseContext {
            comm,
            lg: &lg,
            two_m,
        };
        let result = louvain_phase(&ctx, &mut ghosts, cfg, phase_idx, tau);
        total_iterations += result.iterations;
        final_q = result.modularity;
        phase_span.arg("iterations", result.iterations);
        phase_span.arg("q", result.modularity);

        let gain = result.modularity - prev_q;
        let converged = prev_q.is_finite() && gain <= tau;
        // "our distributed implementation always forces Louvain iteration
        // to run once more with the lowest threshold, to ensure acceptable
        // modularity" — convergence at a cycled (higher) τ only schedules
        // a final min-τ phase.
        let accept = converged && (tau <= min_tau * (1.0 + 1e-12) || force_min_tau);
        prev_q = prev_q.max(result.modularity);

        let mut stats = PhaseStats {
            phase: phase_idx,
            num_vertices: lg.num_global(),
            iterations: result.iterations,
            modularity: result.modularity,
            tau,
            iteration_traces: result.traces.clone(),
            compute: result.compute,
            rebuild: Default::default(),
            comm_seconds: result.comm_seconds,
            reduce_seconds: result.reduce_seconds,
            etc_exit: result.etc_exit,
            threads_per_rank: cfg.threads_per_rank.max(1),
        };

        if accept {
            // Map original vertices to their final communities: the final
            // community of orig v is comm_of_local[cur_of_orig[v]] held by
            // the owner of that coarse vertex.
            let first = lg.first_vertex();
            let _s = louvain_obs::span!("project", phase = phase_idx);
            cur_of_orig = pull_values(
                comm,
                lg.partition(),
                &cur_of_orig,
                &result.comm_of_local,
                first,
            );
            if resil.record_levels {
                levels.push(cur_of_orig.clone());
            }
            phase_stats.push(stats);
            break;
        }
        if converged {
            force_min_tau = true;
        }

        // Rebuild the coarse graph (also yields each old vertex's new id).
        let out = {
            let _s = louvain_obs::span!("rebuild", phase = phase_idx);
            rebuild(
                comm,
                &lg,
                &ghosts,
                &result.comm_of_local,
                &result.ghost_comm,
            )
        };
        stats.rebuild = out.work;
        stats.comm_seconds += out.comm_seconds;
        phase_stats.push(stats);

        // Project the original vertices onto the new coarse graph.
        let first = lg.first_vertex();
        cur_of_orig = {
            let _s = louvain_obs::span!("project", phase = phase_idx);
            pull_values(
                comm,
                lg.partition(),
                &cur_of_orig,
                &out.vertex_new_id,
                first,
            )
        };
        if resil.record_levels {
            levels.push(cur_of_orig.clone());
        }

        let compressed = out.new_num_vertices < lg.num_global();
        lg = out.new_lg;
        if !compressed {
            // No compression: one more phase cannot improve; map current
            // coarse vertices to their (identity) communities and stop.
            break;
        }
        if phase_idx + 1 == cfg.max_phases {
            // Phase budget exhausted: cur_of_orig already points at the
            // final coarse vertices, which are the final communities.
            break;
        }

        // Phase-boundary checkpoint: all collectives have quiesced, the
        // coarse graph was just rebuilt, and the projection is current —
        // a consistent cut of the whole distributed state.
        if let Some(store) = store.as_ref() {
            let every = resil.checkpoint.as_ref().map_or(1, |c| c.every.max(1));
            let next_phase = (phase_idx + 1) as u64;
            if next_phase.is_multiple_of(every) {
                let mut span = louvain_obs::span!("checkpoint_write", phase = next_phase);
                // The stats cut is snapshotted BEFORE the checkpoint-step
                // gather below, so the stored counters exclude the
                // checkpointing traffic itself: a resumed run then
                // reproduces an uninterrupted run's per-step totals
                // exactly for every step but `checkpoint`.
                let (offsets, dests, weights) = lg.csr_parts();
                let ckpt = RankCheckpoint {
                    rank: comm.rank(),
                    ranks: comm.size(),
                    phase: next_phase,
                    force_min_tau,
                    prev_q,
                    final_q,
                    total_iterations: total_iterations as u64,
                    config_fingerprint: fingerprint,
                    part_starts: lg.partition().starts().to_vec(),
                    offsets: offsets.iter().map(|&o| o as u64).collect(),
                    dests: dests.to_vec(),
                    weights: weights.to_vec(),
                    cur_of_orig: cur_of_orig.clone(),
                    stats: comm.stats().snapshot(),
                };
                let bytes = comm.with_step(CommStep::Checkpoint, || {
                    // Slab serialization + fsync is the longest stretch a
                    // rank spends away from any comm op; bracket it with
                    // heartbeats so peer watchdogs see a straggler, not a
                    // hang, when the disk is slow.
                    comm.heartbeat();
                    let entry = store.write_rank(&ckpt).unwrap_or_else(|e| {
                        abort(format!(
                            "checkpoint write failed at phase {next_phase}: {e}"
                        ))
                    });
                    comm.heartbeat();
                    let bytes = entry.bytes;
                    if let Some(entries) = comm.gather_to_root(0, vec![entry]) {
                        let all: Vec<_> = entries.into_iter().flatten().collect();
                        store
                            .commit_phase(next_phase, comm.size(), fingerprint, all)
                            .unwrap_or_else(|e| {
                                abort(format!(
                                    "checkpoint commit failed at phase {next_phase}: {e}"
                                ))
                            });
                    }
                    // No rank proceeds before the manifest is durable —
                    // otherwise a crash early in the next phase could
                    // strand slabs with no committed manifest behind them.
                    comm.barrier();
                    bytes
                });
                span.arg("bytes", bytes);
                louvain_obs::counter_add("checkpoint.writes", 1);
                louvain_obs::counter_add("checkpoint.bytes", bytes);
            }
        }
    }

    RankOutcome {
        assignment: cur_of_orig,
        modularity: final_q.max(0.0_f64.min(final_q)),
        phases: start_phase + phase_stats.len(),
        total_iterations,
        phase_stats,
        wall: Duration::from_secs_f64(watch.wall_seconds()),
        resumed_from_phase,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_comm::run;
    use louvain_graph::{Csr, EdgeList};

    fn scatter(g: &Csr, p: usize) -> Vec<LocalGraph> {
        let part = VertexPartition::balanced_vertices(g.num_vertices() as u64, p);
        LocalGraph::scatter(g, &part)
    }

    #[test]
    fn two_triangles_converge_on_any_rank_count() {
        let g = Csr::from_edge_list(EdgeList::from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 1.0),
            ],
        ));
        for p in [1, 2, 3] {
            let parts = scatter(&g, p);
            let cfg = DistConfig::baseline();
            let outs = run(p, |c| run_on_rank(c, parts[c.rank()].clone(), &cfg));
            let mut assignment = Vec::new();
            for o in &outs {
                assignment.extend(o.assignment.iter().copied());
                assert!((o.modularity - outs[0].modularity).abs() < 1e-12);
            }
            assert_eq!(assignment[0], assignment[1]);
            assert_eq!(assignment[1], assignment[2]);
            assert_eq!(assignment[3], assignment[5]);
            assert_ne!(assignment[0], assignment[3]);
            let q_ref = louvain_graph::community::modularity(&g, &assignment);
            assert!(
                (outs[0].modularity - q_ref).abs() < 1e-9,
                "p={p}: {} vs {}",
                outs[0].modularity,
                q_ref
            );
        }
    }

    #[test]
    fn delta_refresh_full_run_matches_baseline_exactly() {
        // Multi-phase end-to-end parity: the delta ghost refresh must not
        // change a single assignment across the whole coarsening
        // hierarchy, and must cut ghost-refresh bytes.
        use louvain_comm::CommStep;
        let g = louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(800, 5)).graph;
        for p in [2, 4] {
            let parts = scatter(&g, p);
            let collect = |cfg: &DistConfig| {
                let outs = run(p, |c| {
                    let o = run_on_rank(c, parts[c.rank()].clone(), cfg);
                    let refresh_bytes = c.stats().step_bytes(CommStep::GhostRefresh);
                    (o, refresh_bytes)
                });
                let mut assignment = Vec::new();
                let mut bytes = 0u64;
                for (o, b) in &outs {
                    assignment.extend(o.assignment.iter().copied());
                    bytes += b;
                }
                (assignment, outs[0].0.modularity, bytes)
            };
            let base = collect(&DistConfig::baseline());
            let cfg = DistConfig {
                delta_ghost_refresh: true,
                ..DistConfig::baseline()
            };
            let delta = collect(&cfg);
            assert_eq!(base.0, delta.0, "p={p}: assignments differ");
            assert_eq!(base.1, delta.1, "p={p}: modularity differs");
            assert!(
                delta.2 < base.2,
                "p={p}: delta refresh sent {} bytes vs full {}",
                delta.2,
                base.2
            );
        }
    }

    #[test]
    fn max_phases_budget_is_respected() {
        let g = louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(800, 3)).graph;
        let parts = scatter(&g, 2);
        let cfg = DistConfig {
            max_phases: 1,
            ..DistConfig::baseline()
        };
        let outs = run(2, |c| run_on_rank(c, parts[c.rank()].clone(), &cfg));
        for o in &outs {
            assert_eq!(o.phases, 1);
            // Output is still a complete, valid assignment for the
            // original vertices.
            assert!(!o.assignment.is_empty());
        }
        let total: usize = outs.iter().map(|o| o.assignment.len()).sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn per_phase_modularity_is_nondecreasing_at_acceptance() {
        let g = louvain_graph::gen::weblike(louvain_graph::gen::WeblikeParams::web(1_200, 4)).graph;
        let parts = scatter(&g, 2);
        let cfg = DistConfig::baseline();
        let outs = run(2, |c| run_on_rank(c, parts[c.rank()].clone(), &cfg));
        let qs: Vec<f64> = outs[0].phase_stats.iter().map(|p| p.modularity).collect();
        // Phases must improve until the last (which may only tie within τ).
        for w in qs.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "phase modularity regressed: {qs:?}");
        }
    }

    #[test]
    fn pull_values_fetches_owner_state() {
        let outs = run(3, |c| {
            let part = VertexPartition::balanced_vertices(9, 3);
            let first = part.first(c.rank());
            // Owner stores value = 10 * global id for each owned vertex.
            let local_vals: Vec<u64> = part.range(c.rank()).map(|v| v * 10).collect();
            // Every rank asks about vertices it does not own.
            let keys: Vec<u64> = (0..9).filter(|v| part.owner_of(*v) != c.rank()).collect();
            let vals = pull_values(c, &part, &keys, &local_vals, first);
            keys.into_iter().zip(vals).all(|(k, v)| v == k * 10)
        });
        assert!(outs.into_iter().all(|b| b));
    }
}
