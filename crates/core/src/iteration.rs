//! The Louvain iterations of one phase (Algorithm 3).
//!
//! Each iteration performs the paper's four communication steps:
//!
//! 1. owners push the latest community of every ghosted vertex
//!    (lines 4–5),
//! 2. ranks pull the weights `a_c` (and sizes) of remote communities
//!    their vertices might join (the "ghost community" information),
//! 3. after the local compute step (lines 6–9), weight deltas for
//!    remotely-owned communities are pushed to their owners
//!    (lines 10–11),
//! 4. modularity is computed with global reductions (lines 12–13).
//!
//! Ranks see remote state only as of the most recent exchange — the
//! "community update lag" that distinguishes the distributed algorithm
//! from its shared-memory counterpart (Section III-B).
//!
//! The compute sweep is MPI+OpenMP-shaped like the original. Three
//! schedules exist (see [`crate::SweepMode`]): the seed's sequential
//! sweep (1 thread, fully deterministic); a *colored deterministic*
//! schedule in which a distance-1 coloring over local+ghost adjacency
//! partitions each round into conflict-free batches — moves inside a
//! batch are *decided* in parallel against the frozen batch-start state
//! by a persistent worker pool and *applied* sequentially in a fixed
//! order, so results are bit-identical at any thread count; and a legacy
//! *relaxed* schedule (racing atomics, the Grappolo discipline) kept as
//! an ablation. See DESIGN.md §11 for the parity argument.
//!
//! Paper future-work extensions, all off by default (see
//! [`crate::DistConfig`]): MPI-3-style neighborhood collectives for the
//! ghost refresh, pruning of refresh traffic for permanently inactive
//! vertices under ET, and distance-1-colored sub-rounds in which
//! concurrently moved vertices are never adjacent.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use rayon::prelude::*;
use rayon::WorkerPool;

use louvain_comm::{Comm, CommStep, ReduceOp};
use louvain_graph::atomic::AtomicF64;
use louvain_graph::hash::{fast_map, FastMap};
use louvain_graph::{LocalGraph, VertexId, Weight};

use crate::config::{DistConfig, SweepMode};
use crate::ghost::GhostLayer;
use crate::heuristics::{distributed_coloring, EtTracker};
use crate::scratch::{reclaim, IterScratch};
use crate::stats::{IterationTrace, WorkCounter};

/// Outcome of one phase's iteration loop on one rank.
#[derive(Debug)]
pub struct PhaseResult {
    /// Final community (global id) of each local vertex.
    pub comm_of_local: Vec<VertexId>,
    /// Final communities of the ghost vertices (freshly exchanged after
    /// the last iteration, so rebuild sees a consistent state).
    pub ghost_comm: Vec<VertexId>,
    /// Weight `a_c` of every *owned* community (indexed by `c - first`).
    pub owned_a: Vec<Weight>,
    pub modularity: f64,
    pub iterations: usize,
    pub traces: Vec<IterationTrace>,
    pub compute: WorkCounter,
    /// Modeled seconds in ghost/community exchanges (steps 1–3).
    pub comm_seconds: f64,
    /// Modeled seconds in the modularity reductions (step 4).
    pub reduce_seconds: f64,
    /// True if the ETC 90%-inactive exit ended the phase.
    pub etc_exit: bool,
    /// Ghost refreshes pruned away by the inactive-vertex refinement.
    pub pruned_ghosts: usize,
}

/// Immutable phase inputs shared by the iteration loop.
pub struct PhaseContext<'a> {
    pub comm: &'a Comm,
    pub lg: &'a LocalGraph,
    /// Global `2m` (all-reduced once per phase by the caller).
    pub two_m: f64,
}

/// Shared (possibly multi-threaded) per-rank community state.
struct SweepState {
    /// Community of each local vertex (global ids).
    comm: Vec<AtomicU64>,
    /// Weight of each owned community (`a_c`, indexed `c - first`).
    a: Vec<AtomicF64>,
    /// Size of each owned community.
    size: Vec<AtomicU64>,
    /// Per-vertex move flags for this iteration.
    moved: Vec<AtomicBool>,
}

impl SweepState {
    fn new(k_local: &[Weight], lg: &LocalGraph) -> Self {
        let nlocal = lg.num_local();
        Self {
            comm: (0..nlocal)
                .map(|l| AtomicU64::new(lg.to_global(l)))
                .collect(),
            a: k_local.iter().map(|&k| AtomicF64::new(k)).collect(),
            size: (0..nlocal).map(|_| AtomicU64::new(1)).collect(),
            moved: (0..nlocal).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    #[inline]
    fn comm_of_local(&self, l: usize) -> VertexId {
        self.comm[l].load(Ordering::Relaxed)
    }

    fn snapshot_a(&self) -> Vec<Weight> {
        self.a.iter().map(|a| a.load()).collect()
    }
}

/// Per-thread accumulation of one sweep chunk, merged after the loop.
#[derive(Default)]
struct SweepAcc {
    deltas: FastMap<VertexId, (Weight, i64)>,
    moves: u64,
    edges: u64,
    vertices: u64,
}

impl SweepAcc {
    fn merge(mut self, other: SweepAcc) -> SweepAcc {
        for (c, (da, ds)) in other.deltas {
            let e = self.deltas.entry(c).or_insert((0.0, 0));
            e.0 += da;
            e.1 += ds;
        }
        self.moves += other.moves;
        self.edges += other.edges;
        self.vertices += other.vertices;
        self
    }
}

/// One ghost community exchange (Step 1), full or delta flavour.
///
/// The snapshot is taken into the scratch arena, and after the exchange
/// becomes the new delta baseline (`last_pushed`). `use_delta` must be
/// decided *uniformly* across ranks (it changes the collective's payload
/// type): callers derive it from the config flag, from whether a full
/// baseline exists yet (`have_baseline`, which advances in lockstep
/// because exchanges are collective), and from the previous iteration's
/// all-reduced global move count.
///
/// The changed-bit tracking diffs against `last_pushed` rather than
/// reusing `SweepState::moved`: the move flags reset once per iteration
/// while colored sweeps exchange once per sub-round, and vertex
/// following moves vertices outside any sweep. Comparing against the
/// exact last-pushed values is correct in every one of those paths.
fn exchange_ghosts(
    comm: &Comm,
    ghosts: &GhostLayer,
    state: &SweepState,
    scratch: &mut IterScratch,
    ghost_comm: &mut Vec<VertexId>,
    neighborhood: bool,
    use_delta: bool,
) {
    scratch.comm_snapshot.clear();
    scratch
        .comm_snapshot
        .extend(state.comm.iter().map(|c| c.load(Ordering::Relaxed)));
    let vals = &scratch.comm_snapshot;
    if use_delta {
        debug_assert_eq!(scratch.last_pushed.len(), vals.len());
        scratch.changed.clear();
        scratch
            .changed
            .extend(vals.iter().zip(&scratch.last_pushed).map(|(a, b)| a != b));
        if neighborhood {
            ghosts.refresh_delta_neighborhood(comm, vals, &scratch.changed, ghost_comm);
        } else {
            ghosts.refresh_delta(comm, vals, &scratch.changed, ghost_comm);
        }
    } else if neighborhood {
        ghosts.refresh_neighborhood(comm, vals, ghost_comm);
    } else {
        ghosts.refresh(comm, vals, ghost_comm);
    }
    scratch.last_pushed.clear();
    scratch.last_pushed.extend_from_slice(vals);
    // Delta hit-rate metrics: changed/total slot ratio is the payload
    // compression the delta flavour achieves over a full refresh.
    if louvain_obs::enabled() {
        if use_delta {
            let changed = scratch.changed.iter().filter(|&&c| c).count() as u64;
            louvain_obs::counter_add("ghost.delta.refreshes", 1);
            louvain_obs::counter_add("ghost.delta.changed", changed);
            louvain_obs::counter_add("ghost.delta.slots", scratch.changed.len() as u64);
        } else {
            louvain_obs::counter_add("ghost.full.refreshes", 1);
            louvain_obs::counter_add("ghost.full.slots", vals.len() as u64);
        }
    }
}

/// Evaluate and (if profitable) apply the best move for local vertex `l`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn try_move(
    l: usize,
    lg: &LocalGraph,
    ghosts: &GhostLayer,
    ghost_comm: &[VertexId],
    state: &SweepState,
    k_local: &[Weight],
    two_m: f64,
    guard_singleton_swap: bool,
    remote_a: &FastMap<VertexId, (Weight, u64)>,
    acc: &mut SweepAcc,
    weights: &mut FastMap<VertexId, Weight>,
) {
    let first = lg.first_vertex();
    let nlocal = lg.num_local();
    let comm_of = |u: VertexId| -> VertexId {
        if u >= first && u < first + nlocal as u64 {
            state.comm_of_local((u - first) as usize)
        } else {
            ghost_comm[ghosts.slot_of(u)]
        }
    };
    acc.vertices += 1;
    let v_global = lg.to_global(l);
    let cu = state.comm_of_local(l);
    let kv = k_local[l];
    weights.clear();
    for (u, w) in lg.neighbors(l) {
        acc.edges += 1;
        if u == v_global {
            continue;
        }
        *weights.entry(comm_of(u)).or_insert(0.0) += w;
    }
    if weights.is_empty() {
        return;
    }
    // Remote community info = the iteration-start pull, adjusted by the
    // deltas this thread has itself accumulated since — without this
    // "local view", every vertex of the rank sees the same stale (small)
    // a_c of an attractive remote community and they all pile in,
    // overshooting badly on mesh-like graphs.
    fn info_of(
        c: VertexId,
        lg: &LocalGraph,
        state: &SweepState,
        remote_a: &FastMap<VertexId, (Weight, u64)>,
        acc: &SweepAcc,
    ) -> (Weight, u64) {
        if lg.owns(c) {
            let i = (c - lg.first_vertex()) as usize;
            (state.a[i].load(), state.size[i].load(Ordering::Relaxed))
        } else {
            let (mut a, mut sz) = remote_a.get(&c).copied().unwrap_or((0.0, 0));
            if let Some(&(da, ds)) = acc.deltas.get(&c) {
                a += da;
                sz = (sz as i64 + ds).max(0) as u64;
            }
            (a, sz)
        }
    }
    let e_cu = weights.get(&cu).copied().unwrap_or(0.0);
    let (a_cu, size_cu) = info_of(cu, lg, state, remote_a, acc);
    let stay = e_cu - kv * (a_cu - kv) / two_m;
    let mut best_c = cu;
    let mut best_score = f64::NEG_INFINITY;
    let mut best_size = 0u64;
    for (&c, &e_vc) in weights.iter() {
        if c == cu {
            continue;
        }
        let (a_c, size_c) = info_of(c, lg, state, remote_a, acc);
        let score = e_vc - kv * a_c / two_m;
        if score > best_score + 1e-12 || ((score - best_score).abs() <= 1e-12 && c < best_c) {
            best_score = score;
            best_c = c;
            best_size = size_c;
        }
    }
    let mut do_move = best_c != cu
        && (best_score > stay + 1e-12 || ((best_score - stay).abs() <= 1e-12 && best_c < cu));
    // Singleton-swap guard (Vite / Lu et al. minimum labeling): two
    // singleton vertices evaluating each other concurrently would swap
    // communities forever; only the one moving toward the smaller
    // community id proceeds.
    if guard_singleton_swap && do_move && size_cu == 1 && best_size == 1 && best_c > cu {
        do_move = false;
    }
    if do_move {
        state.comm[l].store(best_c, Ordering::Relaxed);
        state.moved[l].store(true, Ordering::Relaxed);
        acc.moves += 1;
        // Leave cu.
        if lg.owns(cu) {
            let i = (cu - first) as usize;
            state.a[i].fetch_add(-kv);
            state.size[i].fetch_sub(1, Ordering::Relaxed);
        } else {
            let d = acc.deltas.entry(cu).or_insert((0.0, 0));
            d.0 -= kv;
            d.1 -= 1;
        }
        // Join best_c.
        if lg.owns(best_c) {
            let i = (best_c - first) as usize;
            state.a[i].fetch_add(kv);
            state.size[i].fetch_add(1, Ordering::Relaxed);
        } else {
            let d = acc.deltas.entry(best_c).or_insert((0.0, 0));
            d.0 += kv;
            d.1 += 1;
        }
    }
}

/// Decide (without applying) the best move for local vertex `l` against a
/// frozen snapshot of community state — the decide half of the colored
/// deterministic schedule. Mirrors [`try_move`]'s scoring exactly, except
/// that candidate communities are scanned in ascending community-id order
/// (collected into `candidates` and sorted), which makes the documented
/// tie-break policy — near-ties within 1e-12 go to the smallest community
/// id — exact and independent of the hash map's iteration order (and
/// therefore of the pooled map's capacity history and the thread count).
/// `frozen_deltas` is the remote-delta view accumulated by *previous*
/// batches; it is strictly read-only here, so the decision is a pure
/// function of (vertex, batch-start state).
#[allow(clippy::too_many_arguments)]
fn decide_move(
    l: usize,
    lg: &LocalGraph,
    ghosts: &GhostLayer,
    ghost_comm: &[VertexId],
    state: &SweepState,
    k_local: &[Weight],
    two_m: f64,
    guard_singleton_swap: bool,
    remote_a: &FastMap<VertexId, (Weight, u64)>,
    frozen_deltas: &FastMap<VertexId, (Weight, i64)>,
    weights: &mut FastMap<VertexId, Weight>,
    candidates: &mut Vec<(VertexId, Weight)>,
    edges: &mut u64,
) -> Option<VertexId> {
    let first = lg.first_vertex();
    let nlocal = lg.num_local();
    let comm_of = |u: VertexId| -> VertexId {
        if u >= first && u < first + nlocal as u64 {
            state.comm_of_local((u - first) as usize)
        } else {
            ghost_comm[ghosts.slot_of(u)]
        }
    };
    let v_global = lg.to_global(l);
    let cu = state.comm_of_local(l);
    let kv = k_local[l];
    weights.clear();
    for (u, w) in lg.neighbors(l) {
        *edges += 1;
        if u == v_global {
            continue;
        }
        *weights.entry(comm_of(u)).or_insert(0.0) += w;
    }
    if weights.is_empty() {
        return None;
    }
    let info_of = |c: VertexId| -> (Weight, u64) {
        if lg.owns(c) {
            let i = (c - first) as usize;
            (state.a[i].load(), state.size[i].load(Ordering::Relaxed))
        } else {
            let (mut a, mut sz) = remote_a.get(&c).copied().unwrap_or((0.0, 0));
            if let Some(&(da, ds)) = frozen_deltas.get(&c) {
                a += da;
                sz = (sz as i64 + ds).max(0) as u64;
            }
            (a, sz)
        }
    };
    let e_cu = weights.get(&cu).copied().unwrap_or(0.0);
    let (a_cu, size_cu) = info_of(cu);
    let stay = e_cu - kv * (a_cu - kv) / two_m;
    candidates.clear();
    candidates.extend(weights.iter().map(|(&c, &w)| (c, w)));
    candidates.sort_unstable_by_key(|c| c.0);
    let mut best_c = cu;
    let mut best_score = f64::NEG_INFINITY;
    let mut best_size = 0u64;
    for &(c, e_vc) in candidates.iter() {
        if c == cu {
            continue;
        }
        let (a_c, size_c) = info_of(c);
        let score = e_vc - kv * a_c / two_m;
        if score > best_score + 1e-12 || ((score - best_score).abs() <= 1e-12 && c < best_c) {
            best_score = score;
            best_c = c;
            best_size = size_c;
        }
    }
    let mut do_move = best_c != cu
        && (best_score > stay + 1e-12 || ((best_score - stay).abs() <= 1e-12 && best_c < cu));
    if guard_singleton_swap && do_move && size_cu == 1 && best_size == 1 && best_c > cu {
        do_move = false;
    }
    if do_move {
        Some(best_c)
    } else {
        None
    }
}

/// Apply a decided move: the bookkeeping half of [`try_move`], executed
/// sequentially (single thread, fixed batch order) by the colored
/// schedule so that `acc.deltas`' insertion history — and with it the
/// delta-push message order — is identical at any thread count.
fn apply_move(
    l: usize,
    best_c: VertexId,
    lg: &LocalGraph,
    state: &SweepState,
    k_local: &[Weight],
    acc: &mut SweepAcc,
) {
    let first = lg.first_vertex();
    let cu = state.comm_of_local(l);
    let kv = k_local[l];
    state.comm[l].store(best_c, Ordering::Relaxed);
    state.moved[l].store(true, Ordering::Relaxed);
    acc.moves += 1;
    // Leave cu.
    if lg.owns(cu) {
        let i = (cu - first) as usize;
        state.a[i].fetch_add(-kv);
        state.size[i].fetch_sub(1, Ordering::Relaxed);
    } else {
        let d = acc.deltas.entry(cu).or_insert((0.0, 0));
        d.0 -= kv;
        d.1 -= 1;
    }
    // Join best_c.
    if lg.owns(best_c) {
        let i = (best_c - first) as usize;
        state.a[i].fetch_add(kv);
        state.size[i].fetch_add(1, Ordering::Relaxed);
    } else {
        let d = acc.deltas.entry(best_c).or_insert((0.0, 0));
        d.0 += kv;
        d.1 += 1;
    }
}

/// One colored deterministic sweep over `scratch.round_vertices`.
///
/// Vertices are grouped into conflict-free batches by color class (the
/// distance-1 coloring guarantees no two batch members are adjacent, so
/// no decision can read a community membership another batch member is
/// about to change). Each batch's moves are *decided* in parallel by the
/// worker pool against the frozen batch-start state, then *applied*
/// sequentially in batch order on the calling thread. Decisions are pure
/// and the worker pool returns results in contiguous-range order, so the
/// applied sequence is a function of the coloring alone — results at any
/// `threads_per_rank` are bit-identical for a fixed coloring (and the
/// coloring seed never depends on the thread count). The parity argument
/// is spelled out in DESIGN.md §11.
#[allow(clippy::too_many_arguments)]
fn colored_sweep(
    pool: &WorkerPool,
    coloring: &(Vec<u32>, u32),
    lg: &LocalGraph,
    ghosts: &GhostLayer,
    ghost_comm: &[VertexId],
    state: &SweepState,
    k_local: &[Weight],
    two_m: f64,
    guard: bool,
    scratch: &IterScratch,
    batches: &mut Vec<Vec<usize>>,
    iter: usize,
    round: usize,
) -> SweepAcc {
    let (color, nc) = coloring;
    let nc = *nc as usize;
    if batches.len() < nc {
        batches.resize_with(nc, Vec::new);
    }
    for b in batches.iter_mut() {
        b.clear();
    }
    // `round_vertices` is already in sweep order, so each batch inherits
    // the deterministic order of its members.
    for &l in &scratch.round_vertices {
        batches[color[l] as usize].push(l);
    }
    let mut acc = SweepAcc::default();
    for (batch_color, batch) in batches.iter().enumerate().take(nc) {
        if batch.is_empty() {
            continue;
        }
        let mut batch_span = louvain_obs::span!(
            "sweep.batch",
            iter = iter,
            round = round,
            color = batch_color
        );
        let frozen = &acc.deltas;
        let decided = pool.run(batch.len(), |r| {
            let vertices = r.len() as u64;
            let mut weights = scratch.take_weights();
            let mut candidates: Vec<(VertexId, Weight)> = Vec::new();
            let mut moves: Vec<(usize, VertexId)> = Vec::new();
            let mut edges = 0u64;
            for &l in &batch[r] {
                if let Some(c) = decide_move(
                    l,
                    lg,
                    ghosts,
                    ghost_comm,
                    state,
                    k_local,
                    two_m,
                    guard,
                    &scratch.remote_a,
                    frozen,
                    &mut weights,
                    &mut candidates,
                    &mut edges,
                ) {
                    moves.push((l, c));
                }
            }
            scratch.put_weights(weights);
            (moves, edges, vertices)
        });
        let mut batch_moves = 0u64;
        for (moves, edges, vertices) in decided {
            acc.edges += edges;
            acc.vertices += vertices;
            for (l, c) in moves {
                apply_move(l, c, lg, state, k_local, &mut acc);
                batch_moves += 1;
            }
        }
        louvain_obs::counter_add("sweep.batch_moves", batch_moves);
        batch_span.arg("moves", batch_moves);
    }
    acc
}

/// Run the iteration loop of one phase with threshold `tau`.
/// `ghosts` is taken mutably so the inactive-ghost pruning refinement can
/// mask refresh traffic mid-phase.
pub fn louvain_phase(
    ctx: &PhaseContext<'_>,
    ghosts: &mut GhostLayer,
    cfg: &DistConfig,
    phase_idx: usize,
    tau: f64,
) -> PhaseResult {
    let comm = ctx.comm;
    let lg = ctx.lg;
    let part = lg.partition();
    let nlocal = lg.num_local();
    let first = lg.first_vertex();
    let n_global = lg.num_global();
    let threads = cfg.threads_per_rank.max(1);
    // Hoisted copy: the parallel sweep closure must not capture `ctx`
    // (it holds the non-Sync communicator).
    let two_m = ctx.two_m;

    let k_local: Vec<Weight> = (0..nlocal).map(|l| lg.weighted_degree(l)).collect();
    let state = SweepState::new(&k_local, lg);
    let mut ghost_comm: Vec<VertexId> = Vec::new();

    let mut et: Option<EtTracker> = cfg
        .variant
        .alpha()
        .map(|alpha| EtTracker::new(nlocal, first, alpha, cfg.seed));
    let sweep_order: Vec<usize> = if cfg.index_order_sweep {
        (0..nlocal).collect()
    } else {
        louvain_graph::hash::shuffled_order(
            nlocal,
            cfg.seed ^ (phase_idx as u64).wrapping_mul(0x9e37) ^ first,
        )
    };

    let mut compute = WorkCounter::default();
    let mut comm_seconds = 0.0;
    let mut reduce_seconds = 0.0;

    // Distance-1 coloring, needed by the `color_sweeps` sub-round
    // extension and/or the colored deterministic batch schedule. Computed
    // once per phase with a thread-count-independent seed, so the
    // coloring — and with it every colored-schedule trajectory — is fixed
    // across `threads_per_rank` settings.
    let colored_batches = match cfg.sweep {
        SweepMode::Colored => true,
        SweepMode::Auto => threads > 1,
        SweepMode::Relaxed => false,
    };
    let coloring: Option<(Vec<u32>, u32)> = if cfg.color_sweeps || colored_batches {
        let t0 = comm.stats().modeled_seconds();
        let res = distributed_coloring(comm, lg, ghosts, cfg.seed ^ 0xC0105);
        comm_seconds += comm.stats().modeled_seconds() - t0;
        louvain_obs::counter_add("sweep.colors", res.1 as u64);
        Some(res)
    } else {
        None
    };
    // Sub-rounds (one exchange per color class) only under `color_sweeps`;
    // the colored batch schedule shares one exchange across all classes.
    let num_rounds = if cfg.color_sweeps {
        coloring.as_ref().map_or(1, |&(_, nc)| nc as usize)
    } else {
        1
    };
    // The colored schedule dispatches one parallel region per color batch,
    // so workers are kept alive for the whole phase instead of respawned.
    let pool = colored_batches.then(|| WorkerPool::new(threads));

    // Per-phase scratch arena: every buffer of the four-step loop is
    // allocated once here and recycled across iterations.
    let mut scratch = IterScratch::new(nlocal, comm.size());
    // Delta-refresh policy state. Both inputs advance in lockstep on all
    // ranks (exchanges are collective, the move count is all-reduced), so
    // every rank picks the same refresh flavour each time.
    let mut have_baseline = false;
    let mut prev_moves_global = u64::MAX;

    // Distributed vertex following: pendant vertices pre-join their
    // unique neighbor's singleton community before the first sweep.
    // Collective (one ghost exchange of pendant flags + one delta push),
    // so every rank must agree on the flag.
    if cfg.vertex_following && phase_idx == 0 {
        let t0 = comm.stats().modeled_seconds();
        apply_vertex_following(
            comm,
            lg,
            ghosts,
            &state,
            &k_local,
            cfg.neighborhood_collectives,
        );
        comm_seconds += comm.stats().modeled_seconds() - t0;
    }

    let mut traces: Vec<IterationTrace> = Vec::new();
    let mut prev_q = f64::NEG_INFINITY;
    let mut iterations = 0;
    let mut etc_exit = false;

    while iterations < cfg.max_iterations {
        iterations += 1;
        let mut iter_span = louvain_obs::span!("iteration", phase = phase_idx, iter = iterations);
        let edges_at_iter_start = compute.edges_scanned;
        // Telemetry baseline for this iteration's ghost-traffic delta;
        // behind the same one-relaxed-load gate as every recording site.
        let ghost_bytes_at_start = if louvain_obs::enabled() {
            comm.stats().step_bytes(CommStep::GhostRefresh)
        } else {
            0
        };
        scratch.active.clear();
        scratch.active.extend((0..nlocal).map(|l| match &et {
            Some(t) => t.is_active(phase_idx, iterations, l),
            None => true,
        }));
        for m in &state.moved {
            m.store(false, Ordering::Relaxed);
        }
        let mut local_moves = 0u64;

        // One sub-round per color class (one total without coloring).
        for round in 0..num_rounds {
            let in_round = |l: usize| match &coloring {
                Some((color, _)) if cfg.color_sweeps => color[l] as usize == round,
                _ => true,
            };

            // -- Step 1: receive the latest ghost vertex communities. -----
            let use_delta = cfg.delta_ghost_refresh
                && have_baseline
                && prev_moves_global.saturating_mul(4) < n_global;
            let t0 = comm.stats().modeled_seconds();
            comm.with_step(CommStep::GhostRefresh, || {
                exchange_ghosts(
                    comm,
                    ghosts,
                    &state,
                    &mut scratch,
                    &mut ghost_comm,
                    cfg.neighborhood_collectives,
                    use_delta,
                );
            });
            have_baseline = true;
            comm_seconds += comm.stats().modeled_seconds() - t0;

            // -- Step 2: pull a_c for remote communities we may join. ------
            scratch.needed.clear();
            for (l, &is_active) in scratch.active.iter().enumerate() {
                if !is_active || !in_round(l) {
                    continue;
                }
                let cu = state.comm_of_local(l);
                if !lg.owns(cu) {
                    scratch.needed.insert(cu);
                }
                for (u, _) in lg.neighbors(l) {
                    compute.edges_scanned += 1;
                    let c = if lg.owns(u) {
                        state.comm_of_local((u - first) as usize)
                    } else {
                        ghost_comm[ghosts.slot_of(u)]
                    };
                    if !lg.owns(c) {
                        scratch.needed.insert(c);
                    }
                }
            }
            let t0 = comm.stats().modeled_seconds();
            for buf in &mut scratch.requests {
                buf.clear();
            }
            for &c in scratch.needed.iter() {
                scratch.requests[part.owner_of(c)].push(c);
            }
            // Keyed exchange: owners reply (community, a_c, size), so the
            // request buffers need not be retained (or cloned) to decode
            // the positional replies; both receive sides are reclaimed as
            // next round's send buffers.
            let reply_vals = comm.with_step(CommStep::CommunityPull, || {
                let incoming = comm.all_to_all_v(std::mem::take(&mut scratch.requests));
                for buf in &mut scratch.replies {
                    buf.clear();
                }
                for (j, ids) in incoming.iter().enumerate() {
                    scratch.replies[j].extend(ids.iter().map(|&c| {
                        let i = (c - first) as usize;
                        (c, state.a[i].load(), state.size[i].load(Ordering::Relaxed))
                    }));
                }
                reclaim(&mut scratch.requests, incoming);
                comm.all_to_all_v(std::mem::take(&mut scratch.replies))
            });
            scratch.remote_a.clear();
            for vals in &reply_vals {
                for &(c, a, sz) in vals {
                    scratch.remote_a.insert(c, (a, sz));
                }
            }
            reclaim(&mut scratch.replies, reply_vals);
            comm_seconds += comm.stats().modeled_seconds() - t0;

            // -- Step 3: the compute sweep (lines 6–9). --------------------
            // Sequential when threads_per_rank == 1 (deterministic, the
            // paper's per-process order); rayon-parallel over the shared
            // atomic state otherwise (the paper's OpenMP loop).
            let guard = !cfg.disable_singleton_guard;
            scratch.round_vertices.clear();
            {
                let active = &scratch.active;
                scratch.round_vertices.extend(
                    sweep_order
                        .iter()
                        .copied()
                        .filter(|&l| active[l] && in_round(l)),
                );
            }
            let acc: SweepAcc = {
                let _sweep_span = louvain_obs::span!("sweep", iter = iterations, round = round);
                let acc = if let Some(pool) = &pool {
                    let mut batches = std::mem::take(&mut scratch.batches);
                    let acc = colored_sweep(
                        pool,
                        coloring
                            .as_ref()
                            .expect("colored schedule needs a coloring"),
                        lg,
                        ghosts,
                        &ghost_comm,
                        &state,
                        &k_local,
                        two_m,
                        guard,
                        &scratch,
                        &mut batches,
                        iterations,
                        round,
                    );
                    scratch.batches = batches;
                    acc
                } else if threads <= 1 {
                    let mut acc = SweepAcc::default();
                    let mut weights = scratch.take_weights();
                    for &l in &scratch.round_vertices {
                        try_move(
                            l,
                            lg,
                            ghosts,
                            &ghost_comm,
                            &state,
                            &k_local,
                            two_m,
                            guard,
                            &scratch.remote_a,
                            &mut acc,
                            &mut weights,
                        );
                    }
                    scratch.put_weights(weights);
                    acc
                } else {
                    let chunk = scratch.round_vertices.len().div_ceil(threads * 4).max(64);
                    let scratch_ref = &scratch;
                    scratch
                        .round_vertices
                        .par_chunks(chunk)
                        .map(|chunk| {
                            let mut acc = SweepAcc::default();
                            let mut weights = scratch_ref.take_weights();
                            for &l in chunk {
                                try_move(
                                    l,
                                    lg,
                                    ghosts,
                                    &ghost_comm,
                                    &state,
                                    &k_local,
                                    two_m,
                                    guard,
                                    &scratch_ref.remote_a,
                                    &mut acc,
                                    &mut weights,
                                );
                            }
                            scratch_ref.put_weights(weights);
                            acc
                        })
                        .reduce(SweepAcc::default, SweepAcc::merge)
                };
                // Advance the tracing layer's modeled clock so the sweep
                // span carries modeled compute time next to wall time.
                let work = WorkCounter {
                    edges_scanned: acc.edges,
                    vertices_processed: acc.vertices,
                };
                louvain_obs::add_modeled_seconds(
                    work.modeled_seconds() / crate::stats::parallel_speedup(threads),
                );
                acc
            };
            local_moves += acc.moves;
            compute.edges_scanned += acc.edges;
            compute.vertices_processed += acc.vertices;
            louvain_obs::counter_add("sweep.moves", acc.moves);
            louvain_obs::counter_add("sweep.vertices", acc.vertices);
            louvain_obs::counter_add("sweep.edges", acc.edges);

            // -- Step 3b: push deltas to community owners (lines 10–11). --
            let t0 = comm.stats().modeled_seconds();
            for buf in &mut scratch.delta_msgs {
                buf.clear();
            }
            for (&c, &(da, ds)) in &acc.deltas {
                scratch.delta_msgs[part.owner_of(c)].push((c, da, ds));
            }
            let received_deltas = comm.with_step(CommStep::DeltaPush, || {
                comm.all_to_all_v(std::mem::take(&mut scratch.delta_msgs))
            });
            for msgs in &received_deltas {
                for &(c, da, ds) in msgs {
                    let i = (c - first) as usize;
                    state.a[i].fetch_add(da);
                    let cur = state.size[i].load(Ordering::Relaxed) as i64;
                    state.size[i].store((cur + ds) as u64, Ordering::Relaxed);
                }
            }
            reclaim(&mut scratch.delta_msgs, received_deltas);
            comm_seconds += comm.stats().modeled_seconds() - t0;
        }

        // -- Step 4: global modularity (lines 12–13). ----------------------
        let (e_in_local, a2_local) = local_modularity_terms(lg, ghosts, &state, &ghost_comm);
        compute.edges_scanned += lg.num_local_arcs() as u64;
        let t0 = comm.stats().modeled_seconds();
        let (e_in, a2, moves_global) = comm.with_step(CommStep::Reduction, || {
            (
                comm.all_reduce(e_in_local, ReduceOp::Sum),
                comm.all_reduce(a2_local, ReduceOp::Sum),
                comm.all_reduce(local_moves, ReduceOp::Sum),
            )
        });
        reduce_seconds += comm.stats().modeled_seconds() - t0;
        prev_moves_global = moves_global;
        let q = if ctx.two_m > 0.0 {
            e_in / ctx.two_m - a2 / (ctx.two_m * ctx.two_m)
        } else {
            0.0
        };

        // -- ET bookkeeping / ghost pruning / ETC exit. --------------------
        let mut inactive_global = 0u64;
        if let Some(t) = &mut et {
            for (l, m) in state.moved.iter().enumerate() {
                t.update(l, m.load(Ordering::Relaxed));
            }
            if cfg.prune_inactive_ghosts {
                let frozen = t.drain_newly_frozen();
                let t0 = comm.stats().modeled_seconds();
                ghosts.prune(comm, lg, &frozen);
                comm_seconds += comm.stats().modeled_seconds() - t0;
            }
            if cfg.variant.uses_etc_exit() {
                let t0 = comm.stats().modeled_seconds();
                inactive_global = comm.with_step(CommStep::Reduction, || {
                    comm.all_reduce(t.num_inactive(), ReduceOp::Sum)
                });
                comm_seconds += comm.stats().modeled_seconds() - t0;
            }
        }
        traces.push(IterationTrace {
            modularity: q,
            moves: moves_global,
            inactive: inactive_global,
            local_edges: compute.edges_scanned - edges_at_iter_start,
        });
        iter_span.arg("moves", moves_global);
        iter_span.arg("q", q);
        louvain_obs::gauge_set("modularity", q);
        if louvain_obs::telemetry_enabled() {
            // Convergence telemetry: the global fields (q, delta-Q,
            // moves) are all-reduced and identical on every rank; the
            // per-rank fields sum exactly across ranks because each
            // vertex and each community has exactly one owner.
            let mut community_sizes = louvain_obs::Histogram::default();
            let mut communities = 0u64;
            for sz in &state.size {
                let sz = sz.load(Ordering::Relaxed);
                if sz > 0 {
                    communities += 1;
                    community_sizes.observe(sz);
                }
            }
            louvain_obs::record_iteration(louvain_obs::IterationRecord {
                phase: phase_idx as u64,
                iteration: (iterations - 1) as u64,
                modularity: q,
                delta_q: if prev_q.is_finite() { q - prev_q } else { 0.0 },
                moves: moves_global,
                active: scratch.active.iter().filter(|&&a| a).count() as u64,
                vertices: nlocal as u64,
                communities,
                community_sizes,
                ghost_bytes: comm.stats().step_bytes(CommStep::GhostRefresh) - ghost_bytes_at_start,
            });
        }

        if cfg.variant.uses_etc_exit()
            && inactive_global as f64 >= cfg.etc_exit_fraction * n_global as f64
        {
            etc_exit = true;
            break;
        }
        if moves_global == 0 || (prev_q.is_finite() && q - prev_q <= tau) {
            break;
        }
        prev_q = q;
    }

    // Final refresh so rebuild observes the final state of the ghosts,
    // then recompute modularity once WITHOUT lag: the per-iteration values
    // above drive convergence exactly as in the paper (stale ghost state),
    // but the reported phase modularity must be exact. Pruned ghosts are
    // frozen, so their cached values are already final.
    let use_delta =
        cfg.delta_ghost_refresh && have_baseline && prev_moves_global.saturating_mul(4) < n_global;
    let t0 = comm.stats().modeled_seconds();
    comm.with_step(CommStep::GhostRefresh, || {
        exchange_ghosts(
            comm,
            ghosts,
            &state,
            &mut scratch,
            &mut ghost_comm,
            cfg.neighborhood_collectives,
            use_delta,
        );
    });
    comm_seconds += comm.stats().modeled_seconds() - t0;
    let comm_of_local = std::mem::take(&mut scratch.comm_snapshot);
    let (e_in_local, a2_local) = local_modularity_terms(lg, ghosts, &state, &ghost_comm);
    let t0 = comm.stats().modeled_seconds();
    let (e_in, a2) = comm.with_step(CommStep::Reduction, || {
        (
            comm.all_reduce(e_in_local, ReduceOp::Sum),
            comm.all_reduce(a2_local, ReduceOp::Sum),
        )
    });
    reduce_seconds += comm.stats().modeled_seconds() - t0;
    let final_q = if ctx.two_m > 0.0 {
        e_in / ctx.two_m - a2 / (ctx.two_m * ctx.two_m)
    } else {
        0.0
    };

    // Memory gauges at phase end: buffer capacities are monotone within
    // a phase, so this samples the arena's and wire pools' high-water
    // marks (min/max land in the gauge stats across phases).
    if louvain_obs::enabled() {
        louvain_obs::gauge_set("mem.scratch_bytes", scratch.approx_bytes() as f64);
        louvain_obs::gauge_set("mem.wire_bytes", ghosts.wire_bytes() as f64);
    }

    PhaseResult {
        comm_of_local,
        ghost_comm,
        owned_a: state.snapshot_a(),
        modularity: final_q,
        iterations,
        traces,
        compute,
        comm_seconds,
        reduce_seconds,
        etc_exit,
        pruned_ghosts: ghosts.num_pruned(),
    }
}

/// Distributed vertex following (phase 0 only), chain-collapsing flavour.
///
/// Degree-1 *chains* — not just direct pendants — are peeled iteratively:
/// each round, every vertex with exactly one still-alive non-loop
/// neighbor follows that neighbor and drops out, exposing the next link.
/// Mutual pendant pairs (an isolated edge: each endpoint is the other's
/// unique alive neighbor) collapse toward the smaller id — following
/// blindly would swap them instead of merging. Peeling repeats until a
/// global round removes nothing.
///
/// A peeled vertex's recorded parent may itself be peeled in a later
/// round, so chains are then resolved to their surviving *anchor* by
/// distributed pointer chasing (owners answer "alive, or else forward to
/// my parent" pulls), and every peeled vertex joins its anchor's
/// singleton community in one delta push. Anchors are alive and have
/// never moved, so the anchor's community id equals its vertex id.
///
/// All rounds are collective (flag ghost exchanges + an all-reduced
/// peel/unresolved count), so every rank runs the same number of them.
/// Peeled vertices stay active in later sweeps: they may still migrate
/// once real modularity information starts flowing.
fn apply_vertex_following(
    comm: &Comm,
    lg: &LocalGraph,
    ghosts: &GhostLayer,
    state: &SweepState,
    k_local: &[Weight],
    neighborhood: bool,
) {
    let part = lg.partition();
    let first = lg.first_vertex();
    let nlocal = lg.num_local();
    // Vertex-following traffic keeps its default `Other` attribution;
    // the explicit scopes give it wait/transfer sub-spans so the traced
    // byte counters reconcile with the sub-span totals.
    let refresh = |vals: &[u64], out: &mut Vec<u64>| {
        comm.with_step(CommStep::Other, || {
            if neighborhood {
                ghosts.refresh_neighborhood(comm, vals, out);
            } else {
                ghosts.refresh(comm, vals, out);
            }
        });
    };

    // -- Peeling rounds. ---------------------------------------------------
    let mut alive: Vec<u64> = vec![1; nlocal];
    let mut parent: Vec<Option<VertexId>> = vec![None; nlocal];
    let mut qual_target: Vec<Option<VertexId>> = vec![None; nlocal];
    let mut ghost_alive: Vec<u64> = Vec::new();
    let mut ghost_qual: Vec<u64> = Vec::new();
    loop {
        refresh(&alive, &mut ghost_alive);
        {
            let alive_of = |u: VertexId| -> bool {
                if lg.owns(u) {
                    alive[(u - first) as usize] == 1
                } else {
                    ghost_alive[ghosts.slot_of(u)] == 1
                }
            };
            for l in 0..nlocal {
                qual_target[l] = None;
                if alive[l] == 0 {
                    continue;
                }
                let v = lg.to_global(l);
                let mut nbrs = lg.neighbors(l).filter(|&(u, _)| u != v && alive_of(u));
                qual_target[l] = match (nbrs.next(), nbrs.next()) {
                    (Some((u, _)), None) => Some(u),
                    _ => None,
                };
            }
        }
        let qual: Vec<u64> = qual_target.iter().map(|t| u64::from(t.is_some())).collect();
        refresh(&qual, &mut ghost_qual);
        let qual_of = |u: VertexId| -> bool {
            if lg.owns(u) {
                qual[(u - first) as usize] == 1
            } else {
                ghost_qual[ghosts.slot_of(u)] == 1
            }
        };
        let mut peeled = 0u64;
        for l in 0..nlocal {
            let Some(u) = qual_target[l] else { continue };
            let v = lg.to_global(l);
            // If the parent also qualifies, the relation is mutual (its
            // unique alive neighbor must be us): only the larger id
            // follows, the smaller survives as the pair's anchor.
            if qual_of(u) && u > v {
                continue;
            }
            alive[l] = 0;
            parent[l] = Some(u);
            peeled += 1;
        }
        let peeled_global =
            comm.with_step(CommStep::Other, || comm.all_reduce(peeled, ReduceOp::Sum));
        if peeled_global == 0 {
            break;
        }
    }

    // -- Pointer chasing: resolve chains to their surviving anchors. -------
    let mut anchor = parent;
    let mut resolved: Vec<bool> = anchor.iter().map(|t| t.is_none()).collect();
    loop {
        let mut requests: Vec<Vec<VertexId>> = vec![Vec::new(); comm.size()];
        for (l, r) in resolved.iter().enumerate() {
            if !r {
                let t = anchor[l].expect("unresolved vertex without a target");
                requests[part.owner_of(t)].push(t);
            }
        }
        let incoming = comm.with_step(CommStep::Other, || comm.all_to_all_v(requests));
        let replies: Vec<Vec<(VertexId, u64, VertexId)>> = incoming
            .iter()
            .map(|ids| {
                ids.iter()
                    .map(|&u| {
                        let i = (u - first) as usize;
                        if alive[i] == 1 {
                            (u, 1, u)
                        } else {
                            (u, 0, parent_of(&anchor, i))
                        }
                    })
                    .collect()
            })
            .collect();
        let reply_vals = comm.with_step(CommStep::Other, || comm.all_to_all_v(replies));
        let mut next: FastMap<VertexId, (bool, VertexId)> = fast_map();
        for vals in &reply_vals {
            for &(u, alive_flag, nxt) in vals {
                next.insert(u, (alive_flag == 1, nxt));
            }
        }
        let mut unresolved = 0u64;
        for l in 0..nlocal {
            if resolved[l] {
                continue;
            }
            let t = anchor[l].expect("unresolved vertex without a target");
            let &(is_alive, nxt) = next.get(&t).expect("owner did not answer a pull");
            if is_alive {
                resolved[l] = true;
            } else {
                anchor[l] = Some(nxt);
                unresolved += 1;
            }
        }
        let unresolved_global = comm.with_step(CommStep::Other, || {
            comm.all_reduce(unresolved, ReduceOp::Sum)
        });
        if unresolved_global == 0 {
            break;
        }
    }

    // -- Apply: every peeled vertex joins its anchor's singleton. ----------
    let mut deltas: FastMap<VertexId, (Weight, i64)> = fast_map();
    let mut collapsed = 0u64;
    for l in 0..nlocal {
        if alive[l] == 1 {
            continue;
        }
        let t = anchor[l].expect("peeled vertex without an anchor");
        let kv = k_local[l];
        // Leave own singleton community (owned here by construction).
        state.comm[l].store(t, Ordering::Relaxed);
        state.a[l].fetch_add(-kv);
        state.size[l].fetch_sub(1, Ordering::Relaxed);
        collapsed += 1;
        // Join the anchor's community.
        if lg.owns(t) {
            let i = (t - first) as usize;
            state.a[i].fetch_add(kv);
            state.size[i].fetch_add(1, Ordering::Relaxed);
        } else {
            let d = deltas.entry(t).or_insert((0.0, 0));
            d.0 += kv;
            d.1 += 1;
        }
    }
    louvain_obs::counter_add("vf.collapsed", collapsed);
    let mut delta_msgs: Vec<Vec<(VertexId, f64, i64)>> = vec![Vec::new(); comm.size()];
    for (&c, &(da, ds)) in &deltas {
        delta_msgs[part.owner_of(c)].push((c, da, ds));
    }
    let received = comm.with_step(CommStep::Other, || comm.all_to_all_v(delta_msgs));
    for msgs in &received {
        for &(c, da, ds) in msgs {
            let i = (c - first) as usize;
            state.a[i].fetch_add(da);
            let cur = state.size[i].load(Ordering::Relaxed) as i64;
            state.size[i].store((cur + ds) as u64, Ordering::Relaxed);
        }
    }
}

/// Current forward pointer of a dead local vertex during pointer chasing.
/// The anchor array advances as resolution proceeds, so answering pulls
/// from it (rather than from the original parents) gives querying ranks
/// path-compressed hops for free.
fn parent_of(anchor: &[Option<VertexId>], i: usize) -> VertexId {
    anchor[i].expect("dead vertex without a parent")
}

/// This rank's contribution to `Σ e_in` and `Σ a_c²` (Eq. 2).
fn local_modularity_terms(
    lg: &LocalGraph,
    ghosts: &GhostLayer,
    state: &SweepState,
    ghost_comm: &[VertexId],
) -> (f64, f64) {
    let first = lg.first_vertex();
    let mut e_in_local = 0.0;
    for l in 0..lg.num_local() {
        let cv = state.comm_of_local(l);
        let v_global = lg.to_global(l);
        for (u, w) in lg.neighbors(l) {
            let cu = if u == v_global {
                cv
            } else if lg.owns(u) {
                state.comm_of_local((u - first) as usize)
            } else {
                ghost_comm[ghosts.slot_of(u)]
            };
            if cu == cv {
                e_in_local += w;
            }
        }
    }
    let a2_local: f64 = state
        .a
        .iter()
        .map(|a| {
            let v = a.load();
            v * v
        })
        .sum();
    (e_in_local, a2_local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistConfig;
    use louvain_comm::run;
    use louvain_graph::community::modularity;
    use louvain_graph::{Csr, EdgeList, VertexPartition};

    fn two_triangles() -> Csr {
        Csr::from_edge_list(EdgeList::from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 1.0),
            ],
        ))
    }

    /// Run one phase on `p` ranks; return (global assignment, modularity).
    fn run_one_phase(g: &Csr, p: usize, cfg: &DistConfig) -> (Vec<VertexId>, f64) {
        let part = VertexPartition::balanced_vertices(g.num_vertices() as u64, p);
        let parts = LocalGraph::scatter(g, &part);
        let two_m = g.two_m();
        let outs = run(p, |c| {
            let lg = parts[c.rank()].clone();
            let mut ghosts = GhostLayer::build(c, &lg);
            let ctx = PhaseContext {
                comm: c,
                lg: &lg,
                two_m,
            };
            let r = louvain_phase(&ctx, &mut ghosts, cfg, 0, cfg.threshold);
            (r.comm_of_local, r.modularity)
        });
        let mut assignment = Vec::new();
        let q = outs[0].1;
        for (a, q_r) in outs {
            assert!((q_r - q).abs() < 1e-12, "ranks disagree on modularity");
            assignment.extend(a);
        }
        (assignment, q)
    }

    #[test]
    fn single_rank_phase_finds_triangles() {
        let g = two_triangles();
        let (assignment, q) = run_one_phase(&g, 1, &DistConfig::baseline());
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[1], assignment[2]);
        assert_eq!(assignment[3], assignment[4]);
        assert_ne!(assignment[0], assignment[3]);
        assert!(q > 0.3);
    }

    #[test]
    fn distributed_phase_matches_reference_modularity() {
        let g = two_triangles();
        for p in [1, 2, 3] {
            let (assignment, q) = run_one_phase(&g, p, &DistConfig::baseline());
            let q_ref = modularity(&g, &assignment);
            assert!(
                (q - q_ref).abs() < 1e-9,
                "p={p}: reported {q} vs reference {q_ref}"
            );
        }
    }

    #[test]
    fn phase_on_lfr_improves_modularity_on_many_ranks() {
        let g = louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(600, 5)).graph;
        let (assignment, q) = run_one_phase(&g, 4, &DistConfig::baseline());
        assert!(q > 0.4, "q = {q}");
        assert_eq!(assignment.len(), 600);
        let q_ref = modularity(&g, &assignment);
        assert!((q - q_ref).abs() < 1e-9);
    }

    #[test]
    fn vertex_following_merges_pendants_immediately() {
        // Star + pendant chain: 0-1, 0-2, 0-3 (star) and isolated edge 4-5.
        let g = Csr::from_edge_list(EdgeList::from_edges(
            6,
            [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (4, 5, 1.0)],
        ));
        let cfg = DistConfig {
            vertex_following: true,
            ..DistConfig::baseline()
        };
        for p in [1, 2, 3] {
            let (assignment, q) = run_one_phase(&g, p, &cfg);
            // All star leaves end with the hub.
            assert_eq!(assignment[1], assignment[0], "p={p}");
            assert_eq!(assignment[2], assignment[0], "p={p}");
            assert_eq!(assignment[3], assignment[0], "p={p}");
            // The pendant pair collapses toward the smaller id.
            assert_eq!(assignment[4], assignment[5], "p={p}");
            assert_eq!(assignment[4], 4, "p={p}");
            let q_ref = modularity(&g, &assignment);
            assert!((q - q_ref).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn vertex_following_preserves_quality_on_lfr() {
        let g = louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(800, 11)).graph;
        let base = run_one_phase(&g, 2, &DistConfig::baseline());
        let cfg = DistConfig {
            vertex_following: true,
            ..DistConfig::baseline()
        };
        let vf = run_one_phase(&g, 2, &cfg);
        assert!(vf.1 > base.1 - 0.05, "vf {} vs base {}", vf.1, base.1);
    }

    #[test]
    fn multithreaded_sweep_reaches_comparable_quality() {
        let g = louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(1_000, 9)).graph;
        let base = run_one_phase(&g, 2, &DistConfig::baseline());
        let cfg = DistConfig {
            threads_per_rank: 4,
            ..DistConfig::baseline()
        };
        let threaded = run_one_phase(&g, 2, &cfg);
        // Parallel interleaving changes the trajectory but not the
        // quality ballpark; the reported Q must still be exact for the
        // returned assignment.
        assert!(
            threaded.1 > base.1 - 0.1,
            "threaded {} vs sequential {}",
            threaded.1,
            base.1
        );
        let q_ref = modularity(&g, &threaded.0);
        assert!((threaded.1 - q_ref).abs() < 1e-9);
    }

    #[test]
    fn neighborhood_collectives_give_identical_results() {
        let g = louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(600, 6)).graph;
        let base = run_one_phase(&g, 3, &DistConfig::baseline());
        let cfg = DistConfig {
            neighborhood_collectives: true,
            ..DistConfig::baseline()
        };
        let nbr = run_one_phase(&g, 3, &cfg);
        assert_eq!(base.0, nbr.0, "assignments differ");
        assert_eq!(base.1, nbr.1);
    }

    #[test]
    fn delta_ghost_refresh_gives_identical_results() {
        // The delta refresh promises a *bit-identical* trajectory, so the
        // comparison is exact equality (not a tolerance) on three
        // generator families at 1, 2 and 8 ranks — including the p=1
        // degenerate case where there are no ghosts at all.
        let graphs = [
            louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(600, 6)).graph,
            louvain_graph::gen::ssca2(louvain_graph::gen::Ssca2Params {
                n: 500,
                max_clique_size: 12,
                inter_clique_prob: 0.05,
                seed: 7,
            })
            .graph,
            louvain_graph::gen::rmat(louvain_graph::gen::RmatParams::social(9, 8, 11)).graph,
        ];
        let delta_cfg = DistConfig {
            delta_ghost_refresh: true,
            ..DistConfig::baseline()
        };
        for (gi, g) in graphs.iter().enumerate() {
            for p in [1, 2, 8] {
                let base = run_one_phase(g, p, &DistConfig::baseline());
                let delta = run_one_phase(g, p, &delta_cfg);
                assert_eq!(base.0, delta.0, "graph {gi}, p={p}: assignments differ");
                assert_eq!(base.1, delta.1, "graph {gi}, p={p}: modularity differs");
            }
        }
    }

    #[test]
    fn delta_refresh_composes_with_neighborhood_and_pruning() {
        let g = louvain_graph::gen::ssca2(louvain_graph::gen::Ssca2Params {
            n: 600,
            max_clique_size: 15,
            inter_clique_prob: 0.05,
            seed: 3,
        })
        .graph;
        // Neighborhood collectives: the delta flavour rides the same
        // neighbor topology, so results stay identical.
        let nbr = DistConfig {
            neighborhood_collectives: true,
            ..DistConfig::baseline()
        };
        let nbr_delta = DistConfig {
            delta_ghost_refresh: true,
            ..nbr.clone()
        };
        let a = run_one_phase(&g, 4, &nbr);
        let b = run_one_phase(&g, 4, &nbr_delta);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        // ET + inactive-ghost pruning: pruned serve slots are excluded
        // from delta payloads exactly as from full ones.
        let et = DistConfig {
            prune_inactive_ghosts: true,
            ..DistConfig::with_variant(crate::Variant::Et { alpha: 0.75 })
        };
        let et_delta = DistConfig {
            delta_ghost_refresh: true,
            ..et.clone()
        };
        let a = run_one_phase(&g, 3, &et);
        let b = run_one_phase(&g, 3, &et_delta);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let q_ref = modularity(&g, &b.0);
        assert!((b.1 - q_ref).abs() < 1e-9);
    }

    #[test]
    fn modularity_traces_are_deterministic_and_delta_invariant() {
        let g = louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(500, 3)).graph;
        let part = VertexPartition::balanced_vertices(500, 2);
        let parts = LocalGraph::scatter(&g, &part);
        let two_m = g.two_m();
        let run_traces = |cfg: &DistConfig| -> Vec<Vec<(f64, u64)>> {
            run(2, |c| {
                let lg = parts[c.rank()].clone();
                let mut ghosts = GhostLayer::build(c, &lg);
                let ctx = PhaseContext {
                    comm: c,
                    lg: &lg,
                    two_m,
                };
                let r = louvain_phase(&ctx, &mut ghosts, cfg, 0, cfg.threshold);
                r.traces.iter().map(|t| (t.modularity, t.moves)).collect()
            })
        };
        let base = run_traces(&DistConfig::baseline());
        let again = run_traces(&DistConfig::baseline());
        assert_eq!(
            base, again,
            "single-threaded sweeps must be bit-reproducible"
        );
        let delta_cfg = DistConfig {
            delta_ghost_refresh: true,
            ..DistConfig::baseline()
        };
        let delta = run_traces(&delta_cfg);
        assert_eq!(base, delta, "delta refresh must not perturb the trajectory");
    }

    #[test]
    fn colored_sweeps_converge_with_comparable_quality() {
        let g = louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(600, 7)).graph;
        let base = run_one_phase(&g, 3, &DistConfig::baseline());
        let cfg = DistConfig {
            color_sweeps: true,
            ..DistConfig::baseline()
        };
        let colored = run_one_phase(&g, 3, &cfg);
        assert!(
            colored.1 > base.1 - 0.1,
            "colored {} vs base {}",
            colored.1,
            base.1
        );
    }

    #[test]
    fn pruning_preserves_results_for_frozen_et() {
        // With pruning on, the phase output must still be a consistent
        // (reported == recomputed) clustering.
        let g = louvain_graph::gen::ssca2(louvain_graph::gen::Ssca2Params {
            n: 600,
            max_clique_size: 15,
            inter_clique_prob: 0.05,
            seed: 3,
        })
        .graph;
        let cfg = DistConfig {
            prune_inactive_ghosts: true,
            ..DistConfig::with_variant(crate::Variant::Et { alpha: 0.75 })
        };
        let (assignment, q) = run_one_phase(&g, 3, &cfg);
        let q_ref = modularity(&g, &assignment);
        assert!(
            (q - q_ref).abs() < 1e-9,
            "reported {q} vs reference {q_ref}"
        );
    }

    #[test]
    fn etc_variant_terminates_and_reports_inactive() {
        let g = louvain_graph::gen::ssca2(louvain_graph::gen::Ssca2Params {
            n: 600,
            max_clique_size: 15,
            inter_clique_prob: 0.05,
            seed: 2,
        })
        .graph;
        let cfg = DistConfig::with_variant(crate::Variant::Etc { alpha: 0.75 });
        let part = VertexPartition::balanced_vertices(600, 2);
        let parts = LocalGraph::scatter(&g, &part);
        let two_m = g.two_m();
        let outs = run(2, |c| {
            let lg = parts[c.rank()].clone();
            let mut ghosts = GhostLayer::build(c, &lg);
            let ctx = PhaseContext {
                comm: c,
                lg: &lg,
                two_m,
            };
            let r = louvain_phase(&ctx, &mut ghosts, &cfg, 0, cfg.threshold);
            (r.iterations, r.traces.last().unwrap().inactive)
        });
        // Both ranks agree on iteration count (bulk synchronous).
        assert_eq!(outs[0].0, outs[1].0);
    }

    fn parity_graphs() -> Vec<Csr> {
        vec![
            louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(600, 6)).graph,
            louvain_graph::gen::ssca2(louvain_graph::gen::Ssca2Params {
                n: 500,
                max_clique_size: 12,
                inter_clique_prob: 0.05,
                seed: 7,
            })
            .graph,
            louvain_graph::gen::rmat(louvain_graph::gen::RmatParams::social(9, 8, 11)).graph,
        ]
    }

    #[test]
    fn colored_schedule_is_bit_identical_across_thread_counts() {
        // The tentpole determinism claim: for a fixed coloring (the
        // coloring seed never depends on the thread count), the colored
        // schedule produces byte-identical assignments and bit-identical
        // modularity at threads ∈ {1, 2, 4}, across {1, 2, 8} ranks and
        // all three bench generator families.
        for (gi, g) in parity_graphs().iter().enumerate() {
            for p in [1, 2, 8] {
                let runs: Vec<(Vec<VertexId>, f64)> = [1usize, 2, 4]
                    .iter()
                    .map(|&t| {
                        let cfg = DistConfig {
                            sweep: crate::SweepMode::Colored,
                            threads_per_rank: t,
                            ..DistConfig::baseline()
                        };
                        run_one_phase(g, p, &cfg)
                    })
                    .collect();
                for (i, r) in runs.iter().enumerate().skip(1) {
                    assert_eq!(
                        runs[0].0,
                        r.0,
                        "graph {gi}, p={p}: threads=1 vs threads={} assignments differ",
                        [1, 2, 4][i]
                    );
                    assert_eq!(
                        runs[0].1.to_bits(),
                        r.1.to_bits(),
                        "graph {gi}, p={p}: modularity differs"
                    );
                }
            }
        }
    }

    #[test]
    fn auto_mode_keeps_seed_behavior_on_one_thread() {
        // Auto at threads=1 must remain the seed's sequential sweep
        // bit-for-bit; Auto at threads>1 must equal Colored at the same
        // thread count (same coloring, same frozen-batch schedule).
        let g = parity_graphs().remove(0);
        for p in [1, 3] {
            let auto1 = run_one_phase(&g, p, &DistConfig::baseline());
            let explicit_seq = run_one_phase(
                &g,
                p,
                &DistConfig {
                    sweep: crate::SweepMode::Relaxed,
                    ..DistConfig::baseline()
                },
            );
            assert_eq!(auto1.0, explicit_seq.0, "p={p}");
            assert_eq!(auto1.1.to_bits(), explicit_seq.1.to_bits(), "p={p}");
            let auto4 = run_one_phase(
                &g,
                p,
                &DistConfig {
                    threads_per_rank: 4,
                    ..DistConfig::baseline()
                },
            );
            let colored4 = run_one_phase(
                &g,
                p,
                &DistConfig {
                    sweep: crate::SweepMode::Colored,
                    threads_per_rank: 4,
                    ..DistConfig::baseline()
                },
            );
            assert_eq!(auto4.0, colored4.0, "p={p}");
            assert_eq!(auto4.1.to_bits(), colored4.1.to_bits(), "p={p}");
        }
    }

    #[test]
    fn colored_schedule_quality_parity_with_sequential() {
        // Quality parity across {1, 2, 8} ranks × 3 generators: the
        // colored frozen-batch trajectory differs from the sequential one
        // (Jacobi- vs Gauss-Seidel-style updates within a batch), but the
        // final modularity stays within the documented tolerance, and the
        // reported value is exact for the reported assignment.
        for (gi, g) in parity_graphs().iter().enumerate() {
            for p in [1, 2, 8] {
                let base = run_one_phase(g, p, &DistConfig::baseline());
                let colored = run_one_phase(
                    g,
                    p,
                    &DistConfig {
                        sweep: crate::SweepMode::Colored,
                        threads_per_rank: 4,
                        ..DistConfig::baseline()
                    },
                );
                assert!(
                    colored.1 > base.1 - 0.1,
                    "graph {gi}, p={p}: colored {} vs sequential {}",
                    colored.1,
                    base.1
                );
                let q_ref = modularity(g, &colored.0);
                assert!((colored.1 - q_ref).abs() < 1e-9, "graph {gi}, p={p}");
            }
        }
    }

    #[test]
    fn colored_schedule_composes_with_et_and_color_sweeps() {
        // Thread-count bit-identity must survive composition with the ET
        // activity filter (settled vertices skipped per batch) and the
        // color_sweeps sub-round extension (monochromatic rounds).
        let g = louvain_graph::gen::ssca2(louvain_graph::gen::Ssca2Params {
            n: 600,
            max_clique_size: 15,
            inter_clique_prob: 0.05,
            seed: 3,
        })
        .graph;
        for base_cfg in [
            DistConfig::with_variant(crate::Variant::Et { alpha: 0.25 }),
            DistConfig {
                color_sweeps: true,
                ..DistConfig::baseline()
            },
        ] {
            let t1 = run_one_phase(
                &g,
                2,
                &DistConfig {
                    sweep: crate::SweepMode::Colored,
                    threads_per_rank: 1,
                    ..base_cfg.clone()
                },
            );
            let t4 = run_one_phase(
                &g,
                2,
                &DistConfig {
                    sweep: crate::SweepMode::Colored,
                    threads_per_rank: 4,
                    ..base_cfg.clone()
                },
            );
            assert_eq!(t1.0, t4.0);
            assert_eq!(t1.1.to_bits(), t4.1.to_bits());
        }
    }

    #[test]
    fn vertex_following_collapses_chains() {
        // Path 0-1-2-3-4 hanging off triangle 4-5-6: iterative peeling
        // collapses the whole chain onto its anchor, where the old
        // single-round VF only captured direct pendants.
        let g = Csr::from_edge_list(EdgeList::from_edges(
            7,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 6, 1.0),
                (4, 6, 1.0),
            ],
        ));
        let cfg = DistConfig {
            vertex_following: true,
            ..DistConfig::baseline()
        };
        for p in [1, 2, 3] {
            let (assignment, q) = run_one_phase(&g, p, &cfg);
            // The chain 0-1-2-3 collapses with the triangle side it hangs
            // from: everything in 0..=3 lands in one community.
            assert_eq!(assignment[0], assignment[1], "p={p}");
            assert_eq!(assignment[1], assignment[2], "p={p}");
            assert_eq!(assignment[2], assignment[3], "p={p}");
            let q_ref = modularity(&g, &assignment);
            assert!((q - q_ref).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn work_counters_and_comm_time_are_recorded() {
        let g = two_triangles();
        let part = VertexPartition::balanced_vertices(6, 2);
        let parts = LocalGraph::scatter(&g, &part);
        let outs = run(2, |c| {
            let lg = parts[c.rank()].clone();
            let mut ghosts = GhostLayer::build(c, &lg);
            let ctx = PhaseContext {
                comm: c,
                lg: &lg,
                two_m: g.two_m(),
            };
            let r = louvain_phase(&ctx, &mut ghosts, &DistConfig::baseline(), 0, 1e-6);
            (r.compute, r.comm_seconds, r.reduce_seconds)
        });
        for (w, cs, rs) in outs {
            assert!(w.edges_scanned > 0);
            assert!(w.vertices_processed > 0);
            assert!(cs > 0.0);
            assert!(rs > 0.0);
        }
    }
}
