//! Reusable per-phase scratch buffers for the iteration hot loop.
//!
//! [`louvain_phase`](crate::iteration::louvain_phase) runs the paper's
//! four communication steps dozens of times per phase. The seed
//! implementation allocated every intermediate — the community snapshot,
//! the request/reply vectors of the a_c pull, the delta message buffers,
//! the per-thread neighbor-weight maps — from scratch on every round.
//! [`IterScratch`] owns all of them for the lifetime of a phase: buffers
//! are cleared between uses (which keeps their capacity) instead of
//! reallocated, and vectors that cross the simulated wire are reclaimed
//! from the receive side of the same collective (see [`reclaim`]), so
//! after the first iteration the steady state performs no allocation at
//! all on the exchange path.

use std::sync::Mutex;

use louvain_graph::hash::{FastMap, FastSet};
use louvain_graph::{VertexId, Weight};

/// Per-phase arena of reusable iteration buffers. `Sync` so the parallel
/// compute sweep can check neighbor-weight maps out of the shared pool.
pub struct IterScratch {
    /// Community snapshot taken immediately before each ghost exchange.
    pub comm_snapshot: Vec<VertexId>,
    /// Community values as of the *last* ghost exchange — the baseline the
    /// delta refresh diffs against. Empty until the first (always full)
    /// exchange of the phase.
    pub last_pushed: Vec<VertexId>,
    /// `changed[l]`: vertex `l`'s community differs from [`last_pushed`];
    /// rebuilt before every delta refresh.
    ///
    /// [`last_pushed`]: IterScratch::last_pushed
    pub changed: Vec<bool>,
    /// Per-vertex ET activity flags for the current iteration.
    pub active: Vec<bool>,
    /// Remote communities whose `a_c` must be pulled this round.
    pub needed: FastSet<VertexId>,
    /// Per-destination-rank request buffers for the a_c pull.
    pub requests: Vec<Vec<VertexId>>,
    /// Per-destination-rank keyed `(community, a_c, size)` reply buffers.
    pub replies: Vec<Vec<(VertexId, Weight, u64)>>,
    /// `a_c` and size of remote communities, rebuilt every round.
    pub remote_a: FastMap<VertexId, (Weight, u64)>,
    /// The vertex ids swept in the current (sub-)round.
    pub round_vertices: Vec<usize>,
    /// Per-destination-rank delta messages for the owner push.
    pub delta_msgs: Vec<Vec<(VertexId, f64, i64)>>,
    /// Per-color conflict-free batches of the colored sweep schedule,
    /// rebuilt (cleared, capacities kept) every round it runs.
    pub batches: Vec<Vec<usize>>,
    /// Neighbor-weight maps checked out by sweep workers (sequential or
    /// one per rayon chunk) and returned after the sweep.
    weights: Mutex<Vec<FastMap<VertexId, Weight>>>,
}

impl IterScratch {
    /// Arena for a rank with `nlocal` vertices in a world of `p` ranks.
    pub fn new(nlocal: usize, p: usize) -> Self {
        Self {
            comm_snapshot: Vec::with_capacity(nlocal),
            last_pushed: Vec::with_capacity(nlocal),
            changed: Vec::with_capacity(nlocal),
            active: Vec::with_capacity(nlocal),
            needed: FastSet::default(),
            requests: vec![Vec::new(); p],
            replies: vec![Vec::new(); p],
            remote_a: FastMap::default(),
            round_vertices: Vec::with_capacity(nlocal),
            delta_msgs: vec![Vec::new(); p],
            batches: Vec::new(),
            weights: Mutex::new(Vec::new()),
        }
    }

    /// Check a cleared neighbor-weight map out of the pool (allocating
    /// only if the pool is dry — i.e. the first sweep of the phase).
    pub fn take_weights(&self) -> FastMap<VertexId, Weight> {
        let mut m = self
            .weights
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        m.clear();
        m
    }

    /// Return a neighbor-weight map to the pool for the next sweep.
    pub fn put_weights(&self, m: FastMap<VertexId, Weight>) {
        self.weights
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(m);
    }

    /// Approximate resident bytes of the arena, from buffer *capacities*
    /// (not lengths): buffers only grow within a phase, so sampling at
    /// phase end yields the arena's high-water mark for the
    /// `mem.scratch_bytes` gauge.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        fn flat<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * size_of::<T>()) as u64
        }
        fn nested<T>(v: &[Vec<T>]) -> u64 {
            v.iter()
                .map(|b| (b.capacity() * size_of::<T>()) as u64)
                .sum()
        }
        let weights = self.weights.lock().unwrap_or_else(|e| e.into_inner());
        flat(&self.comm_snapshot)
            + flat(&self.last_pushed)
            + flat(&self.changed)
            + flat(&self.active)
            + (self.needed.capacity() * size_of::<VertexId>()) as u64
            + nested(&self.requests)
            + nested(&self.replies)
            + (self.remote_a.capacity() * size_of::<(VertexId, (Weight, u64))>()) as u64
            + flat(&self.round_vertices)
            + nested(&self.delta_msgs)
            + nested(&self.batches)
            + weights
                .iter()
                .map(|m| (m.capacity() * size_of::<(VertexId, Weight)>()) as u64)
                .sum::<u64>()
    }
}

/// Reclaim the vectors received from one collective as the send buffers
/// of the next: `dst` takes ownership of `used`'s (cleared) allocations.
/// Exchange patterns are near-symmetric round over round, so the
/// capacities stay warm.
pub fn reclaim<T>(dst: &mut Vec<Vec<T>>, mut used: Vec<Vec<T>>) {
    for b in &mut used {
        b.clear();
    }
    *dst = used;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_pool_recycles_maps() {
        let s = IterScratch::new(8, 2);
        let mut m = s.take_weights();
        m.insert(1, 2.0);
        let cap_hint = m.capacity();
        s.put_weights(m);
        let m2 = s.take_weights();
        assert!(m2.is_empty(), "pooled map must come back cleared");
        assert!(m2.capacity() >= cap_hint.min(1));
    }

    #[test]
    fn reclaim_clears_and_keeps_allocations() {
        let mut dst: Vec<Vec<u64>> = vec![Vec::new(); 2];
        let used = vec![vec![1, 2, 3], vec![4]];
        reclaim(&mut dst, used);
        assert_eq!(dst.len(), 2);
        assert!(dst.iter().all(|b| b.is_empty()));
        assert!(dst[0].capacity() >= 3);
    }
}
