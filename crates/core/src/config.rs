//! Configuration for the distributed Louvain algorithm.

/// The algorithm variants evaluated in the paper (Section V legend).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Variant {
    /// Algorithm 2 without Section IV-B heuristics.
    Baseline,
    /// τ modulated cyclically across phases (Fig 2).
    ThresholdCycling,
    /// Adaptive early termination with decay rate α (Eq. 3).
    Et { alpha: f64 },
    /// ET plus the extra global reduction of the inactive-vertex count;
    /// the phase exits once ≥ `etc_exit_fraction` of vertices are
    /// globally inactive.
    Etc { alpha: f64 },
    /// ET(α) combined with threshold cycling (Table VI).
    EtPlusCycling { alpha: f64 },
}

impl Variant {
    /// Display label matching the paper's figures ("ET(0.25)" etc.).
    pub fn label(&self) -> String {
        match self {
            Variant::Baseline => "Baseline".into(),
            Variant::ThresholdCycling => "Threshold Cycling".into(),
            Variant::Et { alpha } => format!("ET({alpha})"),
            Variant::Etc { alpha } => format!("ETC({alpha})"),
            Variant::EtPlusCycling { alpha } => format!("ET({alpha})+Cycling"),
        }
    }

    /// The α of any ET-family variant.
    pub fn alpha(&self) -> Option<f64> {
        match *self {
            Variant::Et { alpha } | Variant::Etc { alpha } | Variant::EtPlusCycling { alpha } => {
                Some(alpha)
            }
            _ => None,
        }
    }

    pub fn uses_cycling(&self) -> bool {
        matches!(
            self,
            Variant::ThresholdCycling | Variant::EtPlusCycling { .. }
        )
    }

    pub fn uses_etc_exit(&self) -> bool {
        matches!(self, Variant::Etc { .. })
    }
}

/// How the intra-rank compute sweep schedules its vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Sequential when `threads_per_rank <= 1` (the seed behaviour,
    /// bit-reproducible); the colored deterministic schedule otherwise.
    Auto,
    /// Always use the colored schedule, even on one thread. Results are
    /// bit-identical across thread counts for a fixed coloring (the
    /// coloring seed does not depend on the thread count, so they always
    /// are) — this is the mode the determinism tests pin.
    Colored,
    /// Ablation: the legacy racing parallel sweep (relaxed atomics, no
    /// conflict-free batches) when `threads_per_rank > 1`. Results then
    /// depend on thread interleaving, like the shared-memory baseline.
    Relaxed,
}

impl SweepMode {
    /// Stable label used in fingerprints and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            SweepMode::Auto => "auto",
            SweepMode::Colored => "colored",
            SweepMode::Relaxed => "relaxed",
        }
    }

    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(SweepMode::Auto),
            "colored" => Ok(SweepMode::Colored),
            "relaxed" => Ok(SweepMode::Relaxed),
            other => Err(format!(
                "unknown sweep mode {other:?} (expected auto|colored|relaxed)"
            )),
        }
    }
}

/// Tunables of the distributed runner.
#[derive(Debug, Clone)]
pub struct DistConfig {
    pub variant: Variant,
    /// Final (minimum) threshold τ; the paper's default is 1e-6.
    pub threshold: f64,
    /// Safety cap on phases.
    pub max_phases: usize,
    /// Safety cap on iterations per phase.
    pub max_iterations: usize,
    /// ETC exits the phase when this fraction of vertices is inactive
    /// globally (paper: 90%).
    pub etc_exit_fraction: f64,
    /// Seed for deterministic ET coin flips.
    pub seed: u64,
    /// Use MPI-3-style neighborhood collectives for the ghost refresh
    /// instead of a full all-to-all (the paper's future-work item: the
    /// per-message α cost then scales with the ghost topology degree, not
    /// with p−1).
    pub neighborhood_collectives: bool,
    /// With an ET variant: once a vertex is permanently inactive, its
    /// community is frozen, so owners announce it and peers stop
    /// refreshing that ghost (the paper's "communication that relates to
    /// inactive vertices can be prevented" refinement).
    pub prune_inactive_ghosts: bool,
    /// Distance-1 coloring sweeps (the paper's other future-work item):
    /// vertices are processed color class by color class with a ghost
    /// refresh and delta push between classes, so concurrently moved
    /// vertices are never adjacent. Fewer iterations, more communication
    /// per iteration.
    pub color_sweeps: bool,
    /// Ablation switch: disable the Vite singleton-swap guard.
    pub disable_singleton_guard: bool,
    /// Ablation switch: sweep vertices in index order instead of the
    /// seeded shuffled order.
    pub index_order_sweep: bool,
    /// Intra-rank ("OpenMP") threads for the compute sweep — the paper is
    /// MPI+OpenMP and runs "either 2 or 4 threads per process". With 1
    /// the sweep is sequential and deterministic; with more, community
    /// state is shared through atomics exactly like the shared-memory
    /// baseline (results then depend on thread interleaving, as they do
    /// in the original).
    pub threads_per_rank: usize,
    /// Distributed vertex following (Grappolo's VF heuristic, §4.1 of Lu
    /// et al.): before the first phase's sweeps, every degree-1 vertex
    /// adopts its unique neighbor's (singleton) community; pendant pairs
    /// collapse toward the smaller id. One extra ghost exchange.
    pub vertex_following: bool,
    /// Delta ghost refresh: after the first iteration of a phase, owners
    /// push `(index, community)` pairs only for vertices whose community
    /// changed since the last exchange, instead of re-sending every ghost
    /// value. Bit-identical trajectory to the full refresh (ghost slots
    /// not mentioned already hold the owner's current value); the rounds
    /// where most vertices are stable shrink to near-zero refresh bytes.
    /// When more than a quarter of the global vertices moved in the
    /// previous iteration, ranks fall back to a full refresh for that
    /// round: the pair encoding is twice as wide as a plain value, and
    /// heavily-ghosted hub vertices churn more often than the global
    /// average, so the conservative threshold keeps delta mode from ever
    /// costing more than full. The decision is made uniformly from the
    /// all-reduced move count so every rank picks the same flavour.
    pub delta_ghost_refresh: bool,
    /// Intra-rank sweep schedule (see [`SweepMode`]). `Auto` keeps the
    /// seed's sequential sweep on one thread and switches to the colored
    /// deterministic schedule when `threads_per_rank > 1`.
    pub sweep: SweepMode,
}

impl DistConfig {
    pub fn baseline() -> Self {
        Self::with_variant(Variant::Baseline)
    }

    pub fn with_variant(variant: Variant) -> Self {
        Self {
            variant,
            threshold: 1e-6,
            max_phases: 40,
            max_iterations: 200,
            etc_exit_fraction: 0.9,
            seed: 0xD157,
            neighborhood_collectives: false,
            prune_inactive_ghosts: false,
            color_sweeps: false,
            disable_singleton_guard: false,
            index_order_sweep: false,
            threads_per_rank: 1,
            vertex_following: false,
            delta_ghost_refresh: false,
            sweep: SweepMode::Auto,
        }
    }

    /// All six variants the paper evaluates in Fig 3 / Table IV.
    pub fn paper_variants() -> Vec<Variant> {
        vec![
            Variant::Baseline,
            Variant::ThresholdCycling,
            Variant::Et { alpha: 0.25 },
            Variant::Et { alpha: 0.75 },
            Variant::Etc { alpha: 0.25 },
            Variant::Etc { alpha: 0.75 },
        ]
    }
}

impl Default for DistConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Variant::Baseline.label(), "Baseline");
        assert_eq!(Variant::Et { alpha: 0.25 }.label(), "ET(0.25)");
        assert_eq!(Variant::Etc { alpha: 0.75 }.label(), "ETC(0.75)");
        assert_eq!(Variant::ThresholdCycling.label(), "Threshold Cycling");
    }

    #[test]
    fn variant_predicates() {
        assert!(Variant::ThresholdCycling.uses_cycling());
        assert!(Variant::EtPlusCycling { alpha: 0.25 }.uses_cycling());
        assert!(!Variant::Et { alpha: 0.5 }.uses_cycling());
        assert!(Variant::Etc { alpha: 0.5 }.uses_etc_exit());
        assert!(!Variant::Et { alpha: 0.5 }.uses_etc_exit());
        assert_eq!(Variant::Et { alpha: 0.5 }.alpha(), Some(0.5));
        assert_eq!(Variant::Baseline.alpha(), None);
    }

    #[test]
    fn paper_variant_set_is_complete() {
        assert_eq!(DistConfig::paper_variants().len(), 6);
    }

    #[test]
    fn sweep_mode_labels_round_trip() {
        for mode in [SweepMode::Auto, SweepMode::Colored, SweepMode::Relaxed] {
            assert_eq!(SweepMode::parse(mode.label()), Ok(mode));
        }
        assert!(SweepMode::parse("frobnicate").is_err());
    }
}
