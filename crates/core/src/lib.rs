//! # louvain-dist — distributed-memory parallel Louvain
//!
//! The primary contribution of Ghosh et al., *Distributed Louvain
//! Algorithm for Graph Community Detection* (IPDPS 2018), reproduced on
//! top of the [`louvain_comm`] simulated-MPI runtime:
//!
//! * **Algorithm 2** — the phase loop with distributed graph
//!   reconstruction between phases ([`runner`], [`rebuild`]),
//! * **Algorithm 3** — the Louvain iteration with its four communication
//!   steps per iteration: ghost-vertex community refresh, ghost-community
//!   weight pull, community-delta push to owners, and the global
//!   modularity all-reduce ([`iteration`]),
//! * **Algorithm 4** — one-time-per-phase ghost discovery ([`ghost`]),
//! * the **threshold cycling** and **early termination (ET/ETC)**
//!   heuristics of Section IV-B ([`heuristics`]),
//! * the ground-truth **quality assessment** (precision / recall /
//!   F-score) of Section V-D ([`quality`]),
//! * a **serial reference** implementation of Algorithm 1 ([`serial`]).
//!
//! ## Example
//!
//! ```
//! use louvain_dist::{run_distributed, DistConfig};
//! use louvain_graph::gen::{lfr, LfrParams};
//!
//! let g = lfr(LfrParams::small(1_000, 3)).graph;
//! let outcome = run_distributed(&g, 4, &DistConfig::baseline());
//! assert!(outcome.modularity > 0.5);
//! ```

pub mod api;
pub mod config;
pub mod ghost;
pub mod heuristics;
pub mod iteration;
pub mod quality;
pub mod rebuild;
pub mod report;
pub mod resume;
pub mod runner;
pub mod scratch;
pub mod serial;
pub mod stats;

pub use api::{
    run_distributed, run_distributed_partitioned, run_distributed_resilient,
    run_distributed_resilient_source, run_distributed_source, run_distributed_with, DistOutcome,
    GraphSource, PartitionStrategy,
};
pub use config::{DistConfig, SweepMode, Variant};
pub use quality::{adjusted_rand_index, f_score, nmi, QualityReport};
pub use report::{build_run_report, ReportMeta};
pub use resume::{
    config_fingerprint, CheckpointOptions, JobCancelled, ResilOptions, CANCELLED_AT_PHASE,
    CRASH_BUDGET_EXHAUSTED, HANG_BUDGET_EXHAUSTED,
};
pub use runner::{run_on_rank_resilient, RankOutcome};
pub use serial::serial_louvain;
pub use stats::{IterationTrace, PhaseStats, WorkCounter};
