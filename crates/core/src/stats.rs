//! Per-phase and per-iteration instrumentation.
//!
//! The paper profiles its runs with HPCToolkit (Section V-A): 98% of time
//! in the iteration body, of which ~34% community communication, ~40% the
//! modularity reduction, ~22% compute. We reproduce that breakdown from
//! explicit work counters: compute is counted in *visited edges/vertices*
//! (robust against core oversubscription when many ranks share few
//! cores) and converted to modeled seconds with fixed per-unit costs;
//! communication time comes from the α-β cost model in `louvain-comm`.

/// Modeled cost of scanning one adjacency entry in the ΔQ loop
/// (hash-map accumulate + gain evaluation), in seconds.
pub const EDGE_COST: f64 = 3.0e-8;
/// Modeled fixed cost per processed vertex, in seconds.
pub const VERTEX_COST: f64 = 5.0e-8;

/// Deterministic compute-work counter.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct WorkCounter {
    pub edges_scanned: u64,
    pub vertices_processed: u64,
}

impl WorkCounter {
    /// Modeled compute seconds for this much work.
    pub fn modeled_seconds(&self) -> f64 {
        self.edges_scanned as f64 * EDGE_COST + self.vertices_processed as f64 * VERTEX_COST
    }

    pub fn add(&mut self, other: WorkCounter) {
        self.edges_scanned += other.edges_scanned;
        self.vertices_processed += other.vertices_processed;
    }
}

/// One iteration's record (drives the Fig 5/6 convergence plots and the
/// imbalance-aware time breakdown).
#[derive(Debug, Clone, Copy)]
pub struct IterationTrace {
    pub modularity: f64,
    /// Local vertices that changed community this iteration (global sum).
    pub moves: u64,
    /// Globally inactive vertices (ETC bookkeeping; 0 when ET is off).
    pub inactive: u64,
    /// Edges THIS RANK scanned during the iteration — per-rank, unlike
    /// the global fields above. The spread across ranks is the load
    /// imbalance the bulk-synchronous reduction absorbs as wait time
    /// (HPCToolkit attributes that wait to MPI_Allreduce, which is how
    /// the paper's 40%-in-reduction figure arises).
    pub local_edges: u64,
}

/// Modeled speedup of the intra-rank ("OpenMP") compute sweep on `t`
/// threads: sublinear (`t^0.9`) to account for the memory-bound inner
/// loop, matching the paper's observed ~4× on 16× threads shape for the
/// distributed code.
pub fn parallel_speedup(threads: usize) -> f64 {
    (threads.max(1) as f64).powf(0.9)
}

/// One phase's record.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    pub phase: usize,
    /// Vertices of the phase's (coarsened) graph.
    pub num_vertices: u64,
    pub iterations: usize,
    /// Modularity at phase end.
    pub modularity: f64,
    /// τ used for this phase.
    pub tau: f64,
    pub iteration_traces: Vec<IterationTrace>,
    /// Compute work in the iteration body.
    pub compute: WorkCounter,
    /// Compute work in graph reconstruction.
    pub rebuild: WorkCounter,
    /// Modeled seconds in ghost/community communication (α-β).
    pub comm_seconds: f64,
    /// Modeled seconds in the modularity reduction.
    pub reduce_seconds: f64,
    /// True if ETC's 90%-inactive exit fired.
    pub etc_exit: bool,
    /// Intra-rank threads used by the compute sweep.
    pub threads_per_rank: usize,
}

impl PhaseStats {
    /// Modeled compute seconds of the iteration body, accounting for the
    /// intra-rank thread count.
    pub fn compute_seconds(&self) -> f64 {
        self.compute.modeled_seconds() / parallel_speedup(self.threads_per_rank)
    }

    /// Total modeled seconds of this phase (compute + comm + reduce +
    /// rebuild).
    pub fn modeled_seconds(&self) -> f64 {
        self.compute_seconds()
            + self.rebuild.modeled_seconds()
            + self.comm_seconds
            + self.reduce_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_counter_converts_to_seconds() {
        let w = WorkCounter {
            edges_scanned: 1_000_000,
            vertices_processed: 100_000,
        };
        let s = w.modeled_seconds();
        assert!((s - (1e6 * EDGE_COST + 1e5 * VERTEX_COST)).abs() < 1e-12);
    }

    #[test]
    fn work_counter_add() {
        let mut a = WorkCounter {
            edges_scanned: 1,
            vertices_processed: 2,
        };
        a.add(WorkCounter {
            edges_scanned: 10,
            vertices_processed: 20,
        });
        assert_eq!(
            a,
            WorkCounter {
                edges_scanned: 11,
                vertices_processed: 22
            }
        );
    }

    #[test]
    fn phase_modeled_time_sums_components() {
        let p = PhaseStats {
            phase: 0,
            num_vertices: 10,
            iterations: 1,
            modularity: 0.5,
            tau: 1e-6,
            iteration_traces: vec![],
            compute: WorkCounter {
                edges_scanned: 100,
                vertices_processed: 10,
            },
            rebuild: WorkCounter {
                edges_scanned: 50,
                vertices_processed: 5,
            },
            comm_seconds: 0.25,
            reduce_seconds: 0.5,
            etc_exit: false,
            threads_per_rank: 1,
        };
        let expected = 150.0 * EDGE_COST + 15.0 * VERTEX_COST + 0.75;
        assert!((p.modeled_seconds() - expected).abs() < 1e-12);
        // More intra-rank threads shrink only the iteration-body compute.
        let p4 = PhaseStats {
            threads_per_rank: 4,
            ..p.clone()
        };
        let expected4 = (100.0 * EDGE_COST + 10.0 * VERTEX_COST) / parallel_speedup(4)
            + 50.0 * EDGE_COST
            + 5.0 * VERTEX_COST
            + 0.75;
        assert!((p4.modeled_seconds() - expected4).abs() < 1e-12);
    }

    #[test]
    fn parallel_speedup_is_sublinear() {
        assert_eq!(parallel_speedup(1), 1.0);
        assert!(parallel_speedup(4) > 3.0 && parallel_speedup(4) < 4.0);
        assert!(parallel_speedup(16) > 10.0 && parallel_speedup(16) < 16.0);
    }
}
