//! Serial Louvain (Algorithm 1) — the single-threaded reference against
//! which both the shared-memory and distributed implementations are
//! validated in tests.

use louvain_graph::community::{coarsen, modularity, project, singleton_assignment};
use louvain_graph::hash::fast_map;
use louvain_graph::{Csr, VertexId, Weight};

/// Result of [`serial_louvain`].
#[derive(Debug, Clone)]
pub struct SerialResult {
    /// Dense community id per vertex.
    pub assignment: Vec<VertexId>,
    pub modularity: f64,
    pub phases: usize,
    pub total_iterations: usize,
}

/// One serial phase: sequential sweeps in a seed-shuffled vertex order
/// with immediate updates until the modularity gain falls below `tau`.
/// Returns (assignment, modularity, iterations).
fn serial_phase(
    g: &Csr,
    tau: f64,
    max_iterations: usize,
    seed: u64,
) -> (Vec<VertexId>, f64, usize) {
    let n = g.num_vertices();
    let k: Vec<Weight> = g.weighted_degrees();
    let two_m = g.two_m();
    let mut comm: Vec<VertexId> = singleton_assignment(n);
    let mut a_tot: Vec<Weight> = k.clone();
    let order = louvain_graph::hash::shuffled_order(n, seed);

    let mut prev_q = f64::NEG_INFINITY;
    let mut iterations = 0;
    while iterations < max_iterations {
        iterations += 1;
        let mut moves = 0usize;
        for &v in &order {
            let cu = comm[v];
            let kv = k[v];
            let mut weights = fast_map::<VertexId, Weight>();
            for (u, w) in g.neighbors(v as VertexId) {
                if u == v as VertexId {
                    continue;
                }
                *weights.entry(comm[u as usize]).or_insert(0.0) += w;
            }
            if weights.is_empty() {
                continue;
            }
            let e_cu = weights.get(&cu).copied().unwrap_or(0.0);
            let stay = e_cu - kv * (a_tot[cu as usize] - kv) / two_m;
            let mut best_c = cu;
            let mut best_score = f64::NEG_INFINITY;
            for (&c, &e_vc) in &weights {
                if c == cu {
                    continue;
                }
                let score = e_vc - kv * a_tot[c as usize] / two_m;
                if score > best_score + 1e-12 || ((score - best_score).abs() <= 1e-12 && c < best_c)
                {
                    best_score = score;
                    best_c = c;
                }
            }
            if best_c != cu
                && (best_score > stay + 1e-12
                    || ((best_score - stay).abs() <= 1e-12 && best_c < cu))
            {
                comm[v] = best_c;
                a_tot[cu as usize] -= kv;
                a_tot[best_c as usize] += kv;
                moves += 1;
            }
        }
        let q = modularity(g, &comm);
        if moves == 0 || (prev_q.is_finite() && q - prev_q <= tau) {
            return (comm, q.max(prev_q), iterations);
        }
        prev_q = q;
    }
    (comm, prev_q, iterations)
}

/// Run the serial Louvain method to convergence.
pub fn serial_louvain(g: &Csr, tau: f64) -> SerialResult {
    let mut owned: Option<Csr> = None;
    let n0 = g.num_vertices();
    let mut flat: Vec<VertexId> = (0..n0 as VertexId).collect();
    let mut prev_q = f64::NEG_INFINITY;
    let mut phases = 0;
    let mut total_iterations = 0;

    loop {
        let cur: &Csr = owned.as_ref().unwrap_or(g);
        let (assignment, q, iters) = serial_phase(cur, tau, 500, 0x5e41a1 + phases as u64);
        phases += 1;
        total_iterations += iters;
        let gain = q - prev_q;
        let converged = prev_q.is_finite() && gain <= tau;
        prev_q = prev_q.max(q);
        if converged || phases >= 50 {
            break;
        }
        let (coarse, dense) = coarsen(cur, &assignment);
        flat = project(&flat, &dense);
        let compressed = coarse.num_vertices() < cur.num_vertices();
        owned = Some(coarse);
        if !compressed {
            break;
        }
    }

    let (dense_flat, _) = louvain_graph::community::renumber(&flat);
    SerialResult {
        assignment: dense_flat,
        modularity: prev_q.max(0.0_f64.min(prev_q)),
        phases,
        total_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_graph::gen::{lfr, ssca2, LfrParams, Ssca2Params};
    use louvain_graph::EdgeList;

    #[test]
    fn two_triangles_split_correctly() {
        let g = Csr::from_edge_list(EdgeList::from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 1.0),
            ],
        ));
        let r = serial_louvain(&g, 1e-6);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[3], r.assignment[5]);
        assert_ne!(r.assignment[0], r.assignment[3]);
        assert!(
            (r.modularity - 0.357142857).abs() < 1e-6,
            "q = {}",
            r.modularity
        );
    }

    #[test]
    fn reported_modularity_is_consistent() {
        let gen = lfr(LfrParams::small(1_000, 4));
        let r = serial_louvain(&gen.graph, 1e-6);
        let q_ref = modularity(&gen.graph, &r.assignment);
        assert!((r.modularity - q_ref).abs() < 1e-9);
        assert!(r.modularity > 0.5);
    }

    #[test]
    fn recovers_near_truth_quality_on_lfr() {
        let gen = lfr(LfrParams::small(1_500, 8));
        let truth_q = modularity(&gen.graph, gen.ground_truth.as_ref().unwrap());
        let r = serial_louvain(&gen.graph, 1e-6);
        assert!(
            r.modularity > truth_q - 0.05,
            "{} vs {}",
            r.modularity,
            truth_q
        );
    }

    #[test]
    fn ssca2_is_nearly_perfect() {
        let gen = ssca2(Ssca2Params {
            n: 2_000,
            max_clique_size: 25,
            inter_clique_prob: 0.02,
            seed: 4,
        });
        let r = serial_louvain(&gen.graph, 1e-6);
        assert!(r.modularity > 0.95, "q = {}", r.modularity);
    }

    #[test]
    fn multiple_phases_on_structured_graph() {
        let gen = lfr(LfrParams::small(1_200, 5));
        let r = serial_louvain(&gen.graph, 1e-6);
        assert!(r.phases >= 2);
        assert!(r.total_iterations >= r.phases);
    }
}
