//! Resilience options for the distributed runner, plus the
//! [`DistConfig`] fingerprint that ties a checkpoint to the exact
//! configuration that produced it.
//!
//! The phase trajectory is a deterministic function of the input graph,
//! the rank count, and every field of [`DistConfig`] (sweep order is
//! seeded from `seed` and the absolute phase index, ET coin flips from
//! `seed`, τ from the variant/threshold). Resuming under a different
//! configuration would silently diverge from the run that wrote the
//! checkpoint, so the fingerprint covers *all* fields and the restore
//! path refuses on mismatch.

use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use crate::config::{DistConfig, Variant};

/// Where and how often to write phase-boundary checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Checkpoint directory (created on first use).
    pub dir: PathBuf,
    /// Write a checkpoint every `every`-th phase boundary (≥ 1).
    pub every: u64,
}

impl CheckpointOptions {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every: 1,
        }
    }

    pub fn every(mut self, every: u64) -> Self {
        self.every = every.max(1);
        self
    }
}

/// Checkpoint/resume/recovery behaviour of a distributed run. The
/// default is fully inert: no checkpoints, no resume, no recovery —
/// and no cost on the hot path.
#[derive(Clone, Default)]
pub struct ResilOptions {
    /// Write checkpoints when set.
    pub checkpoint: Option<CheckpointOptions>,
    /// Start from the newest complete checkpoint in `checkpoint.dir`
    /// instead of from scratch (falls back to a fresh start when the
    /// directory holds no complete checkpoint yet).
    pub resume: bool,
    /// How many rank failures [`crate::api::run_distributed_resilient`]
    /// absorbs by restarting from the newest checkpoint before giving
    /// up. This is the shared default for both failure kinds; the
    /// per-kind fields below override it when set.
    pub max_recoveries: usize,
    /// Crash-specific recovery budget. `None` falls back to
    /// `max_recoveries`. Splitting the budgets lets a serving layer
    /// distinguish a poisoned job (crashes keep recurring) from a flaky
    /// network (hang declarations) instead of burning one shared count
    /// across unrelated failure kinds.
    pub max_crash_recoveries: Option<usize>,
    /// Hang-specific recovery budget. `None` falls back to
    /// `max_recoveries`.
    pub max_hang_recoveries: Option<usize>,
    /// Cooperative cancellation token, checked once per phase boundary
    /// (after the boundary checkpoint is durable). When it flips to
    /// `true`, all ranks agree on the decision via a collective and the
    /// run aborts with a typed [`JobCancelled`] payload that the
    /// resilient driver maps to an `Err` starting with
    /// [`CANCELLED_AT_PHASE`] — the job can later resume from the
    /// checkpoint it drained to.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Record the per-original-vertex assignment after every accepted
    /// phase (`RankOutcome::levels` / `DistOutcome::levels`), giving the
    /// full dendrogram instead of only the final communities. Off by
    /// default: it clones one `Vec<VertexId>` per phase.
    pub record_levels: bool,
    /// Live progress subscriber: receives globally-merged per-iteration
    /// telemetry rows *while the run executes*, sourced from the same
    /// records tracing collects (no extra communication). Attaching a
    /// sink does not enable tracing; a run with a sink but tracing off
    /// still produces no trace sections.
    pub progress: Option<Arc<dyn louvain_obs::ProgressSink>>,
}

impl std::fmt::Debug for ResilOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilOptions")
            .field("checkpoint", &self.checkpoint)
            .field("resume", &self.resume)
            .field("max_recoveries", &self.max_recoveries)
            .field("max_crash_recoveries", &self.max_crash_recoveries)
            .field("max_hang_recoveries", &self.max_hang_recoveries)
            .field("cancel", &self.cancel.is_some())
            .field("record_levels", &self.record_levels)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl ResilOptions {
    /// Checkpointing, resume, and recovery all off.
    pub fn none() -> Self {
        Self::default()
    }

    pub fn is_none(&self) -> bool {
        self.checkpoint.is_none() && !self.resume
    }

    /// Effective crash recovery budget (per-kind override or the shared
    /// default).
    pub fn crash_budget(&self) -> usize {
        self.max_crash_recoveries.unwrap_or(self.max_recoveries)
    }

    /// Effective hang recovery budget (per-kind override or the shared
    /// default).
    pub fn hang_budget(&self) -> usize {
        self.max_hang_recoveries.unwrap_or(self.max_recoveries)
    }
}

/// Stable `Err` prefixes the resilient driver uses for budget
/// exhaustion and cancellation, so callers (the CLI, the job server's
/// quarantine ladder) can classify failures without a typed error enum.
pub const CRASH_BUDGET_EXHAUSTED: &str = "crash recovery budget";
/// See [`CRASH_BUDGET_EXHAUSTED`].
pub const HANG_BUDGET_EXHAUSTED: &str = "hang recovery budget";
/// Prefix of the `Err` produced when a run stops at a phase boundary
/// because its [`ResilOptions::cancel`] token was set; the digits after
/// it are the phase the run stopped before (its newest checkpoint, when
/// checkpointing is on, covers exactly the phases executed so far).
pub const CANCELLED_AT_PHASE: &str = "job cancelled at phase boundary ";

/// Panic payload raised by every rank when the cancellation token is
/// observed set at a phase boundary. The agreement collective guarantees
/// all ranks raise it at the same boundary, so the unwind is clean (no
/// peer is left blocked mid-collective).
#[derive(Debug, Clone, Copy)]
pub struct JobCancelled {
    /// Phase boundary the run stopped at (phases `0..phase` ran).
    pub phase: u64,
}

/// Panic payload for unrecoverable checkpoint/restore failures inside a
/// rank (I/O error, corrupt or incompatible checkpoint). The resilient
/// driver downcasts it back into an `Err` for the caller; it is *not* a
/// recoverable crash, so it never consumes recovery budget.
#[derive(Debug)]
pub struct ResilAbort(pub String);

/// Abort the run from inside a rank with a typed payload.
pub(crate) fn abort(msg: String) -> ! {
    std::panic::panic_any(ResilAbort(msg))
}

/// FNV-1a fingerprint over a canonical rendering of every `DistConfig`
/// field. Floats are hashed by bit pattern so `-0.0` vs `0.0` and NaN
/// payloads are distinguished exactly like the runner distinguishes
/// them.
pub fn config_fingerprint(cfg: &DistConfig) -> u64 {
    let variant = match cfg.variant {
        Variant::Baseline => "baseline".to_string(),
        Variant::ThresholdCycling => "cycling".to_string(),
        Variant::Et { alpha } => format!("et:{:016x}", alpha.to_bits()),
        Variant::Etc { alpha } => format!("etc:{:016x}", alpha.to_bits()),
        Variant::EtPlusCycling { alpha } => format!("et+cycling:{:016x}", alpha.to_bits()),
    };
    let text = format!(
        "variant={variant};threshold={:016x};max_phases={};max_iterations={};\
         etc_exit_fraction={:016x};seed={:016x};neighborhood_collectives={};\
         prune_inactive_ghosts={};color_sweeps={};disable_singleton_guard={};\
         index_order_sweep={};threads_per_rank={};vertex_following={};\
         delta_ghost_refresh={};sweep={}",
        cfg.threshold.to_bits(),
        cfg.max_phases,
        cfg.max_iterations,
        cfg.etc_exit_fraction.to_bits(),
        cfg.seed,
        cfg.neighborhood_collectives,
        cfg.prune_inactive_ghosts,
        cfg.color_sweeps,
        cfg.disable_singleton_guard,
        cfg.index_order_sweep,
        cfg.threads_per_rank,
        cfg.vertex_following,
        cfg.delta_ghost_refresh,
        cfg.sweep.label(),
    );
    louvain_resil::fnv1a64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let base = DistConfig::baseline();
        let fp = config_fingerprint(&base);
        assert_eq!(fp, config_fingerprint(&DistConfig::baseline()));

        // Every field that steers the trajectory must perturb the
        // fingerprint — a sample across types:
        let mut seeds = DistConfig::baseline();
        seeds.seed ^= 1;
        let mut tau = DistConfig::baseline();
        tau.threshold *= 2.0;
        let mut delta = DistConfig::baseline();
        delta.delta_ghost_refresh = true;
        let mut sweep = DistConfig::baseline();
        sweep.sweep = crate::SweepMode::Colored;
        let variant = DistConfig::with_variant(Variant::Et { alpha: 0.25 });
        let mut alpha = DistConfig::with_variant(Variant::Et { alpha: 0.75 });
        alpha.seed = base.seed;
        for other in [&seeds, &tau, &delta, &sweep, &variant, &alpha] {
            assert_ne!(fp, config_fingerprint(other));
        }
        assert_ne!(
            config_fingerprint(&variant),
            config_fingerprint(&alpha),
            "same variant kind, different alpha"
        );
    }

    #[test]
    fn checkpoint_every_is_clamped_to_one() {
        assert_eq!(CheckpointOptions::new("/tmp/x").every(0).every, 1);
        assert_eq!(CheckpointOptions::new("/tmp/x").every(3).every, 3);
    }
}
