//! Ground-truth quality assessment (Section V-D, Table VII).
//!
//! Follows the methodology of Halappanavar et al. (HPEC 2017): detected
//! communities are compared to ground truth with set-overlap precision
//! and recall, weighted by community size, and combined into an F-score.
//! In the paper's runs recall is 1.0 throughout (Louvain *merges* planted
//! communities but rarely splits them), and precision/F-score degrade
//! gently with graph size — the behaviour reproduced by our Table VII.

use louvain_graph::hash::{fast_map, FastMap};
use louvain_graph::VertexId;

/// Precision / recall / F-score of a detected partition vs. ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    pub precision: f64,
    pub recall: f64,
    pub f_score: f64,
}

/// Compare a detected community assignment to ground truth.
///
/// * `precision` — each *detected* community is matched to the ground
///   truth community with the largest overlap; the overlap fraction is
///   averaged weighted by detected-community size.
/// * `recall` — symmetric, over *ground-truth* communities.
/// * `f_score` — harmonic mean of the two.
pub fn f_score(ground_truth: &[VertexId], detected: &[VertexId]) -> QualityReport {
    assert_eq!(ground_truth.len(), detected.len());
    let n = ground_truth.len();
    if n == 0 {
        return QualityReport {
            precision: 1.0,
            recall: 1.0,
            f_score: 1.0,
        };
    }
    // Contingency counts |t ∩ d|.
    let mut joint: FastMap<(VertexId, VertexId), u64> = fast_map();
    let mut t_size: FastMap<VertexId, u64> = fast_map();
    let mut d_size: FastMap<VertexId, u64> = fast_map();
    for i in 0..n {
        *joint.entry((ground_truth[i], detected[i])).or_insert(0) += 1;
        *t_size.entry(ground_truth[i]).or_insert(0) += 1;
        *d_size.entry(detected[i]).or_insert(0) += 1;
    }
    let mut best_for_d: FastMap<VertexId, u64> = fast_map();
    let mut best_for_t: FastMap<VertexId, u64> = fast_map();
    for (&(t, d), &cnt) in &joint {
        let bd = best_for_d.entry(d).or_insert(0);
        *bd = (*bd).max(cnt);
        let bt = best_for_t.entry(t).or_insert(0);
        *bt = (*bt).max(cnt);
    }
    // Weighted by community size, the weights cancel into a plain sum/n.
    let precision: f64 = best_for_d.values().map(|&b| b as f64).sum::<f64>() / n as f64;
    let recall: f64 = best_for_t.values().map(|&b| b as f64).sum::<f64>() / n as f64;
    let f = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    QualityReport {
        precision,
        recall,
        f_score: f,
    }
}

/// Normalized mutual information between two partitions:
/// `NMI = 2·I(X;Y) / (H(X) + H(Y))` over the label distributions.
/// 1.0 for identical partitions (up to relabeling), →0 for independent
/// ones. The standard complementary metric to F-score in community
/// detection studies.
pub fn nmi(a: &[VertexId], b: &[VertexId]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let nf = n as f64;
    let mut joint: FastMap<(VertexId, VertexId), u64> = fast_map();
    let mut ca: FastMap<VertexId, u64> = fast_map();
    let mut cb: FastMap<VertexId, u64> = fast_map();
    for i in 0..n {
        *joint.entry((a[i], b[i])).or_insert(0) += 1;
        *ca.entry(a[i]).or_insert(0) += 1;
        *cb.entry(b[i]).or_insert(0) += 1;
    }
    let h = |counts: &FastMap<VertexId, u64>| -> f64 {
        -counts
            .values()
            .map(|&c| {
                let p = c as f64 / nf;
                p * p.ln()
            })
            .sum::<f64>()
    };
    let ha = h(&ca);
    let hb = h(&cb);
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both partitions trivial (single community)
    }
    let mut mi = 0.0;
    for (&(x, y), &cxy) in &joint {
        let pxy = cxy as f64 / nf;
        let px = ca[&x] as f64 / nf;
        let py = cb[&y] as f64 / nf;
        mi += pxy * (pxy / (px * py)).ln();
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

/// Adjusted Rand index between two partitions: 1.0 for identical
/// partitions, ≈0 in expectation for random ones (can be negative).
pub fn adjusted_rand_index(a: &[VertexId], b: &[VertexId]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let mut joint: FastMap<(VertexId, VertexId), u64> = fast_map();
    let mut ca: FastMap<VertexId, u64> = fast_map();
    let mut cb: FastMap<VertexId, u64> = fast_map();
    for i in 0..n {
        *joint.entry((a[i], b[i])).or_insert(0) += 1;
        *ca.entry(a[i]).or_insert(0) += 1;
        *cb.entry(b[i]).or_insert(0) += 1;
    }
    let sum_joint: f64 = joint.values().map(|&c| choose2(c)).sum();
    let sum_a: f64 = ca.values().map(|&c| choose2(c)).sum();
    let sum_b: f64 = cb.values().map(|&c| choose2(c)).sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // degenerate: both partitions trivial
    }
    (sum_joint - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_are_perfect() {
        let gt = vec![0, 0, 1, 1, 2, 2];
        let r = f_score(&gt, &gt);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f_score, 1.0);
    }

    #[test]
    fn relabeled_partition_is_still_perfect() {
        let gt = vec![0, 0, 1, 1, 2, 2];
        let det = vec![9, 9, 4, 4, 7, 7];
        let r = f_score(&gt, &det);
        assert_eq!(r.f_score, 1.0);
    }

    #[test]
    fn merging_two_truth_communities_keeps_recall_one() {
        // Detected merges gt communities 0 and 1 — the paper's typical
        // failure mode ("recall was found to be 1.0 for every case").
        let gt = vec![0, 0, 1, 1, 2, 2];
        let det = vec![0, 0, 0, 0, 2, 2];
        let r = f_score(&gt, &det);
        assert_eq!(r.recall, 1.0);
        // Precision: community {0,1,2,3} best-overlaps a gt community with
        // 2 of its 4 members; community {4,5} is exact.
        assert!((r.precision - 4.0 / 6.0).abs() < 1e-12);
        assert!(r.f_score < 1.0);
    }

    #[test]
    fn splitting_a_truth_community_keeps_precision_one() {
        let gt = vec![0, 0, 0, 0];
        let det = vec![0, 0, 1, 1];
        let r = f_score(&gt, &det);
        assert_eq!(r.precision, 1.0);
        assert!((r.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_perfect() {
        let r = f_score(&[], &[]);
        assert_eq!(r.f_score, 1.0);
    }

    #[test]
    fn f_score_is_harmonic_mean() {
        let gt = vec![0, 0, 1, 1];
        let det = vec![0, 1, 0, 1]; // orthogonal partitions
        let r = f_score(&gt, &det);
        let expected_f = 2.0 * r.precision * r.recall / (r.precision + r.recall);
        assert!((r.f_score - expected_f).abs() < 1e-12);
    }

    #[test]
    fn nmi_of_identical_partitions_is_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        // Relabeled but identical.
        let b = vec![7, 7, 3, 3, 9, 9];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_of_orthogonal_partitions_is_low() {
        // Four blocks crossed two ways: labels share no information.
        let a = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(nmi(&a, &b) < 0.05, "nmi = {}", nmi(&a, &b));
    }

    #[test]
    fn nmi_handles_trivial_partitions() {
        let a = vec![0; 5];
        assert_eq!(nmi(&a, &a), 1.0);
        assert_eq!(nmi(&[], &[]), 1.0);
    }

    #[test]
    fn nmi_of_merged_partition_is_between_zero_and_one() {
        let gt = vec![0, 0, 1, 1, 2, 2];
        let merged = vec![0, 0, 0, 0, 2, 2];
        let v = nmi(&gt, &merged);
        assert!(v > 0.5 && v < 1.0, "nmi = {v}");
    }

    #[test]
    fn ari_of_identical_partitions_is_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![5, 5, 8, 8, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_of_orthogonal_partitions_is_near_zero() {
        let a = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let v = adjusted_rand_index(&a, &b);
        assert!(v.abs() < 0.3, "ari = {v}");
    }

    #[test]
    fn ari_degenerate_cases() {
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
        assert_eq!(adjusted_rand_index(&[0, 0], &[0, 0]), 1.0);
    }
}
