//! Distributed graph reconstruction (Section IV-A(b), Fig 1).
//!
//! The seven steps of the paper:
//! 1. count unique local clusters,
//! 2. drop owned community ids no longer used by anyone,
//! 3. renumber surviving clusters globally with a parallel prefix sum,
//! 4. communicate the new global community ids to the ranks that use
//!    them,
//! 5. build partial new edge lists (same-community neighbors become a
//!    self-loop),
//! 6. redistribute edges so every rank owns an equal number of the new
//!    vertices,
//! 7. rebuild the CSR arrays of the coarse graph.

use louvain_comm::{Comm, CommStep, ReduceOp};
use louvain_graph::hash::{fast_map, fast_set, FastMap};
use louvain_graph::{LocalGraph, VertexId, VertexPartition, Weight};

use crate::ghost::GhostLayer;
use crate::stats::WorkCounter;

/// Output of one distributed rebuild on one rank.
#[derive(Debug)]
pub struct RebuildOutput {
    /// The rank's piece of the coarse graph.
    pub new_lg: LocalGraph,
    /// For each OLD local vertex: its vertex id in the coarse graph
    /// (i.e. the renumbered id of its final community).
    pub vertex_new_id: Vec<VertexId>,
    /// Number of vertices of the coarse graph.
    pub new_num_vertices: u64,
    pub work: WorkCounter,
    /// Modeled seconds spent in rebuild communication.
    pub comm_seconds: f64,
}

/// Execute the distributed rebuild. Collective.
///
/// `comm_of_local` / `ghost_comm` are the final (exchanged) community
/// assignments from the phase's last iteration.
pub fn rebuild(
    comm: &Comm,
    lg: &LocalGraph,
    ghosts: &GhostLayer,
    comm_of_local: &[VertexId],
    ghost_comm: &[VertexId],
) -> RebuildOutput {
    let p = comm.size();
    let part = lg.partition();
    let first = lg.first_vertex();
    let mut work = WorkCounter::default();
    let t_start = comm.stats().modeled_seconds();

    // -- Steps 1–2: report used communities to their owners. -------------
    // Each community that has at least one member must survive; members
    // report to the community's owner. (A community id owned here that no
    // vertex uses anymore is thereby dropped — step 2.)
    let mut report_sets: Vec<Vec<VertexId>> = vec![Vec::new(); p];
    {
        let mut seen = fast_set::<VertexId>();
        for &c in comm_of_local {
            if seen.insert(c) {
                report_sets[part.owner_of(c)].push(c);
            }
        }
    }
    let reports = comm.with_step(CommStep::Other, || comm.all_to_all_v(report_sets));
    let mut survivors: Vec<VertexId> = {
        let mut s = fast_set::<VertexId>();
        for list in &reports {
            s.extend(list.iter().copied());
        }
        s.into_iter().collect()
    };
    survivors.sort_unstable();
    work.vertices_processed += survivors.len() as u64;

    // -- Step 3: global renumbering via exclusive prefix sum. -------------
    let k_local = survivors.len() as u64;
    let (base, new_num_vertices) = comm.with_step(CommStep::Other, || {
        (
            comm.exscan_sum(k_local),
            comm.all_reduce(k_local, ReduceOp::Sum),
        )
    });
    let mut owned_new_id: FastMap<VertexId, VertexId> = fast_map();
    for (i, &c) in survivors.iter().enumerate() {
        owned_new_id.insert(c, base + i as u64);
    }

    // -- Step 4: query the new ids of every community we reference. -------
    // Referenced = final communities of local vertices and of ghosts
    // (needed to relabel edge destinations).
    let mut query_sets: Vec<Vec<VertexId>> = vec![Vec::new(); p];
    {
        let mut seen = fast_set::<VertexId>();
        for &c in comm_of_local.iter().chain(ghost_comm.iter()) {
            if seen.insert(c) && !lg.owns(c) {
                query_sets[part.owner_of(c)].push(c);
            }
        }
    }
    let incoming_queries = comm.with_step(CommStep::Other, || comm.all_to_all_v(query_sets));
    // Keyed replies (community, new id) avoid cloning the query sets just
    // to decode positional responses.
    let replies: Vec<Vec<(VertexId, VertexId)>> = incoming_queries
        .iter()
        .map(|ids| {
            ids.iter()
                .map(|c| {
                    (
                        *c,
                        *owned_new_id
                            .get(c)
                            .expect("queried community has no member anywhere"),
                    )
                })
                .collect()
        })
        .collect();
    let reply_vals = comm.with_step(CommStep::Other, || comm.all_to_all_v(replies));
    let mut new_id: FastMap<VertexId, VertexId> = owned_new_id;
    for pairs in &reply_vals {
        for &(c, id) in pairs {
            new_id.insert(c, id);
        }
    }

    // -- Step 5: partial new edge lists. -----------------------------------
    let vertex_new_id: Vec<VertexId> = comm_of_local.iter().map(|c| new_id[c]).collect();
    let new_part = VertexPartition::balanced_vertices(new_num_vertices, p);
    let mut outgoing: Vec<Vec<(VertexId, VertexId, Weight)>> = vec![Vec::new(); p];
    for l in 0..lg.num_local() {
        let src = vertex_new_id[l];
        let v_global = first + l as u64;
        for (u, w) in lg.neighbors(l) {
            work.edges_scanned += 1;
            let cu = if u == v_global {
                comm_of_local[l]
            } else if lg.owns(u) {
                comm_of_local[(u - first) as usize]
            } else {
                ghost_comm[ghosts.slot_of(u)]
            };
            let dst = new_id[&cu];
            outgoing[new_part.owner_of(src)].push((src, dst, w));
        }
    }

    // -- Step 6: redistribute. ---------------------------------------------
    let received = comm.with_step(CommStep::Other, || comm.all_to_all_v(outgoing));
    let arcs: Vec<(VertexId, VertexId, Weight)> = received.into_iter().flatten().collect();
    work.edges_scanned += arcs.len() as u64;

    // -- Step 7: rebuild the CSR (duplicate arcs merged inside from_arcs).
    let new_lg = LocalGraph::from_arcs(new_part, comm.rank(), arcs);
    let comm_seconds = comm.stats().modeled_seconds() - t_start;

    RebuildOutput {
        new_lg,
        vertex_new_id,
        new_num_vertices,
        work,
        comm_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_comm::run;
    use louvain_graph::community::{modularity, singleton_assignment};
    use louvain_graph::{Csr, EdgeList};

    fn two_triangles() -> Csr {
        Csr::from_edge_list(EdgeList::from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 1.0),
            ],
        ))
    }

    /// Rebuild with an explicit global assignment, return the assembled
    /// coarse graph.
    fn rebuild_with(g: &Csr, p: usize, assignment: &[VertexId]) -> Csr {
        let part = VertexPartition::balanced_vertices(g.num_vertices() as u64, p);
        let parts = LocalGraph::scatter(g, &part);
        let assignment = assignment.to_vec();
        let outs = run(p, |c| {
            let lg = parts[c.rank()].clone();
            let ghosts = GhostLayer::build(c, &lg);
            let range = lg.partition().range(c.rank());
            let local: Vec<VertexId> = range.map(|v| assignment[v as usize]).collect();
            // Ghost communities straight from the global assignment.
            let mut ghost_comm = vec![0u64; ghosts.num_ghosts()];
            for reqs in ghosts.requests() {
                for &gid in reqs {
                    ghost_comm[ghosts.slot_of(gid)] = assignment[gid as usize];
                }
            }
            let out = rebuild(c, &lg, &ghosts, &local, &ghost_comm);
            out.new_lg
        });
        LocalGraph::assemble(&outs)
    }

    #[test]
    fn distributed_rebuild_matches_shared_memory_coarsen() {
        let g = two_triangles();
        let assignment = vec![0u64, 0, 0, 3, 3, 3];
        let (expected, _) = louvain_graph::community::coarsen(&g, &assignment);
        for p in [1, 2, 3] {
            let coarse = rebuild_with(&g, p, &assignment);
            assert_eq!(coarse.num_vertices(), 2, "p={p}");
            assert_eq!(coarse.two_m(), expected.two_m(), "p={p}");
            assert_eq!(coarse.self_loop(0), 6.0, "p={p}");
            assert_eq!(coarse.self_loop(1), 6.0, "p={p}");
            // Modularity invariance through distributed coarsening.
            let q_fine = modularity(&g, &assignment);
            let q_coarse = modularity(&coarse, &singleton_assignment(2));
            assert!((q_fine - q_coarse).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn identity_assignment_keeps_graph_shape() {
        let g = two_triangles();
        let assignment = singleton_assignment(6);
        let coarse = rebuild_with(&g, 2, &assignment);
        assert_eq!(coarse.num_vertices(), 6);
        assert_eq!(coarse.two_m(), g.two_m());
        assert_eq!(coarse.num_arcs(), g.num_arcs());
    }

    #[test]
    fn remote_community_assignment_renumbers_densely() {
        // All vertices join community 5 (owned by the last rank).
        let g = two_triangles();
        let assignment = vec![5u64; 6];
        let coarse = rebuild_with(&g, 3, &assignment);
        assert_eq!(coarse.num_vertices(), 1);
        assert_eq!(coarse.self_loop(0), g.two_m());
    }

    #[test]
    fn larger_graph_rebuild_preserves_modularity_invariance() {
        let gen = louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(500, 3));
        let g = gen.graph;
        let assignment = gen.ground_truth.unwrap();
        let coarse = rebuild_with(&g, 4, &assignment);
        let q_fine = modularity(&g, &assignment);
        let q_coarse = modularity(&coarse, &singleton_assignment(coarse.num_vertices()));
        assert!((q_fine - q_coarse).abs() < 1e-9);
        assert_eq!(coarse.two_m(), g.two_m());
    }
}
