//! One-call entry points: scatter a graph over `p` simulated ranks, run
//! the distributed algorithm, gather and merge the results.

use std::time::Duration;

use louvain_comm::{run_with, FaultPlan, RankCrashed, RankHung, RunConfig, StatsSnapshot};
use louvain_graph::{Csr, LocalGraph, VertexId, VertexPartition};
use parking_lot_free::TakeSlots;

use crate::config::DistConfig;
use crate::resume::{
    JobCancelled, ResilAbort, ResilOptions, CANCELLED_AT_PHASE, CRASH_BUDGET_EXHAUSTED,
    HANG_BUDGET_EXHAUSTED,
};
use crate::runner::{run_on_rank, run_on_rank_resilient, RankOutcome};
use crate::stats::PhaseStats;

/// Tiny helper: hand each rank exactly one pre-built value from a shared
/// vector (the scattered graph pieces) without cloning.
mod parking_lot_free {
    use std::sync::Mutex;

    pub struct TakeSlots<T>(Mutex<Vec<Option<T>>>);

    impl<T> TakeSlots<T> {
        pub fn new(items: Vec<T>) -> Self {
            Self(Mutex::new(items.into_iter().map(Some).collect()))
        }

        pub fn take(&self, i: usize) -> T {
            self.0.lock().unwrap()[i]
                .take()
                .expect("slot already taken")
        }
    }
}

/// Merged result of a distributed run.
#[derive(Debug)]
pub struct DistOutcome {
    /// Final community id per original vertex (dense `0..num_communities`).
    pub assignment: Vec<VertexId>,
    pub modularity: f64,
    pub num_communities: usize,
    pub phases: usize,
    pub total_iterations: usize,
    /// Phase statistics of every rank: `per_rank_stats[rank][phase]`.
    pub per_rank_stats: Vec<Vec<PhaseStats>>,
    /// Aggregate communication counters (summed over ranks).
    pub traffic: StatsSnapshot,
    /// Each rank's own communication counters (index = rank). `traffic`
    /// is their merge; kept separately so run reports can show per-rank
    /// imbalance.
    pub per_rank_traffic: Vec<StatsSnapshot>,
    /// Modeled job time: Σ over phases of the slowest rank's modeled
    /// phase time (bulk-synchronous critical path).
    pub modeled_seconds: f64,
    /// Real wall time of the simulated job (all ranks share the host).
    pub wall: Duration,
    /// Harvested trace events/metrics, present when tracing was enabled
    /// (`louvain_obs::set_enabled(true)` / `LOUVAIN_TRACE=1`) for the run.
    pub trace: Option<louvain_obs::TraceData>,
    /// Phase the final (successful) attempt resumed from, when it was
    /// restored off a checkpoint.
    pub resumed_from_phase: Option<u64>,
    /// Rank crashes absorbed by [`run_distributed_resilient`] on the way
    /// to this outcome (always 0 from the non-resilient entry points).
    /// Counts both crash and hung-rank recoveries.
    pub recoveries: u64,
    /// Crash-kind recoveries only (`recoveries` minus the hang
    /// recoveries). Tagged separately so serving-layer quarantine
    /// decisions can tell a poisoned job (recurring crashes) from a
    /// flaky network (hang declarations).
    pub crash_recoveries: u64,
    /// Hung-rank declarations absorbed on the way to this outcome, in
    /// the order the watchdog raised them (empty from the non-resilient
    /// entry points).
    pub hung_events: Vec<RankHung>,
    /// The dendrogram: for each executed phase, the community (coarse
    /// vertex) of every original vertex after that phase. Populated only
    /// under [`ResilOptions::record_levels`]; each level is densely
    /// renumbered, and the last equals `assignment`.
    pub levels: Vec<Vec<VertexId>>,
}

impl DistOutcome {
    /// Hang-kind recoveries (the watchdog's `RankHung` declarations
    /// absorbed on the way to this outcome).
    pub fn hang_recoveries(&self) -> u64 {
        self.hung_events.len() as u64
    }

    /// Modularity after each phase (from rank 0's trace).
    pub fn modularity_per_phase(&self) -> Vec<f64> {
        self.per_rank_stats[0]
            .iter()
            .map(|p| p.modularity)
            .collect()
    }

    /// Iterations per phase.
    pub fn iterations_per_phase(&self) -> Vec<usize> {
        self.per_rank_stats[0]
            .iter()
            .map(|p| p.iterations)
            .collect()
    }

    /// Modeled-time breakdown over the whole run:
    /// `(compute, comm, reduce, rebuild)` seconds, HPCToolkit-style.
    ///
    /// The iterations are bulk-synchronous: the rank that finishes its
    /// sweep early waits at the modularity all-reduce for the slowest
    /// rank. HPCToolkit (and hence the paper's §V-A numbers) attributes
    /// that wait to the reduction, so this method does too: per
    /// iteration, `compute` gets the *mean* rank's sweep time and the
    /// `reduce` bucket gets the wire time plus the imbalance wait
    /// (`max − mean`).
    pub fn modeled_breakdown(&self) -> (f64, f64, f64, f64) {
        let phases = self.phases;
        let mut compute = 0.0;
        let mut comm = 0.0;
        let mut reduce = 0.0;
        let mut rebuild = 0.0;
        for phase in 0..phases {
            let mut m = 0.0_f64;
            let mut r_wire = 0.0_f64;
            let mut b = 0.0_f64;
            let mut speedup = 1.0_f64;
            let mut max_iters = 0;
            for rank in &self.per_rank_stats {
                if let Some(s) = rank.get(phase) {
                    m = m.max(s.comm_seconds);
                    r_wire = r_wire.max(s.reduce_seconds);
                    b = b.max(s.rebuild.modeled_seconds());
                    speedup = crate::stats::parallel_speedup(s.threads_per_rank);
                    max_iters = max_iters.max(s.iteration_traces.len());
                }
            }
            // Per-iteration imbalance: mean vs slowest rank's sweep.
            let mut mean_compute = 0.0;
            let mut critical_compute = 0.0;
            for it in 0..max_iters {
                let edges: Vec<f64> = self
                    .per_rank_stats
                    .iter()
                    .filter_map(|rank| rank.get(phase))
                    .filter_map(|s| s.iteration_traces.get(it))
                    .map(|t| t.local_edges as f64)
                    .collect();
                if edges.is_empty() {
                    continue;
                }
                let max = edges.iter().cloned().fold(0.0, f64::max);
                let mean = edges.iter().sum::<f64>() / edges.len() as f64;
                critical_compute += max * crate::stats::EDGE_COST / speedup;
                mean_compute += mean * crate::stats::EDGE_COST / speedup;
            }
            compute += mean_compute;
            comm += m;
            reduce += r_wire + (critical_compute - mean_compute);
            rebuild += b;
        }
        (compute, comm, reduce, rebuild)
    }
}

/// Where the input graph comes from — the scatter step's counterpart to
/// the paper's MPI-I/O loading modes.
#[derive(Debug, Clone, Copy)]
pub enum GraphSource<'a> {
    /// A resident [`Csr`]: partition, then slice per rank
    /// ([`LocalGraph::scatter`]).
    Memory(&'a Csr),
    /// A fully validated memory-mapped slab; per-rank pieces are sliced
    /// zero-copy from the shared mapping.
    SlabMapped(&'a louvain_store::Slab),
    /// A slab file loaded by per-rank byte-range reads
    /// ([`louvain_store::load_rank`]): each rank opens the file itself
    /// and reads only its own extents, like the paper's per-process
    /// `MPI_File_read_at` pattern.
    SlabRanged(&'a std::path::Path),
}

/// Per-rank graph dispenser for [`GraphSource`]. Slab modes defer the
/// load into the rank closure so the I/O (and the `mem.mapped_bytes`
/// gauge) happens in rank context; a failed load aborts the job through
/// the typed [`ResilAbort`] panic the resilient loop already understands.
enum RankFeed<'a> {
    Slots(TakeSlots<LocalGraph>),
    Mapped {
        slab: &'a louvain_store::Slab,
        part: VertexPartition,
    },
    Ranged {
        path: &'a std::path::Path,
        ranks: usize,
    },
}

impl RankFeed<'_> {
    fn make<'a>(src: &GraphSource<'a>, p: usize, strategy: PartitionStrategy) -> RankFeed<'a> {
        match *src {
            GraphSource::Memory(g) => {
                let part = match strategy {
                    PartitionStrategy::EdgeBalanced => VertexPartition::balanced_edges(g, p),
                    PartitionStrategy::VertexBalanced => {
                        VertexPartition::balanced_vertices(g.num_vertices() as u64, p)
                    }
                };
                RankFeed::Slots(TakeSlots::new(LocalGraph::scatter(g, &part)))
            }
            GraphSource::SlabMapped(slab) => RankFeed::Mapped {
                slab,
                part: slab.partition(p),
            },
            GraphSource::SlabRanged(path) => RankFeed::Ranged { path, ranks: p },
        }
    }

    fn get(&self, rank: usize) -> LocalGraph {
        match self {
            RankFeed::Slots(slots) => slots.take(rank),
            RankFeed::Mapped { slab, part } => {
                louvain_obs::gauge_set("mem.mapped_bytes", slab.mapped_bytes() as f64);
                slab.local_graph(part, rank)
            }
            RankFeed::Ranged { path, ranks } => {
                match louvain_store::load_rank(path, rank, *ranks) {
                    Ok(slice) => {
                        louvain_obs::gauge_set("mem.mapped_bytes", slice.bytes_read as f64);
                        slice.local
                    }
                    Err(e) => std::panic::panic_any(ResilAbort(format!(
                        "slab load failed on rank {rank}: {e}"
                    ))),
                }
            }
        }
    }
}

/// How the input is split across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// The paper's scheme: "each process receives roughly the same number
    /// of edges".
    #[default]
    EdgeBalanced,
    /// Naive equal vertex counts (ablation comparator — skewed degree
    /// distributions then put most of the work on a few ranks).
    VertexBalanced,
}

/// Run distributed Louvain on `p` simulated ranks with the paper's input
/// distribution (edge-balanced 1D).
pub fn run_distributed(g: &Csr, p: usize, cfg: &DistConfig) -> DistOutcome {
    run_distributed_with(g, p, cfg, RunConfig::default())
}

/// [`run_distributed`] with an explicit runtime configuration (cost
/// model, stack size).
pub fn run_distributed_with(g: &Csr, p: usize, cfg: &DistConfig, runcfg: RunConfig) -> DistOutcome {
    run_distributed_partitioned(g, p, cfg, runcfg, PartitionStrategy::EdgeBalanced)
}

/// [`run_distributed`] with an explicit input-distribution strategy
/// (for the partitioning ablation).
pub fn run_distributed_partitioned(
    g: &Csr,
    p: usize,
    cfg: &DistConfig,
    runcfg: RunConfig,
    strategy: PartitionStrategy,
) -> DistOutcome {
    run_source_partitioned(GraphSource::Memory(g), p, cfg, runcfg, strategy)
        .expect("in-memory scatter cannot fail to load")
}

/// Run distributed Louvain from any [`GraphSource`] (resident CSR,
/// mapped slab, or per-rank byte-range slab reads). Slab load failures
/// come back as `Err` instead of panicking.
pub fn run_distributed_source(
    src: GraphSource<'_>,
    p: usize,
    cfg: &DistConfig,
    runcfg: RunConfig,
) -> Result<DistOutcome, String> {
    run_source_partitioned(src, p, cfg, runcfg, PartitionStrategy::EdgeBalanced)
}

fn run_source_partitioned(
    src: GraphSource<'_>,
    p: usize,
    cfg: &DistConfig,
    runcfg: RunConfig,
    strategy: PartitionStrategy,
) -> Result<DistOutcome, String> {
    let feed = RankFeed::make(&src, p, strategy);

    // One collector for the whole job when tracing is on: rank threads
    // install it on entry so spans/metrics land in per-rank rings.
    let collector = louvain_obs::enabled().then(|| louvain_obs::Collector::new(p));
    let watch = louvain_obs::Stopwatch::start();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_with(p, runcfg, |c| {
            let _obs = collector.as_ref().map(|col| col.install(c.rank()));
            let lg = feed.get(c.rank());
            let outcome = run_on_rank(c, lg, cfg);
            let stats = c.stats().snapshot();
            (outcome, stats)
        })
    }));
    let results: Vec<(RankOutcome, StatsSnapshot)> = match attempt {
        Ok(results) => results,
        Err(payload) => match payload.downcast_ref::<ResilAbort>() {
            Some(aborted) => return Err(aborted.0.clone()),
            None => std::panic::resume_unwind(payload),
        },
    };
    let wall = Duration::from_secs_f64(watch.wall_seconds());
    let trace = collector.map(louvain_obs::Collector::finish);

    Ok(merge(results, wall, trace))
}

/// [`run_distributed`] with checkpointing, resume, and crash/hang
/// recovery.
///
/// Runs the job, and whenever a rank failure surfaces as a typed panic
/// — [`RankCrashed`] from an injected (or, in principle, real) crash,
/// or [`RankHung`] from the communication watchdog declaring a silent
/// rank dead — restarts all ranks from the newest complete checkpoint.
/// Each failure kind has its own budget ([`ResilOptions::crash_budget`]
/// and [`ResilOptions::hang_budget`], both defaulting to
/// `max_recoveries`), so a flaky network cannot burn the budget a
/// genuinely crashing job needs and vice versa; exhausting either gives
/// up with an `Err` tagged by kind. Because phase boundaries are consistent
/// cuts and the trajectory is deterministic, the recovered outcome is
/// bit-identical to an uninterrupted run's.
///
/// Unrecoverable conditions (corrupt/incompatible checkpoints, I/O
/// failures, exhausted recovery budget) come back as `Err`; panics that
/// are neither crashes nor checkpoint failures propagate unchanged.
pub fn run_distributed_resilient(
    g: &Csr,
    p: usize,
    cfg: &DistConfig,
    runcfg: RunConfig,
    resil: &ResilOptions,
) -> Result<DistOutcome, String> {
    run_distributed_resilient_source(GraphSource::Memory(g), p, cfg, runcfg, resil)
}

/// [`run_distributed_resilient`] from any [`GraphSource`]. Every
/// recovery attempt re-loads the graph from the source — for slab
/// sources that means re-slicing the mapping or re-issuing the per-rank
/// byte-range reads, exactly like a restarted MPI job re-reading its
/// input file.
pub fn run_distributed_resilient_source(
    src: GraphSource<'_>,
    p: usize,
    cfg: &DistConfig,
    runcfg: RunConfig,
    resil: &ResilOptions,
) -> Result<DistOutcome, String> {
    let base_fault: Option<std::sync::Arc<FaultPlan>> = runcfg.fault.clone();

    // One collector across attempts: a crashed attempt's spans stay in
    // the rings, so the final trace shows the recovery story end to end.
    // A live progress sink also needs the collector (its merger rides on
    // the installed observers), but does not by itself enable tracing —
    // a progress-only run produces no trace sections.
    let tracing = louvain_obs::enabled();
    let collector = (tracing || resil.progress.is_some()).then(|| {
        let mut col = louvain_obs::Collector::new(p);
        if let Some(sink) = &resil.progress {
            col.set_progress(std::sync::Arc::clone(sink));
        }
        col
    });
    // Keep the global progress bit set for the duration of the run so
    // `record_iteration` sites feed the merger; dropped on every return
    // path.
    let _progress_scope = resil
        .progress
        .as_ref()
        .map(|_| louvain_obs::ProgressScope::new());
    let watch = louvain_obs::Stopwatch::start();

    let mut crash_recoveries = 0usize;
    let mut hung_events: Vec<RankHung> = Vec::new();
    loop {
        let recoveries = crash_recoveries as u64 + hung_events.len() as u64;
        let feed = RankFeed::make(&src, p, PartitionStrategy::EdgeBalanced);
        let attempt_runcfg = RunConfig {
            // Each absorbed crash consumes one crash rule and each
            // absorbed hang one hang rule, so the next attempt gets
            // past them deterministically.
            fault: base_fault.as_ref().map(|f| {
                std::sync::Arc::new(
                    f.with_crashes_skipped(crash_recoveries)
                        .with_hangs_skipped(hung_events.len()),
                )
            }),
            ..runcfg.clone()
        };
        let attempt_resil = ResilOptions {
            resume: resil.resume || recoveries > 0,
            ..resil.clone()
        };
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with(p, attempt_runcfg, |c| {
                // Tag every event of this attempt so the trace keeps
                // recovered attempts on separate, labeled tracks.
                let _obs = collector
                    .as_ref()
                    .map(|col| col.install_attempt(c.rank(), recoveries as u32));
                let lg = feed.get(c.rank());
                let outcome = run_on_rank_resilient(c, lg, cfg, &attempt_resil);
                let stats = c.stats().snapshot();
                (outcome, stats)
            })
        }));
        match attempt {
            Ok(results) => {
                let wall = Duration::from_secs_f64(watch.wall_seconds());
                // Rows whose iterations some ranks early-terminated out
                // of never reach a full rank count in the merger; emit
                // them now so watchers see the complete trajectory.
                if let Some(m) = collector.as_ref().and_then(|c| c.progress_merger()) {
                    m.flush();
                }
                let trace = collector
                    .map(louvain_obs::Collector::finish)
                    .filter(|_| tracing);
                let mut out = merge(results, wall, trace);
                out.recoveries = recoveries;
                out.crash_recoveries = crash_recoveries as u64;
                out.hung_events = hung_events;
                return Ok(out);
            }
            Err(payload) => {
                if let Some(aborted) = payload.downcast_ref::<ResilAbort>() {
                    return Err(aborted.0.clone());
                }
                if let Some(cancelled) = payload.downcast_ref::<JobCancelled>() {
                    return Err(format!("{CANCELLED_AT_PHASE}{}", cancelled.phase));
                }
                if let Some(crash) = payload.downcast_ref::<RankCrashed>() {
                    if crash_recoveries >= resil.crash_budget() {
                        return Err(format!(
                            "{crash}; {CRASH_BUDGET_EXHAUSTED} of {} exhausted \
                             ({crash_recoveries} crash + {} hang recoveries consumed)",
                            resil.crash_budget(),
                            hung_events.len(),
                        ));
                    }
                    crash_recoveries += 1;
                    continue;
                }
                if let Some(hung) = payload.downcast_ref::<RankHung>() {
                    if hung_events.len() >= resil.hang_budget() {
                        return Err(format!(
                            "{hung}; {HANG_BUDGET_EXHAUSTED} of {} exhausted \
                             ({crash_recoveries} crash + {} hang recoveries consumed)",
                            resil.hang_budget(),
                            hung_events.len(),
                        ));
                    }
                    louvain_obs::counter_add("resil.hang_recoveries", 1);
                    hung_events.push(*hung);
                    continue;
                }
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Merge per-rank outcomes into a [`DistOutcome`].
fn merge(
    results: Vec<(RankOutcome, StatsSnapshot)>,
    wall: Duration,
    trace: Option<louvain_obs::TraceData>,
) -> DistOutcome {
    let modularity = results[0].0.modularity;
    let phases = results.iter().map(|(o, _)| o.phases).max().unwrap_or(0);
    let total_iterations = results[0].0.total_iterations;
    let resumed_from_phase = results[0].0.resumed_from_phase;

    let mut assignment: Vec<VertexId> = Vec::new();
    let mut traffic = StatsSnapshot::default();
    let mut per_rank_traffic = Vec::with_capacity(results.len());
    let mut per_rank_stats = Vec::with_capacity(results.len());
    for (o, s) in &results {
        assignment.extend(o.assignment.iter().copied());
        traffic.merge_max_time(s);
        per_rank_traffic.push(*s);
    }
    // Dendrogram levels (recorded only under `record_levels`): the phase
    // loop is collective, so every rank recorded the same level count;
    // concatenate rank slices in rank order and renumber densely like
    // the final assignment.
    let num_levels = results
        .iter()
        .map(|(o, _)| o.levels.len())
        .max()
        .unwrap_or(0);
    let mut levels: Vec<Vec<VertexId>> = Vec::with_capacity(num_levels);
    for li in 0..num_levels {
        let mut level: Vec<VertexId> = Vec::with_capacity(assignment.len());
        for (o, _) in &results {
            level.extend(o.levels.get(li).into_iter().flatten().copied());
        }
        let (dense, _) = louvain_graph::community::renumber(&level);
        levels.push(dense);
    }
    for (o, _) in results {
        per_rank_stats.push(o.phase_stats);
    }

    // Critical-path modeled time: per phase, the slowest rank.
    let mut modeled_seconds = 0.0;
    for phase in 0..phases {
        let slowest = per_rank_stats
            .iter()
            .filter_map(|r| r.get(phase))
            .map(|s| s.modeled_seconds())
            .fold(0.0_f64, f64::max);
        modeled_seconds += slowest;
    }

    let (dense, num_communities) = louvain_graph::community::renumber(&assignment);
    DistOutcome {
        assignment: dense,
        modularity,
        num_communities,
        phases,
        total_iterations,
        per_rank_stats,
        traffic,
        per_rank_traffic,
        modeled_seconds,
        wall,
        trace,
        resumed_from_phase,
        recoveries: 0,
        crash_recoveries: 0,
        hung_events: Vec::new(),
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variant;
    use louvain_graph::community::modularity;
    use louvain_graph::gen::{lfr, ssca2, weblike, LfrParams, Ssca2Params, WeblikeParams};

    #[test]
    fn lfr_quality_is_rank_count_invariant_within_tolerance() {
        let gen = lfr(LfrParams::small(1_500, 21));
        let truth_q = modularity(&gen.graph, gen.ground_truth.as_ref().unwrap());
        for p in [1, 2, 4] {
            let out = run_distributed(&gen.graph, p, &DistConfig::baseline());
            assert!(
                out.modularity > truth_q - 0.08,
                "p={p}: {} vs truth {}",
                out.modularity,
                truth_q
            );
            let q_ref = modularity(&gen.graph, &out.assignment);
            assert!((out.modularity - q_ref).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn assignment_is_dense_and_complete() {
        let gen = ssca2(Ssca2Params {
            n: 800,
            max_clique_size: 20,
            inter_clique_prob: 0.05,
            seed: 3,
        });
        let out = run_distributed(&gen.graph, 3, &DistConfig::baseline());
        assert_eq!(out.assignment.len(), 800);
        let max = *out.assignment.iter().max().unwrap() as usize;
        assert_eq!(max + 1, out.num_communities);
    }

    #[test]
    fn stats_are_populated() {
        let gen = weblike(WeblikeParams::web(1_000, 5));
        let out = run_distributed(&gen.graph, 2, &DistConfig::baseline());
        assert!(out.modeled_seconds > 0.0);
        assert!(out.traffic.collective_calls > 0);
        assert_eq!(out.per_rank_stats.len(), 2);
        assert!(out.phases >= 1);
        assert_eq!(
            out.modularity_per_phase().len(),
            out.per_rank_stats[0].len()
        );
        let (compute, comm, reduce, rebuild) = out.modeled_breakdown();
        assert!(compute > 0.0 && comm > 0.0 && reduce > 0.0);
        assert!(rebuild >= 0.0);
    }

    #[test]
    fn all_variants_converge_with_comparable_quality() {
        let gen = lfr(LfrParams::small(1_200, 33));
        let base = run_distributed(&gen.graph, 2, &DistConfig::baseline());
        for v in DistConfig::paper_variants() {
            if v == Variant::Baseline {
                continue;
            }
            let out = run_distributed(&gen.graph, 2, &DistConfig::with_variant(v));
            // Aggressive ET trades quality for speed; give it more room
            // at this tiny scale (see tests/parity.rs for the calibrated
            // tolerances).
            let tolerance = match v.alpha() {
                Some(a) if a > 0.5 => 0.15,
                _ => 0.1,
            };
            assert!(
                out.modularity > base.modularity - tolerance,
                "{}: {} vs baseline {}",
                v.label(),
                out.modularity,
                base.modularity
            );
        }
    }
}
