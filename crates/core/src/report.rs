//! Build a [`louvain_obs::RunReport`] from a finished distributed run.
//!
//! The report glues together two independent data sources:
//!
//! * the communication counters every rank carries in its
//!   [`louvain_comm::StatsSnapshot`] (always on, no tracing required), and
//! * the optional span/metric trace harvested by the
//!   [`louvain_obs::Collector`] when tracing was enabled for the run.
//!
//! Per-step byte and message totals in the report are copied verbatim
//! from the merged snapshot, so they match `louvain_comm::stats` exactly
//! — `tests/observability.rs` asserts this invariant across rank counts.

use louvain_comm::CommStep;
use louvain_obs::{
    ArgValue, EventKind, HealthTotals, HungEvent, MessageEdge, ModeledBreakdown, PhaseProfileRow,
    RankHealth, RankTotals, RunReport, StepTotal, TraceData, TraceEvent,
};

use crate::api::DistOutcome;

fn arg_u64(ev: &TraceEvent, key: &str) -> Option<u64> {
    ev.args
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            ArgValue::U64(n) => Some(*n),
            ArgValue::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        })
}

fn arg_str<'a>(ev: &'a TraceEvent, key: &str) -> Option<&'a str> {
    ev.args
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            ArgValue::Str(s) => Some(*s),
            _ => None,
        })
}

fn is_comm_step_span(ev: &TraceEvent) -> bool {
    ev.cat == "comm" && CommStep::ALL.iter().any(|s| s.label() == ev.name)
}

/// Per-(rank, phase) wall attribution derived from the trace: the
/// `phase` span is the window, comm-step spans inside it are wall spent
/// in communication (split into `wait` — the blocked sub-spans — and
/// `transfer`, the remainder), `rebuild` spans minus their nested comm
/// are graph reconstruction, and `compute` is the residual. The four
/// buckets sum to the window by construction (up to clamping when a
/// nested span leaks past its parent's edge).
fn build_phase_profile(trace: &TraceData) -> Vec<PhaseProfileRow> {
    let mut rows: std::collections::BTreeMap<(usize, u64), PhaseProfileRow> =
        std::collections::BTreeMap::new();
    for rt in &trace.ranks {
        for ev in &rt.events {
            let EventKind::Complete { dur_ns } = ev.kind else {
                continue;
            };
            if ev.name != "phase" {
                continue;
            }
            let Some(phase) = arg_u64(ev, "phase") else {
                continue;
            };
            let (start, end) = (ev.ts_ns, ev.ts_ns + dur_ns);
            let within =
                |e: &TraceEvent| e.attempt == ev.attempt && e.ts_ns >= start && e.ts_ns < end;
            let mut comm_wall = 0u64;
            let mut wait = 0u64;
            let mut rebuild_wall = 0u64;
            let mut rebuild_windows: Vec<(u64, u64)> = Vec::new();
            for e in rt.events.iter().filter(|e| within(e)) {
                if e.name == "rebuild" {
                    let d = e.dur_ns();
                    rebuild_wall += d;
                    rebuild_windows.push((e.ts_ns, e.ts_ns + d));
                }
            }
            let mut comm_in_rebuild = 0u64;
            for e in rt.events.iter().filter(|e| within(e)) {
                if e.name == "wait" && e.cat == "comm" {
                    wait += e.dur_ns();
                } else if is_comm_step_span(e) {
                    comm_wall += e.dur_ns();
                    if rebuild_windows
                        .iter()
                        .any(|&(s, t)| e.ts_ns >= s && e.ts_ns < t)
                    {
                        comm_in_rebuild += e.dur_ns();
                    }
                }
            }
            let rebuild_ns = rebuild_wall.saturating_sub(comm_in_rebuild);
            let row = rows.entry((rt.rank, phase)).or_insert(PhaseProfileRow {
                rank: rt.rank,
                phase,
                ..Default::default()
            });
            row.total_ns += dur_ns;
            row.wait_ns += wait.min(comm_wall);
            row.transfer_ns += comm_wall.saturating_sub(wait);
            row.rebuild_ns += rebuild_ns;
            row.compute_ns += dur_ns.saturating_sub(comm_wall + rebuild_ns);
        }
    }
    rows.into_values().collect()
}

/// Matched cross-rank message edges: every `msg_send` instant paired
/// with the `msg_recv` recorded by the destination rank. The Lamport
/// stamp is unique per (sender, attempt), so `(src, lamport, attempt)`
/// is the join key; sends whose delivery was never observed (e.g. the
/// receiver crashed first) are dropped.
fn build_message_edges(trace: &TraceData) -> Vec<MessageEdge> {
    let mut recvs: std::collections::BTreeMap<(u64, u64, u32), u64> =
        std::collections::BTreeMap::new();
    for rt in &trace.ranks {
        for ev in &rt.events {
            if ev.name != "msg_recv" {
                continue;
            }
            if let (Some(src), Some(lamport)) = (arg_u64(ev, "src"), arg_u64(ev, "lamport")) {
                recvs.insert((src, lamport, ev.attempt), ev.ts_ns);
            }
        }
    }
    let mut edges = Vec::new();
    for rt in &trace.ranks {
        for ev in &rt.events {
            if ev.name != "msg_send" {
                continue;
            }
            let (Some(src), Some(dst), Some(lamport)) = (
                arg_u64(ev, "src"),
                arg_u64(ev, "dst"),
                arg_u64(ev, "lamport"),
            ) else {
                continue;
            };
            let Some(&recv_ts) = recvs.get(&(src, lamport, ev.attempt)) else {
                continue;
            };
            edges.push(MessageEdge {
                src: src as usize,
                dst: dst as usize,
                step: arg_str(ev, "step").unwrap_or("other").to_string(),
                lamport,
                bytes: arg_u64(ev, "bytes").unwrap_or(0),
                send_ts_ns: ev.ts_ns,
                recv_ts_ns: recv_ts,
                modeled_ns: arg_u64(ev, "modeled_ns").unwrap_or(0),
            });
        }
    }
    edges.sort_by_key(|e| (e.src, e.lamport));
    edges
}

/// Run identity that the [`DistOutcome`] itself does not know: what
/// graph was run, under which variant label, with how many software
/// threads per rank.
#[derive(Debug, Clone, Default)]
pub struct ReportMeta {
    /// Human-readable graph name (e.g. `"ssca2-8k"`).
    pub graph: String,
    /// Vertex count of the input graph.
    pub vertices: u64,
    /// Undirected edge count of the input graph.
    pub edges: u64,
    /// Variant label (e.g. `"baseline"`, `"etc-0.25"`).
    pub variant: String,
    /// Software threads used inside each rank's sweep.
    pub threads_per_rank: usize,
}

impl ReportMeta {
    pub fn new(graph: impl Into<String>, vertices: u64, edges: u64) -> Self {
        Self {
            graph: graph.into(),
            vertices,
            edges,
            variant: "baseline".to_string(),
            threads_per_rank: 1,
        }
    }

    pub fn variant(mut self, label: impl Into<String>) -> Self {
        self.variant = label.into();
        self
    }

    pub fn threads_per_rank(mut self, t: usize) -> Self {
        self.threads_per_rank = t;
        self
    }
}

/// Assemble the aggregated run report for `outcome`.
///
/// Works with or without tracing: the communication section is always
/// populated from the per-rank [`louvain_comm::StatsSnapshot`]s; the
/// `metrics` and `spans` sections are filled only when the outcome
/// carries a harvested trace.
pub fn build_run_report(outcome: &DistOutcome, meta: &ReportMeta) -> RunReport {
    let traffic = &outcome.traffic;

    let step_totals: Vec<StepTotal> = CommStep::ALL
        .iter()
        .map(|&step| StepTotal {
            step: step.label().to_string(),
            bytes: traffic.step_bytes_for(step),
            messages: traffic.step_messages_for(step),
            wait_ns: traffic.step_wait_nanos_for(step),
        })
        .collect();

    let per_rank: Vec<RankTotals> = outcome
        .per_rank_traffic
        .iter()
        .enumerate()
        .map(|(rank, s)| {
            let (events_recorded, events_dropped) = outcome
                .trace
                .as_ref()
                .and_then(|t| t.ranks.get(rank))
                .map(|r| (r.events.len() as u64, r.dropped))
                .unwrap_or((0, 0));
            RankTotals {
                rank,
                p2p_messages: s.p2p_messages,
                p2p_bytes: s.p2p_bytes,
                collective_calls: s.collective_calls,
                collective_bytes: s.collective_bytes,
                modeled_comm_seconds: s.modeled_seconds,
                step_messages: s.step_messages.to_vec(),
                step_bytes: s.step_bytes.to_vec(),
                wait_ns: s.wait_nanos_total(),
                events_recorded,
                events_dropped,
            }
        })
        .collect();

    // Slowest-rank attribution: the rank with the largest modeled
    // communication time carried the job's critical path.
    let slowest = outcome
        .per_rank_traffic
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.modeled_seconds.total_cmp(&b.modeled_seconds))
        .map(|(rank, s)| (rank, s.modeled_seconds));
    let health = HealthTotals {
        stalls: traffic.fault_stalls,
        bursts: traffic.fault_bursts,
        corruptions: traffic.fault_corruptions,
        checksum_rejects: traffic.checksum_rejects,
        wd_timeouts: traffic.wd_timeouts,
        wd_retries: traffic.wd_retries,
        wd_stragglers: traffic.wd_stragglers,
        backoff_seconds: traffic.backoff_nanos as f64 * 1e-9,
        slowest_rank: slowest.map(|(rank, _)| rank),
        slowest_rank_seconds: slowest.map_or(0.0, |(_, secs)| secs),
        per_rank: outcome
            .per_rank_traffic
            .iter()
            .enumerate()
            .map(|(rank, s)| RankHealth {
                rank,
                retries: s.fault_retries,
                wd_timeouts: s.wd_timeouts,
                wd_retries: s.wd_retries,
                wd_stragglers: s.wd_stragglers,
                backoff_seconds: s.backoff_nanos as f64 * 1e-9,
                checksum_rejects: s.checksum_rejects,
                step_retries: s.step_retries.to_vec(),
            })
            .collect(),
        hung_events: outcome
            .hung_events
            .iter()
            .map(|h| HungEvent {
                rank: h.rank,
                detector: h.detector,
                phase: h.phase,
                op: h.op,
                step: h.step.label().to_string(),
                waited_ms: h.waited_ms,
            })
            .collect(),
    };

    let (compute, comm, reduce, rebuild) = outcome.modeled_breakdown();

    let (mut metrics, spans, phase_profile, messages) = match &outcome.trace {
        Some(t) => (
            t.merged_metrics(),
            t.span_rollup(),
            build_phase_profile(t),
            build_message_edges(t),
        ),
        None => (Default::default(), Vec::new(), Vec::new(), Vec::new()),
    };

    // Per-rank imbalance row: one observation per rank of its total
    // traffic, so the artifact's p50/p95/p99 expose load skew without
    // re-deriving it from the per-rank table.
    if !outcome.per_rank_traffic.is_empty() {
        let mut rank_bytes = louvain_obs::Histogram::default();
        for s in &outcome.per_rank_traffic {
            rank_bytes.observe(s.p2p_bytes + s.collective_bytes);
        }
        metrics
            .histograms
            .insert("rank.total_bytes".into(), rank_bytes);
    }

    RunReport {
        graph: meta.graph.clone(),
        vertices: meta.vertices,
        edges: meta.edges,
        ranks: outcome.per_rank_traffic.len(),
        variant: meta.variant.clone(),
        threads_per_rank: meta.threads_per_rank,
        modularity: outcome.modularity,
        num_communities: outcome.num_communities as u64,
        phases: outcome.phases as u64,
        iterations: outcome.total_iterations as u64,
        wall_seconds: outcome.wall.as_secs_f64(),
        resumed_from_phase: outcome.resumed_from_phase,
        recoveries: outcome.recoveries,
        faults: {
            let (drops, delays, duplicates, truncations, retries) = (
                traffic.fault_drops,
                traffic.fault_delays,
                traffic.fault_duplicates,
                traffic.fault_truncations,
                traffic.fault_retries,
            );
            louvain_obs::FaultTotals {
                drops,
                delays,
                duplicates,
                truncations,
                retries,
            }
        },
        health,
        modeled: ModeledBreakdown {
            compute,
            comm,
            reduce,
            rebuild,
        },
        step_totals,
        total_bytes: traffic.p2p_bytes + traffic.collective_bytes,
        total_messages: traffic.p2p_messages + traffic.collective_calls,
        per_rank,
        metrics,
        spans,
        phase_profile,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistConfig;
    use louvain_graph::gen::{ssca2, Ssca2Params};

    #[test]
    fn report_step_totals_match_traffic_snapshot() {
        let gen = ssca2(Ssca2Params {
            n: 600,
            max_clique_size: 12,
            inter_clique_prob: 0.05,
            seed: 9,
        });
        let out = crate::api::run_distributed(&gen.graph, 3, &DistConfig::baseline());
        let meta = ReportMeta::new("ssca2-600", 600, gen.graph.num_edges() as u64);
        let report = build_run_report(&out, &meta);

        assert_eq!(report.ranks, 3);
        assert_eq!(report.per_rank.len(), 3);
        let total_from_steps: u64 = report.step_totals.iter().map(|s| s.bytes).sum();
        assert_eq!(total_from_steps, out.traffic.step_bytes.iter().sum::<u64>());
        assert_eq!(
            report.total_bytes,
            out.traffic.p2p_bytes + out.traffic.collective_bytes
        );
        // Conservation: per-step decomposition covers all traffic.
        assert_eq!(total_from_steps, report.total_bytes);
        // Per-rank snapshots sum to the merged totals.
        let per_rank_bytes: u64 = report
            .per_rank
            .iter()
            .map(|r| r.p2p_bytes + r.collective_bytes)
            .sum();
        assert_eq!(per_rank_bytes, report.total_bytes);

        // Round-trips through JSON without loss.
        let text = report.to_json_string();
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back.total_bytes, report.total_bytes);
        assert_eq!(back.step_totals, report.step_totals);
        assert_eq!(back.per_rank, report.per_rank);

        // The imbalance histogram has one observation per rank and its
        // percentiles are monotone.
        let h = &report.metrics.histograms["rank.total_bytes"];
        assert_eq!(h.count, 3);
        let (p50, p95, p99) = h.quantile_summary();
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 > 0);
    }

    fn sample_report_text() -> String {
        let gen = ssca2(Ssca2Params {
            n: 400,
            max_clique_size: 10,
            inter_clique_prob: 0.05,
            seed: 4,
        });
        let out = crate::api::run_distributed(&gen.graph, 2, &DistConfig::baseline());
        let meta = ReportMeta::new("ssca2-400", 400, gen.graph.num_edges() as u64);
        build_run_report(&out, &meta).to_json_string()
    }

    // Lenient-parse coverage: reports written by older builds (or by
    // hand) must load as long as the core fields are intact.

    #[test]
    fn report_without_health_section_parses() {
        let text = sample_report_text();
        let mut doc = louvain_obs::Json::parse(&text).unwrap();
        if let louvain_obs::Json::Obj(members) = &mut doc {
            members.retain(|(k, _)| k != "health");
        }
        let back = RunReport::from_json(&doc).expect("missing health is lenient");
        assert_eq!(back.health, HealthTotals::default());
        assert!(!back.health.any());
    }

    #[test]
    fn report_with_unknown_fields_parses() {
        let text = sample_report_text();
        let mut doc = louvain_obs::Json::parse(&text).unwrap();
        if let louvain_obs::Json::Obj(members) = &mut doc {
            members.push(("future_field".into(), louvain_obs::Json::Num(7.0)));
            members.push((
                "future_section".into(),
                louvain_obs::Json::Obj(vec![("x".into(), louvain_obs::Json::Bool(true))]),
            ));
        }
        let back = RunReport::from_json(&doc).expect("unknown fields are ignored");
        assert_eq!(back.graph, "ssca2-400");
    }

    #[test]
    fn truncated_report_json_is_an_error_not_a_panic() {
        let text = sample_report_text();
        for cut in [1, text.len() / 4, text.len() / 2, text.len() - 2] {
            assert!(
                RunReport::from_json_str(&text[..cut]).is_err(),
                "truncation at {cut} must fail cleanly"
            );
        }
    }

    #[test]
    fn legacy_health_counter_sets_parse_with_zero_defaults() {
        // Reports written before checkpoint format v2 carried a health
        // section without the wd_* ladder counters; those fields must
        // default to zero instead of failing the parse.
        let text = sample_report_text();
        let mut doc = louvain_obs::Json::parse(&text).unwrap();
        if let louvain_obs::Json::Obj(members) = &mut doc {
            for (key, value) in members.iter_mut() {
                if key != "health" {
                    continue;
                }
                let louvain_obs::Json::Obj(health) = value else {
                    continue;
                };
                health.retain(|(k, _)| !k.starts_with("wd_") && k != "backoff_seconds");
                for (k, v) in health.iter_mut() {
                    if k != "per_rank" {
                        continue;
                    }
                    let louvain_obs::Json::Arr(rows) = v else {
                        continue;
                    };
                    for row in rows {
                        if let louvain_obs::Json::Obj(fields) = row {
                            fields.retain(|(k, _)| !k.starts_with("wd_") && k != "step_retries");
                        }
                    }
                }
            }
        }
        let back = RunReport::from_json(&doc).expect("pre-v2 counter set is lenient");
        assert_eq!(back.health.wd_timeouts, 0);
        assert_eq!(back.health.backoff_seconds, 0.0);
        assert!(!back.health.per_rank.is_empty());
        assert!(back.health.per_rank[0].step_retries.is_empty());
    }
}
