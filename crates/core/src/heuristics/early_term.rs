//! Early termination for the distributed algorithm (Section IV-B(b)).
//!
//! Identical decay rule to the shared-memory retrofit (Eq. 3) but tracked
//! per *rank* over the rank's local vertices, with globally-deterministic
//! coin flips keyed by the **global** vertex id. The ETC variant adds a
//! global reduction of the inactive count each iteration; the phase exits
//! once ≥90% of all vertices are inactive.

use louvain_graph::hash::{coin_u01, mix64};

/// A vertex whose probability falls below 2% is labeled inactive
/// (paper: "when the probability for a given vertex becomes less than 2%,
/// we label it inactive").
pub const INACTIVE_CUTOFF: f64 = 0.02;

/// Per-rank early-termination state for one phase.
#[derive(Debug, Clone)]
pub struct EtTracker {
    alpha: f64,
    seed: u64,
    first_global: u64,
    prob: Vec<f64>,
    /// Vertices already announced as permanently frozen (ghost pruning).
    frozen_reported: Vec<bool>,
}

impl EtTracker {
    /// Fresh tracker for `n_local` vertices starting at global id
    /// `first_global`.
    pub fn new(n_local: usize, first_global: u64, alpha: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        Self {
            alpha,
            seed,
            first_global,
            prob: vec![1.0; n_local],
            frozen_reported: vec![false; n_local],
        }
    }

    /// Whether local vertex `l` participates in `(phase, iteration)`.
    #[inline]
    pub fn is_active(&self, phase: usize, iteration: usize, l: usize) -> bool {
        let p = self.prob[l];
        if p < INACTIVE_CUTOFF {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let g = self.first_global + l as u64;
        let h = mix64(self.seed ^ mix64((phase as u64) << 32 | iteration as u64) ^ mix64(g));
        coin_u01(h) < p
    }

    /// Decay/reset after an iteration.
    #[inline]
    pub fn update(&mut self, l: usize, moved: bool) {
        if moved {
            self.prob[l] = 1.0;
        } else {
            self.prob[l] *= 1.0 - self.alpha;
        }
    }

    /// Local count of inactive vertices (for the ETC global reduction).
    pub fn num_inactive(&self) -> u64 {
        self.prob.iter().filter(|&&p| p < INACTIVE_CUTOFF).count() as u64
    }

    pub fn probability(&self, l: usize) -> f64 {
        self.prob[l]
    }

    /// Local vertices that crossed below the inactive cutoff since the
    /// last call. Once below the cutoff a vertex can never move again
    /// (its probability only resets on a move, and it no longer
    /// participates), so these are safe to announce for ghost pruning.
    pub fn drain_newly_frozen(&mut self) -> Vec<usize> {
        let mut out = Vec::new();
        for l in 0..self.prob.len() {
            if !self.frozen_reported[l] && self.prob[l] < INACTIVE_CUTOFF {
                self.frozen_reported[l] = true;
                out.push(l);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coins_depend_on_global_id_not_local_index() {
        // Two trackers covering different ranges: the vertex with the same
        // GLOBAL id must make the same decision regardless of which rank
        // hosts it.
        let mut a = EtTracker::new(10, 0, 0.5, 42);
        let mut b = EtTracker::new(10, 5, 0.5, 42);
        // Decay both copies of global vertex 7 identically.
        a.update(7, false);
        b.update(2, false);
        for it in 0..30 {
            assert_eq!(
                a.is_active(0, it, 7),
                b.is_active(0, it, 2),
                "iteration {it}"
            );
        }
    }

    #[test]
    fn decay_and_reset() {
        let mut t = EtTracker::new(2, 100, 0.75, 1);
        t.update(0, false);
        assert!((t.probability(0) - 0.25).abs() < 1e-12);
        t.update(0, false);
        assert!(t.probability(0) < INACTIVE_CUTOFF + 0.05);
        t.update(1, true);
        assert_eq!(t.probability(1), 1.0);
    }

    #[test]
    fn inactive_counting() {
        let mut t = EtTracker::new(4, 0, 1.0, 1);
        t.update(0, false);
        t.update(1, false);
        t.update(2, true);
        assert_eq!(t.num_inactive(), 2);
    }

    #[test]
    fn drain_newly_frozen_reports_each_vertex_once() {
        let mut t = EtTracker::new(3, 0, 1.0, 5);
        assert!(t.drain_newly_frozen().is_empty());
        t.update(0, false); // P = 0 → frozen
        t.update(1, true);
        assert_eq!(t.drain_newly_frozen(), vec![0]);
        assert!(t.drain_newly_frozen().is_empty(), "reported twice");
        t.update(2, false);
        assert_eq!(t.drain_newly_frozen(), vec![2]);
    }

    #[test]
    fn alpha_one_vertices_never_reactivate_without_move() {
        let mut t = EtTracker::new(1, 0, 1.0, 3);
        t.update(0, false);
        for phase in 0..3 {
            for it in 0..20 {
                assert!(!t.is_active(phase, it, 0));
            }
        }
    }
}
