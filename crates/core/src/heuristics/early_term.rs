//! Early termination for the distributed algorithm (Section IV-B(b)).
//!
//! Identical decay rule to the shared-memory retrofit (Eq. 3) but tracked
//! per *rank* over the rank's local vertices, with globally-deterministic
//! coin flips keyed by the **global** vertex id. The ETC variant adds a
//! global reduction of the inactive count each iteration; the phase exits
//! once ≥90% of all vertices are inactive.
//!
//! The probability state machine itself is [`grappolo::EtState`] — the
//! same implementation the shared-memory baseline runs — instantiated
//! with this rank's global-id offset ([`grappolo::EtState::with_offset`])
//! so a vertex flips the same coin no matter which rank hosts it. This
//! wrapper adds only the distributed concerns: the `u64` inactive count
//! for the ETC all-reduce and the newly-frozen drain that feeds
//! inactive-ghost pruning.

use grappolo::EtState;

/// A vertex whose probability falls below 2% is labeled inactive
/// (paper: "when the probability for a given vertex becomes less than 2%,
/// we label it inactive").
pub const INACTIVE_CUTOFF: f64 = grappolo::INACTIVE_CUTOFF;

/// Per-rank early-termination state for one phase.
#[derive(Debug, Clone)]
pub struct EtTracker {
    inner: EtState,
    /// Vertices already announced as permanently frozen (ghost pruning).
    frozen_reported: Vec<bool>,
}

impl EtTracker {
    /// Fresh tracker for `n_local` vertices starting at global id
    /// `first_global`.
    pub fn new(n_local: usize, first_global: u64, alpha: f64, seed: u64) -> Self {
        Self {
            inner: EtState::with_offset(n_local, first_global, alpha, seed),
            frozen_reported: vec![false; n_local],
        }
    }

    /// Whether local vertex `l` participates in `(phase, iteration)`.
    #[inline]
    pub fn is_active(&self, phase: usize, iteration: usize, l: usize) -> bool {
        self.inner.is_active(phase, iteration, l)
    }

    /// Decay/reset after an iteration.
    #[inline]
    pub fn update(&mut self, l: usize, moved: bool) {
        self.inner.update(l, moved);
    }

    /// Local count of inactive vertices (for the ETC global reduction).
    pub fn num_inactive(&self) -> u64 {
        self.inner.num_inactive() as u64
    }

    pub fn probability(&self, l: usize) -> f64 {
        self.inner.probability(l)
    }

    /// Local vertices that crossed below the inactive cutoff since the
    /// last call. Once below the cutoff a vertex can never move again
    /// (its probability only resets on a move, and it no longer
    /// participates), so these are safe to announce for ghost pruning.
    pub fn drain_newly_frozen(&mut self) -> Vec<usize> {
        let mut out = Vec::new();
        for l in 0..self.frozen_reported.len() {
            if !self.frozen_reported[l] && self.inner.probability(l) < INACTIVE_CUTOFF {
                self.frozen_reported[l] = true;
                out.push(l);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coins_depend_on_global_id_not_local_index() {
        // Two trackers covering different ranges: the vertex with the same
        // GLOBAL id must make the same decision regardless of which rank
        // hosts it.
        let mut a = EtTracker::new(10, 0, 0.5, 42);
        let mut b = EtTracker::new(10, 5, 0.5, 42);
        // Decay both copies of global vertex 7 identically.
        a.update(7, false);
        b.update(2, false);
        for it in 0..30 {
            assert_eq!(
                a.is_active(0, it, 7),
                b.is_active(0, it, 2),
                "iteration {it}"
            );
        }
    }

    #[test]
    fn decay_and_reset() {
        let mut t = EtTracker::new(2, 100, 0.75, 1);
        t.update(0, false);
        assert!((t.probability(0) - 0.25).abs() < 1e-12);
        t.update(0, false);
        assert!(t.probability(0) < INACTIVE_CUTOFF + 0.05);
        t.update(1, true);
        assert_eq!(t.probability(1), 1.0);
    }

    #[test]
    fn inactive_counting() {
        let mut t = EtTracker::new(4, 0, 1.0, 1);
        t.update(0, false);
        t.update(1, false);
        t.update(2, true);
        assert_eq!(t.num_inactive(), 2);
    }

    #[test]
    fn drain_newly_frozen_reports_each_vertex_once() {
        let mut t = EtTracker::new(3, 0, 1.0, 5);
        assert!(t.drain_newly_frozen().is_empty());
        t.update(0, false); // P = 0 → frozen
        t.update(1, true);
        assert_eq!(t.drain_newly_frozen(), vec![0]);
        assert!(t.drain_newly_frozen().is_empty(), "reported twice");
        t.update(2, false);
        assert_eq!(t.drain_newly_frozen(), vec![2]);
    }

    #[test]
    fn alpha_one_vertices_never_reactivate_without_move() {
        let mut t = EtTracker::new(1, 0, 1.0, 3);
        t.update(0, false);
        for phase in 0..3 {
            for it in 0..20 {
                assert!(!t.is_active(phase, it, 0));
            }
        }
    }

    #[test]
    fn wrapper_matches_grappolo_state_bit_for_bit() {
        // The delegation must be observationally identical to driving the
        // shared-memory EtState directly with the same offset.
        let mut tracker = EtTracker::new(6, 40, 0.25, 77);
        let mut state = EtState::with_offset(6, 40, 0.25, 77);
        let moved = [false, true, false, false, true, false];
        for (l, &m) in moved.iter().enumerate() {
            tracker.update(l, m);
            state.update(l, m);
        }
        assert_eq!(tracker.num_inactive(), state.num_inactive() as u64);
        for it in 0..20 {
            for l in 0..6 {
                assert_eq!(tracker.probability(l), state.probability(l));
                assert_eq!(tracker.is_active(1, it, l), state.is_active(1, it, l));
            }
        }
    }
}
