//! Threshold cycling (Section IV-B(a), Fig 2).
//!
//! The modularity-gain threshold τ is modulated across phases: large
//! thresholds in early phases (when the graph is big and iterations are
//! expensive) let phases exit sooner; the schedule steps down to the
//! final τ and repeats. The paper's Fig 2 pattern: phases 0–2 at 1e-3,
//! 3–6 at 1e-4, 7–9 at 1e-5, 10–12 at 1e-6, then the cycle restarts.
//! Convergence is only *accepted* at the minimum threshold — "our
//! distributed implementation always forces Louvain iteration to run once
//! more with the lowest threshold".

/// Per-phase τ schedule.
#[derive(Debug, Clone)]
pub struct ThresholdSchedule {
    /// `(tau, phases_at_tau)` steps; cycles after the last step.
    steps: Vec<(f64, usize)>,
    /// τ used when cycling is disabled and for final acceptance.
    min_tau: f64,
    cycling: bool,
}

impl ThresholdSchedule {
    /// Fixed τ for every phase (Baseline / ET / ETC variants).
    pub fn fixed(tau: f64) -> Self {
        Self {
            steps: vec![(tau, 1)],
            min_tau: tau,
            cycling: false,
        }
    }

    /// The paper's Fig 2 cycle ending at `min_tau`:
    /// 3 phases at `1000·min_tau`, 4 at `100·min_tau`, 3 at `10·min_tau`,
    /// 3 at `min_tau`, repeating.
    pub fn paper_cycle(min_tau: f64) -> Self {
        Self {
            steps: vec![
                (min_tau * 1e3, 3),
                (min_tau * 1e2, 4),
                (min_tau * 1e1, 3),
                (min_tau, 3),
            ],
            min_tau,
            cycling: true,
        }
    }

    /// τ for a given phase index.
    pub fn tau_for_phase(&self, phase: usize) -> f64 {
        if !self.cycling {
            return self.min_tau;
        }
        let cycle_len: usize = self.steps.iter().map(|&(_, n)| n).sum();
        let mut pos = phase % cycle_len;
        for &(tau, n) in &self.steps {
            if pos < n {
                return tau;
            }
            pos -= n;
        }
        unreachable!("phase position exceeds cycle length")
    }

    /// The final acceptance threshold.
    pub fn min_tau(&self) -> f64 {
        self.min_tau
    }

    pub fn is_cycling(&self) -> bool {
        self.cycling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_is_constant() {
        let s = ThresholdSchedule::fixed(1e-6);
        for phase in 0..20 {
            assert_eq!(s.tau_for_phase(phase), 1e-6);
        }
        assert!(!s.is_cycling());
    }

    #[test]
    fn paper_cycle_matches_fig2() {
        let s = ThresholdSchedule::paper_cycle(1e-6);
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9 * b;
        // Fig 2: phases 0–2 → 1e-3, 3–6 → 1e-4, 7–9 → 1e-5, 10–12 → 1e-6.
        for p in 0..=2 {
            assert!(close(s.tau_for_phase(p), 1e-3), "phase {p}");
        }
        for p in 3..=6 {
            assert!(close(s.tau_for_phase(p), 1e-4), "phase {p}");
        }
        for p in 7..=9 {
            assert!(close(s.tau_for_phase(p), 1e-5), "phase {p}");
        }
        for p in 10..=12 {
            assert!(close(s.tau_for_phase(p), 1e-6), "phase {p}");
        }
        // "This pattern is again repeated from phase 13 and so on."
        assert!(close(s.tau_for_phase(13), 1e-3));
        assert!(close(s.tau_for_phase(13 + 13), 1e-3));
    }

    #[test]
    fn min_tau_is_preserved() {
        assert_eq!(ThresholdSchedule::paper_cycle(1e-6).min_tau(), 1e-6);
        assert_eq!(ThresholdSchedule::fixed(1e-4).min_tau(), 1e-4);
    }
}
