//! The performance heuristics of Section IV-B.

pub mod coloring;
pub mod early_term;
pub mod threshold;

pub use coloring::distributed_coloring;
pub use early_term::{EtTracker, INACTIVE_CUTOFF};
pub use threshold::ThresholdSchedule;
