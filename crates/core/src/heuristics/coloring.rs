//! Distributed distance-1 coloring (Jones–Plassmann).
//!
//! The paper's future-work item: "the use of distance-1 coloring to
//! ensure that the set of vertices that are processed in parallel for
//! community assignments are mutually non-adjacent and hence independent.
//! This may lead to faster convergence."
//!
//! Jones–Plassmann over the distributed graph: every vertex gets a random
//! priority derived from its global id (so all ranks agree without
//! communication); in each round, an uncolored vertex whose uncolored
//! neighbors all have lower priority picks the smallest color unused by
//! its already-colored neighbors; ghost colors are exchanged between
//! rounds through the phase's [`GhostLayer`].

use louvain_comm::{Comm, CommStep, ReduceOp};
use louvain_graph::hash::mix64;
use louvain_graph::{LocalGraph, VertexId};

use crate::ghost::GhostLayer;

/// Sentinel for "not colored yet" on the wire.
const UNCOLORED: u64 = u64::MAX;

/// Priority of a vertex — any rank can compute any vertex's priority.
#[inline]
fn priority(seed: u64, v: VertexId) -> u64 {
    mix64(seed ^ mix64(v))
}

/// Color the distributed graph; returns `(color_of_local, num_colors)`.
/// Collective. The coloring is proper: no two adjacent vertices (across
/// ranks included) share a color.
pub fn distributed_coloring(
    comm: &Comm,
    lg: &LocalGraph,
    ghosts: &GhostLayer,
    seed: u64,
) -> (Vec<u32>, u32) {
    let nlocal = lg.num_local();
    let mut color: Vec<u64> = vec![UNCOLORED; nlocal];
    let mut ghost_color: Vec<VertexId> = Vec::new();
    let mut uncolored = nlocal as u64;
    let mut forbidden: Vec<u64> = Vec::new();

    loop {
        comm.with_step(CommStep::Other, || {
            ghosts.refresh(comm, &color, &mut ghost_color)
        });
        let mut colored_this_round = 0u64;
        // Decisions are made against the round-start snapshot so every
        // rank sees a consistent frontier.
        let snapshot = color.clone();
        for l in 0..nlocal {
            if snapshot[l] != UNCOLORED {
                continue;
            }
            let v = lg.to_global(l);
            let vp = priority(seed, v);
            let mut is_max = true;
            forbidden.clear();
            for (u, _) in lg.neighbors(l) {
                if u == v {
                    continue;
                }
                let cu = if lg.owns(u) {
                    snapshot[(u - lg.first_vertex()) as usize]
                } else {
                    ghost_color[ghosts.slot_of(u)]
                };
                if cu == UNCOLORED {
                    let up = priority(seed, u);
                    // Deterministic total order: priority, then id.
                    if up > vp || (up == vp && u > v) {
                        is_max = false;
                        break;
                    }
                } else {
                    forbidden.push(cu);
                }
            }
            if !is_max {
                continue;
            }
            forbidden.sort_unstable();
            let mut c = 0u64;
            for &f in &forbidden {
                match f.cmp(&c) {
                    std::cmp::Ordering::Less => {}
                    std::cmp::Ordering::Equal => c += 1,
                    std::cmp::Ordering::Greater => break,
                }
            }
            color[l] = c;
            colored_this_round += 1;
        }
        uncolored -= colored_this_round;
        let remaining = comm.with_step(CommStep::Other, || {
            comm.all_reduce(uncolored, ReduceOp::Sum)
        });
        if remaining == 0 {
            break;
        }
    }

    let local_max = color.iter().copied().max().unwrap_or(0);
    let global_max = comm.with_step(CommStep::Other, || {
        comm.all_reduce(if nlocal == 0 { 0 } else { local_max }, ReduceOp::Max)
    });
    (
        color.into_iter().map(|c| c as u32).collect(),
        global_max as u32 + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_comm::run;
    use louvain_graph::gen::{erdos_renyi, ErdosRenyiParams};
    use louvain_graph::{Csr, VertexPartition};

    fn color_distributed(g: &Csr, p: usize) -> (Vec<u32>, u32) {
        let part = VertexPartition::balanced_vertices(g.num_vertices() as u64, p);
        let parts = LocalGraph::scatter(g, &part);
        let outs = run(p, |c| {
            let lg = parts[c.rank()].clone();
            let ghosts = GhostLayer::build(c, &lg);
            distributed_coloring(c, &lg, &ghosts, 42)
        });
        let ncolors = outs[0].1;
        let mut colors = Vec::new();
        for (cs, nc) in outs {
            assert_eq!(nc, ncolors, "ranks disagree on color count");
            colors.extend(cs);
        }
        (colors, ncolors)
    }

    #[test]
    fn coloring_is_proper_across_ranks() {
        let g = erdos_renyi(ErdosRenyiParams {
            n: 400,
            avg_degree: 8.0,
            seed: 3,
        })
        .graph;
        for p in [1, 2, 4] {
            let (colors, ncolors) = color_distributed(&g, p);
            assert_eq!(colors.len(), g.num_vertices());
            for v in 0..g.num_vertices() as u64 {
                for (u, _) in g.neighbors(v) {
                    if u != v {
                        assert_ne!(
                            colors[v as usize], colors[u as usize],
                            "edge {v}-{u} (p={p})"
                        );
                    }
                }
            }
            let max_deg = (0..g.num_vertices())
                .map(|v| g.degree(v as u64))
                .max()
                .unwrap();
            assert!(ncolors as usize <= max_deg + 1);
        }
    }

    #[test]
    fn coloring_is_rank_count_invariant() {
        // Priorities depend only on (seed, global id), so the JP coloring
        // is identical no matter how the graph is partitioned.
        let g = erdos_renyi(ErdosRenyiParams {
            n: 300,
            avg_degree: 6.0,
            seed: 5,
        })
        .graph;
        let (c1, n1) = color_distributed(&g, 1);
        let (c3, n3) = color_distributed(&g, 3);
        assert_eq!(c1, c3);
        assert_eq!(n1, n3);
    }

    #[test]
    fn edgeless_graph_gets_one_color() {
        let g = Csr::from_edge_list(louvain_graph::EdgeList::new(10));
        let (colors, ncolors) = color_distributed(&g, 2);
        assert_eq!(ncolors, 1);
        assert!(colors.iter().all(|&c| c == 0));
    }
}
